//! E-commerce fraud detection: constrained cycle detection on new transactions.
//!
//! The paper's first motivating application (Section I): when a transaction
//! from account `t` to account `s` is submitted, the fraud-detection system
//! enumerates all s-t k-paths — each one closes a cycle through the new edge
//! `(t, s)` and is a potential fraud ring. Response time is critical, which is
//! why the enumeration is offloaded to the FPGA.
//!
//! Run with `cargo run --release --example fraud_detection`.

use pefp::core::{run_query, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::{generators, VertexId};

/// One incoming transaction (an edge about to be inserted).
struct Transaction {
    from: VertexId,
    to: VertexId,
    amount_cents: u64,
}

fn main() {
    // Transaction graph: accounts are vertices, money transfers are edges.
    // A copying-model graph gives the dense communities typical of
    // marketplace payment networks.
    let graph = generators::copying_model(2_000, 5, 0.2, 7).to_csr();
    println!(
        "transaction network: {} accounts, {} historical transfers",
        graph.num_vertices(),
        graph.num_edges()
    );

    // New transactions streaming in. For each transfer t -> s we look for
    // existing s ⇝ t paths of bounded length: together with the new edge they
    // form short cycles, the classic money-laundering signature.
    let incoming = [
        Transaction { from: VertexId(17), to: VertexId(3), amount_cents: 95_000 },
        Transaction { from: VertexId(250), to: VertexId(12), amount_cents: 1_240_000 },
        Transaction { from: VertexId(999), to: VertexId(40), amount_cents: 8_000 },
    ];
    let k = 5;
    let device = DeviceConfig::alveo_u200();

    for txn in &incoming {
        // The new edge is (from -> to); cycles need paths to ⇝ from.
        let result = run_query(&graph, txn.to, txn.from, k, PefpVariant::Full, &device);
        let flagged = result.num_paths > 0;
        println!(
            "\ntransaction {} -> {} ({:.2} EUR): {} cycle(s) of length <= {} would be created{}",
            txn.from,
            txn.to,
            txn.amount_cents as f64 / 100.0,
            result.num_paths,
            k + 1,
            if flagged { "  [FLAGGED FOR REVIEW]" } else { "" }
        );
        for path in result.paths.iter().take(3) {
            let mut cycle: Vec<String> = path.iter().map(|v| v.0.to_string()).collect();
            cycle.push(txn.from.0.to_string()); // close the cycle with the new edge
            println!("    cycle: {}", cycle.join(" -> "));
        }
        println!(
            "    decision latency: {:.3} ms preprocessing + {:.3} ms on-device",
            result.preprocess_millis, result.query_millis
        );
    }
}
