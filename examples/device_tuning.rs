//! Device tuning: how many verification lanes and how much on-chip buffer
//! does a deployment actually need?
//!
//! The paper builds one bitstream for the Alveo U200 and never revisits the
//! sizing. With the simulated device the design space is cheap to explore:
//! this example sweeps the number of replicated verification lanes and the
//! buffer-area capacity, checks each point against the U200 resource budget,
//! prints an HLS-style report for the chosen configuration and shows how the
//! simulated query time and DRAM traffic respond.
//!
//! Run with `cargo run --release --example device_tuning`.

use pefp::core::{count_st_walks, plan_query, prepare, run_prepared, PefpVariant};
use pefp::fpga::{
    DeviceConfig, KernelReport, ModuleCosts, ModuleLatency, OnChipAreas, PipelineSpec, PowerModel,
    ResourceBudget, ResourceEstimate,
};
use pefp::graph::{sampling::sample_reachable_pairs, Dataset, ScaleProfile};

fn main() {
    // Workload: one representative query on the BerkStan stand-in (dense web
    // graph, the heaviest per-query work in the evaluation). The pair is
    // sampled so that t really is reachable from s within k hops, like the
    // paper's query workloads.
    let graph = Dataset::BerkStan.generate(ScaleProfile::Small).to_csr();
    let k = 7;
    // Among a sample of reachable pairs, keep the one with the largest
    // predicted result volume so the sweeps exercise a non-trivial workload.
    let (s, t) = sample_reachable_pairs(&graph, k, 40, 0xB5)
        .into_iter()
        .max_by_key(|&(s, t)| count_st_walks(&graph, s, t, k))
        .expect("the BerkStan stand-in always has reachable pairs");
    println!(
        "workload: BerkStan stand-in ({} vertices, {} edges), query {s} -> {t}, k = {k}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // --- Sweep 1: verification lanes -------------------------------------
    println!("== verification-lane sweep (buffer fixed at the default) ==");
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>10}",
        "lanes", "kernel ms", "DRAM words", "LUT util", "fits"
    );
    for lanes in [1usize, 2, 4, 8, 16, 32] {
        let mut device = DeviceConfig::alveo_u200();
        device.verification_lanes = lanes;
        let prepared = prepare(&graph, s, t, k, PefpVariant::Full);
        let result = run_prepared(&prepared, PefpVariant::Full.engine_options(), &device);
        let areas = OnChipAreas {
            buffer_bytes: 8192 * 136,
            processing_bytes: 1024 * 136,
            graph_cache_bytes: graph.byte_size(),
            barrier_cache_bytes: graph.num_vertices() * 4,
            fifo_bytes: lanes * 2 * 136,
        };
        let estimate = ResourceEstimate::estimate(
            lanes,
            &areas,
            &ModuleCosts::default(),
            ResourceBudget::alveo_u200(),
        );
        println!(
            "{:<8} {:>12.3} {:>14} {:>11.1}% {:>10}",
            lanes,
            result.query_millis,
            result.device.counters.dram_words_total(),
            estimate.lut_utilisation() * 100.0,
            if estimate.fits() { "yes" } else { "NO" }
        );
    }

    // --- Sweep 2: buffer-area capacity ------------------------------------
    println!("\n== buffer-area sweep (Batch-DFS, default lanes) ==");
    println!(
        "{:<14} {:>12} {:>14} {:>14}",
        "buffer paths", "kernel ms", "buffer flushes", "DRAM fetches"
    );
    for buffer in [512usize, 2_048, 8_192, 32_768] {
        let device = DeviceConfig::alveo_u200();
        let prepared = prepare(&graph, s, t, k, PefpVariant::Full);
        let mut options = PefpVariant::Full.engine_options();
        options.buffer_capacity = buffer;
        options.dram_fetch_batch = buffer / 2;
        options.collect_paths = false;
        let result = run_prepared(&prepared, options, &device);
        println!(
            "{:<14} {:>12.3} {:>14} {:>14}",
            buffer,
            result.query_millis,
            result.device.counters.buffer_flushes,
            result.device.counters.dram_batch_fetches
        );
    }

    // --- The planner's pick, as an HLS-style report -----------------------
    let device = DeviceConfig::alveo_u200();
    let prepared = prepare(&graph, s, t, k, PefpVariant::Full);
    let plan = plan_query(&prepared, &device);
    println!("\n== planner decision ==");
    for line in &plan.rationale {
        println!("  - {line}");
    }
    let mut report = KernelReport::new("pefp_enumerate", &device, plan.areas, plan.resources);
    let expansions = plan.estimate.max_intermediate_paths.min(1_000_000);
    report.push_module(ModuleLatency::from_spec(
        "expansion",
        PipelineSpec::fully_pipelined(4),
        expansions,
    ));
    report.push_module(ModuleLatency::from_spec(
        "verify_dataflow",
        PipelineSpec::fully_pipelined(device.dataflow_verify_depth),
        expansions,
    ));
    println!("\n{}", report.render());

    // --- Energy comparison -------------------------------------------------
    let result = run_prepared(&prepared, plan.options.clone(), &device);
    let power = PowerModel::default();
    // Rough CPU-side comparison point: the JOIN baseline's wall clock on this
    // query (measured on this machine) — here approximated by the host engine
    // time of the run itself for a self-contained example.
    let energy = power.compare(
        result.device.cycles,
        device.clock_mhz,
        &result.device.counters,
        result.host_engine_millis.max(result.query_millis * 10.0),
    );
    println!(
        "energy estimate: {:.2} mJ on the FPGA vs {:.2} mJ on the CPU ({:.1}x more efficient)",
        energy.fpga_millijoules, energy.cpu_millijoules, energy.efficiency_ratio
    );
}
