//! Quickstart: load (or generate) a graph, run one PEFP query, print the
//! paths and the simulated device report.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart [path/to/edge_list.txt] [s] [t] [k]
//! ```
//!
//! Without arguments a small synthetic social graph is generated and a sample
//! query is executed on it.

use pefp::core::{run_query, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::{generators, io, DiGraph, VertexId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // 1. Load the graph: either from an edge-list file or a generated stand-in.
    let graph: DiGraph = match args.first() {
        Some(path) => {
            println!("loading edge list from {path}");
            io::read_edge_list_file(path).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            println!("no input file given; generating a 1,000-vertex power-law graph");
            generators::chung_lu(1_000, 6.0, 2.2, 42)
        }
    };
    let csr = graph.to_csr();
    println!("graph: {} vertices, {} edges", csr.num_vertices(), csr.num_edges());

    // 2. Pick the query.
    let parse =
        |i: usize, default: u32| args.get(i).and_then(|v| v.parse().ok()).unwrap_or(default);
    let s = VertexId(parse(1, 0));
    let t = VertexId(parse(2, (csr.num_vertices() as u32 / 2).max(1)));
    let k = parse(3, 5);
    println!("query: enumerate simple paths {s} -> {t} with at most {k} hops\n");

    // 3. Run the full PEFP pipeline (Pre-BFS on the host, enumeration on the
    //    simulated Alveo U200).
    let result = run_query(&csr, s, t, k, PefpVariant::Full, &DeviceConfig::alveo_u200());

    // 4. Report.
    println!("found {} path(s)", result.num_paths);
    for (i, path) in result.paths.iter().take(10).enumerate() {
        let rendered: Vec<String> = path.iter().map(|v| v.0.to_string()).collect();
        println!("  #{:<3} {}", i + 1, rendered.join(" -> "));
    }
    if result.paths.len() > 10 {
        println!("  ... and {} more", result.paths.len() - 10);
    }
    println!();
    println!("preprocessing (host)      : {:8.3} ms", result.preprocess_millis);
    println!("query (simulated device)  : {:8.3} ms", result.query_millis);
    println!("total                     : {:8.3} ms", result.total_millis());
    println!(
        "device: {} cycles, {} DRAM words moved, {} buffer flushes, cache hit rate {:.1}%",
        result.device.cycles,
        result.device.counters.dram_words_total(),
        result.device.counters.buffer_flushes,
        result.device.counters.cache_hit_rate() * 100.0
    );
}
