//! Label-constrained path enumeration.
//!
//! The paper studies unlabelled graphs but notes (Section I) that label
//! constraints — "only specific types of users will be considered" — can be
//! handled in the preprocessing stage by filtering out vertices that violate
//! the constraint. This example runs the extension from `pefp_core::labeled`
//! on a small social network whose users carry a role label, and shows how
//! the admissible-role set changes both the result set and the amount of
//! work shipped to the device.
//!
//! Run with `cargo run --release --example label_constrained`.

use pefp::core::{labeled::run_labeled_query, run_query, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::{generators, Label, LabelConstraint, VertexId, VertexLabels};

const ROLE_NAMES: [&str; 3] = ["person", "page", "bot"];
const PERSON: Label = 0;
const PAGE: Label = 1;
const BOT: Label = 2;

fn describe(constraint: &LabelConstraint) -> String {
    match constraint {
        LabelConstraint::Any => "any intermediate vertex".to_string(),
        LabelConstraint::OneOf(set) => format!(
            "intermediates restricted to {:?}",
            set.iter().map(|&l| ROLE_NAMES[l as usize]).collect::<Vec<_>>()
        ),
        LabelConstraint::NoneOf(set) => format!(
            "intermediates excluding {:?}",
            set.iter().map(|&l| ROLE_NAMES[l as usize]).collect::<Vec<_>>()
        ),
    }
}

fn main() {
    // A small-world social graph; every third vertex is a "page", every
    // seventh a suspected "bot", the rest are people.
    let graph = generators::small_world(1_200, 6, 0.15, 11).to_csr();
    let labels = VertexLabels::from_vec(
        (0..graph.num_vertices())
            .map(|i| {
                if i % 7 == 0 {
                    BOT
                } else if i % 3 == 0 {
                    PAGE
                } else {
                    PERSON
                }
            })
            .collect(),
    );
    let (s, t, k) = (VertexId(2), VertexId(601), 6);
    let device = DeviceConfig::alveo_u200();
    println!(
        "social graph: {} users, {} follow edges; query {s} -> {t}, k = {k}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    let unconstrained = run_query(&graph, s, t, k, PefpVariant::Full, &device);
    println!(
        "baseline ({}): {} paths, {:.3} ms total",
        describe(&LabelConstraint::Any),
        unconstrained.num_paths,
        unconstrained.total_millis()
    );

    let constraints = [
        LabelConstraint::NoneOf(vec![BOT]),
        LabelConstraint::OneOf(vec![PERSON]),
        LabelConstraint::OneOf(vec![PAGE]),
    ];
    for constraint in &constraints {
        let result =
            run_labeled_query(&graph, &labels, constraint, s, t, k, PefpVariant::Full, &device);
        println!(
            "{:<46}: {:>6} paths, {:.3} ms total",
            describe(constraint),
            result.num_paths,
            result.total_millis()
        );
        if let Some(path) = result.paths.first() {
            let rendered: Vec<String> = path
                .iter()
                .map(|v| format!("{}({})", v.0, ROLE_NAMES[labels.label(*v) as usize]))
                .collect();
            println!("    e.g. {}", rendered.join(" -> "));
        }
    }

    println!(
        "\nEvery constrained result set is a subset of the baseline's {} paths, and the\n\
         filtering happens on the host before the subgraph is shipped to the device,\n\
         exactly as the paper prescribes for labelled-graph extensions.",
        unconstrained.num_paths
    );
}
