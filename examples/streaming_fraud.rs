//! Real-time fraud detection over a transaction stream.
//!
//! The `fraud_detection` example checks a handful of hand-picked transactions
//! against a static graph; this one runs the full streaming system from
//! `pefp-streaming`: a synthetic transaction stream with injected fraud
//! rings flows through a sliding-window graph, and every arriving transaction
//! triggers a constrained cycle check. The same stream is processed once with
//! the PEFP engine on the simulated FPGA and once with the JOIN CPU baseline,
//! so the end-to-end latency gap of the paper's motivating deployment is
//! visible directly.
//!
//! Run with `cargo run --release --example streaming_fraud`.

use pefp::streaming::{
    CycleDetector, DetectorConfig, DetectorEngine, Transaction, TransactionGenerator,
    TransactionGeneratorConfig,
};

fn run_engine(engine: DetectorEngine, stream: &[Transaction]) -> (String, f64, f64) {
    let mut detector = CycleDetector::new(DetectorConfig {
        max_cycle_hops: 6,
        window_size: 5_000,
        engine,
        ..DetectorConfig::default()
    });
    let alerts = detector.ingest_stream(stream);
    let stats = detector.stats();
    let name = match engine {
        DetectorEngine::PefpSimulated => "PEFP (simulated FPGA)",
        DetectorEngine::JoinCpu => "JOIN (CPU baseline)",
        DetectorEngine::NaiveDfs => "naive DFS (oracle)",
    };
    println!("\n== {name} ==");
    println!("transactions ingested     : {}", stats.transactions);
    println!("alerts raised             : {} ({} cycles)", stats.alerts, stats.cycles);
    println!("alerts on injected fraud  : {}", stats.true_positive_alerts);
    println!("alerts on benign traffic  : {}", stats.benign_alerts);
    println!("skipped by reachability   : {}", stats.skipped_by_precheck);
    println!("fraud recall              : {:.1}%", detector.fraud_recall() * 100.0);
    println!(
        "host time {:.1} ms total ({:.4} ms/txn), simulated device time {:.1} ms",
        stats.host_millis,
        stats.host_millis / stats.transactions as f64,
        stats.device_millis
    );
    if let Some(alert) = alerts.first() {
        let path: Vec<String> = alert.cycles[0].iter().map(|v| v.0.to_string()).collect();
        println!(
            "first alert: txn {} -> {} closes cycle [{} -> {}]",
            alert.transaction.from,
            alert.transaction.to,
            path.join(" -> "),
            alert.transaction.to
        );
    }
    (name.to_string(), stats.host_millis, stats.device_millis)
}

fn main() {
    // One deterministic stream shared by every engine.
    let mut generator = TransactionGenerator::new(TransactionGeneratorConfig {
        num_accounts: 800,
        fraud_probability: 0.03,
        ring_size: 4,
        seed: 2_026,
    });
    let stream = generator.stream(4_000);
    let injected = stream.iter().filter(|t| t.is_fraud).count();
    println!(
        "transaction stream: {} transfers across {} accounts, {} belong to injected fraud rings",
        stream.len(),
        800,
        injected
    );

    let engines = [DetectorEngine::PefpSimulated, DetectorEngine::JoinCpu];
    let mut rows = Vec::new();
    for engine in engines {
        rows.push(run_engine(engine, &stream));
    }

    println!("\n== summary ==");
    for (name, host_ms, device_ms) in rows {
        println!("{name:<26} host {host_ms:9.1} ms   device {device_ms:9.2} ms");
    }
    println!(
        "\nBoth engines report identical cycles; the difference is where the per-transaction\n\
         enumeration runs. See EXPERIMENTS.md for the corresponding figure-level comparison."
    );
}
