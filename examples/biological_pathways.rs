//! Biological pathway queries.
//!
//! The paper's third motivating application: in a biological interaction
//! network (substances as vertices, interactions as edges), the chains of
//! interactions between two substances `s` and `t` are exactly the s-t simple
//! paths with a hop constraint. This example builds a Reactome-like dense
//! reaction network, runs pathway queries at increasing hop budgets, and shows
//! how the Pre-BFS preprocessing shrinks the graph shipped to the device.
//!
//! Run with `cargo run --release --example biological_pathways`.

use pefp::core::{pre_bfs, run_query, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::{Dataset, ScaleProfile, VertexId};

fn main() {
    // The Reactome stand-in from the dataset catalog (Table II).
    let spec = Dataset::Reactome.spec();
    let graph = spec.generate(ScaleProfile::Tiny).to_csr();
    println!(
        "reaction network ({} stand-in): {} substances, {} interactions",
        spec.name,
        graph.num_vertices(),
        graph.num_edges()
    );

    let s = VertexId(3);
    let t = VertexId(90);
    let device = DeviceConfig::alveo_u200();

    println!("\npathway query: interaction chains {s} -> {t}\n");
    println!(
        "{:>3}  {:>10}  {:>14}  {:>14}  {:>22}",
        "k", "pathways", "preprocess", "device time", "subgraph (V / E)"
    );
    for k in 2..=5u32 {
        // Show what Pre-BFS keeps for this hop budget.
        let prep = pre_bfs(&graph, s, t, k);
        let result = run_query(&graph, s, t, k, PefpVariant::Full, &device);
        println!(
            "{k:>3}  {:>10}  {:>11.3} ms  {:>11.3} ms  {:>10} / {:>8}",
            result.num_paths,
            result.preprocess_millis,
            result.query_millis,
            prep.graph.num_vertices(),
            prep.graph.num_edges(),
        );
    }

    println!("\nexample pathways at k = 4:");
    let result = run_query(&graph, s, t, 4, PefpVariant::Full, &device);
    for path in result.paths.iter().take(5) {
        let chain: Vec<String> = path.iter().map(|v| format!("S{}", v.0)).collect();
        println!("  {}", chain.join(" => "));
    }
    if result.paths.is_empty() {
        println!("  (no pathway within 4 interactions — try a larger k)");
    }
}
