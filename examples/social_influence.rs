//! Social-network influence analysis.
//!
//! The paper's second motivating application: to estimate how strongly user
//! `t` is influenced by (or similar to) user `s`, enumerate all simple paths
//! from `s` to `t` with a hop constraint — many short connection chains mean
//! a strong relationship. This example compares the path counts PEFP reports
//! for a few user pairs and also cross-checks PEFP against the JOIN baseline.
//!
//! Run with `cargo run --release --example social_influence`.

use pefp::baselines::Join;
use pefp::core::{run_query, PefpVariant};
use pefp::fpga::DeviceConfig;
use pefp::graph::paths::canonicalize;
use pefp::graph::{generators, VertexId};

fn main() {
    // Follower graph: low diameter, power-law degrees (twitter-like).
    let graph = generators::small_world(3_000, 3, 0.5, 11).to_csr();
    println!("social graph: {} users, {} follow edges", graph.num_vertices(), graph.num_edges());

    let pairs = [
        (VertexId(0), VertexId(1500)),
        (VertexId(42), VertexId(43)),
        (VertexId(7), VertexId(2900)),
    ];
    let k = 4;
    let device = DeviceConfig::alveo_u200();

    println!("\ninfluence score = number of simple connection chains with at most {k} hops\n");
    for (s, t) in pairs {
        let pefp = run_query(&graph, s, t, k, PefpVariant::Full, &device);

        // Cross-check against the CPU state of the art (JOIN).
        let mut join = Join::new();
        let join_paths = join.enumerate(&graph, s, t, k);
        assert_eq!(
            canonicalize(pefp.paths.clone()),
            canonicalize(join_paths),
            "PEFP and JOIN disagree — this would be a bug"
        );

        let score = pefp.num_paths;
        let verdict = match score {
            0 => "no measurable influence",
            1..=9 => "weak tie",
            10..=99 => "moderate influence",
            _ => "strong influence",
        };
        println!(
            "user {s} -> user {t}: {score:5} chains ({verdict}); device time {:.3} ms, JOIN agreed",
            pefp.query_millis
        );
    }
}
