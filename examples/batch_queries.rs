//! Batched query service: the Section VII-A methodology as an application.
//!
//! The paper ships 1,000 queries and their preprocessed subgraphs to the FPGA
//! in a single DMA transfer, which is why the per-query transfer cost
//! (0.1–0.3 ms) is negligible next to preprocessing and enumeration. This
//! example reproduces that trade-off with the host runtime from `pefp-host`:
//! the same query set is served once through one-query-at-a-time sessions and
//! once through the batch scheduler (with deduplication and parallel host
//! preprocessing), and the time breakdown of both deployments is printed.
//!
//! Run with `cargo run --release --example batch_queries`.

use pefp::graph::{sampling::sample_reachable_pairs, Dataset, ScaleProfile};
use pefp::host::{
    load_dataset, BatchScheduler, HostSession, QueryRequest, SchedulerConfig, SessionConfig,
};

fn main() {
    // The soc-Epinions1 stand-in at the default experiment scale.
    let handle = load_dataset(Dataset::SocEpinions, ScaleProfile::Small);
    println!("loaded {}", handle.summary());

    // Build a reachable query workload exactly like the experiment harness.
    let k = 4;
    let queries: Vec<QueryRequest> = sample_reachable_pairs(&handle.csr, k, 200, 7)
        .into_iter()
        .map(|(s, t)| QueryRequest { s, t, k })
        .collect();
    println!("workload: {} reachable (s, t) pairs with k = {k}\n", queries.len());

    // Deployment A: a plain session, one query (and one transfer) at a time.
    let mut session = HostSession::with_graph(
        handle.csr.clone(),
        SessionConfig { collect_paths: false, ..SessionConfig::default() },
    );
    for q in &queries {
        session.run_query(*q).expect("query validated against the loaded graph");
    }
    let stats = session.stats();
    println!("== one query per transfer (interactive session) ==");
    println!("queries served        : {}", stats.queries);
    println!("total paths           : {}", stats.total_paths);
    println!("preprocessing (T1)    : {:9.2} ms", stats.preprocess_millis);
    println!("PCIe transfers        : {:9.2} ms", stats.transfer_millis);
    println!("device enumeration(T2): {:9.2} ms", stats.device_millis);
    println!("avg total per query   : {:9.3} ms", stats.avg_total_millis());

    // Deployment B: the batch scheduler — dedup, parallel Pre-BFS, one DMA.
    let scheduler = BatchScheduler::new(SchedulerConfig {
        preprocess_threads: 4,
        dedup: true,
        ..SchedulerConfig::default()
    });
    let outcome = scheduler.run_batch(&handle, &queries).expect("batch accepted");
    println!("\n== batched transfer (Section VII-A methodology) ==");
    println!("queries served        : {}", outcome.results.len());
    println!("duplicates collapsed  : {}", outcome.deduplicated);
    println!("total paths           : {}", outcome.total_paths());
    println!("preprocessing (T1)    : {:9.2} ms  (4 host threads)", outcome.preprocess_millis);
    println!(
        "single DMA transfer   : {:9.2} ms  ({} bytes in {} descriptors)",
        outcome.transfer.total_millis, outcome.transfer.bytes, outcome.transfer.descriptors
    );
    println!("device enumeration(T2): {:9.2} ms", outcome.device_millis);
    println!("avg total per query   : {:9.3} ms", outcome.avg_query_millis());

    let interactive_transfer = stats.transfer_millis;
    let batched_transfer = outcome.transfer.total_millis;
    println!(
        "\ntransfer amortisation: {:.2} ms interactive vs {:.2} ms batched ({:.1}x cheaper)",
        interactive_transfer,
        batched_transfer,
        interactive_transfer / batched_transfer.max(1e-9)
    );
}
