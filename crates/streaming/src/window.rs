//! Sliding-window maintenance of the transaction graph.
//!
//! Fraud detection only cares about *recent* money movement: a cycle that
//! takes a year to close is not the pattern the constrained cycle detection
//! of Qiu et al. targets. The window keeps the dynamic graph restricted to
//! the last `window_size` timestamps, expiring older edges as the stream
//! advances.

use crate::dynamic::DynamicGraph;
use crate::transaction::Transaction;
use pefp_graph::VertexId;

/// A dynamic graph restricted to the most recent `window_size` timestamps.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    graph: DynamicGraph,
    window_size: u64,
    latest_timestamp: u64,
    expired_edges: u64,
    ingested: u64,
}

impl SlidingWindow {
    /// Creates a window spanning `window_size` timestamp units.
    pub fn new(window_size: u64) -> Self {
        assert!(window_size > 0, "window size must be positive");
        SlidingWindow {
            graph: DynamicGraph::new(),
            window_size,
            latest_timestamp: 0,
            expired_edges: 0,
            ingested: 0,
        }
    }

    /// The graph restricted to the window.
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Mutable access to the windowed graph, for callers seeding it with
    /// pre-existing edges (e.g. a runtime-backed detector adopting a loaded
    /// graph).
    pub fn graph_mut(&mut self) -> &mut DynamicGraph {
        &mut self.graph
    }

    /// The timestamp of the most recent ingested transaction.
    pub fn latest_timestamp(&self) -> u64 {
        self.latest_timestamp
    }

    /// Number of transactions ingested so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Number of edges expired out of the window so far.
    pub fn expired_edges(&self) -> u64 {
        self.expired_edges
    }

    /// The oldest timestamp still inside the window.
    pub fn window_start(&self) -> u64 {
        self.latest_timestamp.saturating_sub(self.window_size - 1)
    }

    /// Advances the window to `timestamp` without inserting anything,
    /// expiring every edge that falls out of the new window. Used by the
    /// detector to age the graph *before* querying it for cycles closed by a
    /// transaction at `timestamp`.
    pub fn advance_to(&mut self, timestamp: u64) -> usize {
        let mut dropped = Vec::new();
        self.advance_to_collecting(timestamp, &mut dropped)
    }

    /// Like [`SlidingWindow::advance_to`], but appends every expired edge to
    /// `expired` so a runtime mirroring the window can stage the matching
    /// removal delta.
    pub fn advance_to_collecting(
        &mut self,
        timestamp: u64,
        expired: &mut Vec<(VertexId, VertexId)>,
    ) -> usize {
        self.latest_timestamp = self.latest_timestamp.max(timestamp);
        let removed = self.graph.expire_older_than_into(self.window_start(), expired);
        self.expired_edges += removed as u64;
        removed
    }

    /// Ingests one transaction: inserts (or refreshes) its edge and expires
    /// edges that fell out of the window. Returns `true` when the edge was
    /// not already present.
    pub fn ingest(&mut self, tx: &Transaction) -> bool {
        let mut dropped = Vec::new();
        self.ingest_collecting(tx, &mut dropped)
    }

    /// Like [`SlidingWindow::ingest`], but appends every edge the insertion
    /// expired to `expired`.
    pub fn ingest_collecting(
        &mut self,
        tx: &Transaction,
        expired: &mut Vec<(VertexId, VertexId)>,
    ) -> bool {
        self.ingested += 1;
        self.latest_timestamp = self.latest_timestamp.max(tx.timestamp);
        let inserted = self.graph.insert_edge(VertexId(tx.from), VertexId(tx.to), tx.timestamp);
        let cutoff = self.window_start();
        self.expired_edges += self.graph.expire_older_than_into(cutoff, expired) as u64;
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(ts: u64, from: u32, to: u32) -> Transaction {
        Transaction::new(ts, from, to, 1.0)
    }

    #[test]
    fn edges_expire_once_the_window_slides_past_them() {
        let mut window = SlidingWindow::new(3);
        window.ingest(&tx(0, 0, 1));
        window.ingest(&tx(1, 1, 2));
        window.ingest(&tx(2, 2, 3));
        assert_eq!(window.graph().num_edges(), 3);
        // Timestamp 3: window now covers [1, 3], so the edge from ts 0 expires.
        window.ingest(&tx(3, 3, 4));
        assert_eq!(window.graph().num_edges(), 3);
        assert!(!window.graph().has_edge(VertexId(0), VertexId(1)));
        assert_eq!(window.expired_edges(), 1);
        assert_eq!(window.window_start(), 1);
    }

    #[test]
    fn refreshing_an_edge_keeps_it_alive() {
        let mut window = SlidingWindow::new(3);
        window.ingest(&tx(0, 0, 1));
        window.ingest(&tx(2, 0, 1)); // same edge, newer timestamp
        window.ingest(&tx(4, 1, 2));
        // Window covers [2, 4]; the refreshed edge (ts 2) survives.
        assert!(window.graph().has_edge(VertexId(0), VertexId(1)));
        assert_eq!(window.ingested(), 3);
    }

    #[test]
    fn latest_timestamp_is_monotone_even_with_reordered_input() {
        let mut window = SlidingWindow::new(10);
        window.ingest(&tx(5, 0, 1));
        window.ingest(&tx(3, 1, 2)); // late arrival
        assert_eq!(window.latest_timestamp(), 5);
        assert_eq!(window.graph().num_edges(), 2);
    }

    #[test]
    fn window_of_one_keeps_only_the_current_timestamp() {
        let mut window = SlidingWindow::new(1);
        window.ingest(&tx(0, 0, 1));
        window.ingest(&tx(1, 1, 2));
        assert_eq!(window.graph().num_edges(), 1);
        assert!(window.graph().has_edge(VertexId(1), VertexId(2)));
    }

    #[test]
    #[should_panic(expected = "window size must be positive")]
    fn zero_window_is_rejected() {
        SlidingWindow::new(0);
    }
}
