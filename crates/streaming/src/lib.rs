//! # pefp-streaming
//!
//! The e-commerce application that motivates the paper (Section I): a cycle
//! in a transaction network "indicates that there might exist fraudulent
//! activities among the participants", and the production system at Alibaba
//! (Qiu et al., VLDB 2018) enumerates s-t k-paths whenever a new transaction
//! `t → s` is submitted — every such path closes a new constrained cycle
//! through the new edge. Response time is the whole point, which is why the
//! paper accelerates the path enumeration on an FPGA.
//!
//! This crate builds that surrounding system:
//!
//! * [`dynamic`] — a mutable transaction graph with edge insertion/expiry and
//!   cheap snapshots to the CSR form the enumeration engines run on.
//! * [`transaction`] — a deterministic transaction-stream generator with
//!   injected fraud rings, so detection quality can be evaluated.
//! * [`window`] — sliding-window maintenance (old transactions stop being
//!   relevant for fraud detection).
//! * [`detector`] — the real-time detector: for every arriving transaction it
//!   enumerates the newly closed k-hop cycles, with the enumeration delegated
//!   either to the simulated-FPGA PEFP engine or the CPU baseline.
//! * [`runtime_detector`] — the same detection protocol running through the
//!   multi-tenant [`pefp_host::HostRuntime`]: transactions become incremental
//!   [`pefp_graph::GraphDelta`] batches (epoch-versioned snapshots, touched-
//!   vertex cache invalidation) instead of per-query CSR rebuilds.
//!
//! ## Quick example
//!
//! ```
//! use pefp_streaming::detector::{CycleDetector, DetectorConfig};
//! use pefp_streaming::transaction::Transaction;
//!
//! let mut detector = CycleDetector::new(DetectorConfig::default());
//! // 0 -> 1 -> 2, then 2 -> 0 closes a 3-hop cycle.
//! assert_eq!(detector.ingest(&Transaction::new(0, 0, 1, 10.0)).cycles.len(), 0);
//! assert_eq!(detector.ingest(&Transaction::new(1, 1, 2, 10.0)).cycles.len(), 0);
//! let alert = detector.ingest(&Transaction::new(2, 2, 0, 10.0));
//! assert_eq!(alert.cycles.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod detector;
pub mod dynamic;
pub mod runtime_detector;
pub mod transaction;
pub mod window;

pub use detector::{CycleAlert, CycleDetector, DetectorConfig, DetectorEngine, DetectorStats};
pub use dynamic::DynamicGraph;
pub use runtime_detector::{RuntimeCycleDetector, RuntimeDetectorConfig};
pub use transaction::{Transaction, TransactionGenerator, TransactionGeneratorConfig};
pub use window::SlidingWindow;
