//! A mutable, timestamped transaction graph.
//!
//! The static substrate (`pefp-graph`) is immutable CSR, which is what the
//! enumeration engines want; the streaming application instead needs to add
//! an edge per transaction and drop edges as they age out of the detection
//! window. [`DynamicGraph`] keeps an adjacency-set representation with edge
//! timestamps, supports O(degree) insertion/removal, and snapshots to CSR on
//! demand (the detector snapshots lazily — only when a query actually has to
//! run).

use pefp_graph::{CsrGraph, VertexId};
use std::collections::BTreeMap;

/// A directed graph under edge insertions and deletions, with a timestamp per
/// edge (the latest transaction that asserted the edge).
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    /// adjacency[v] = map from successor to the latest timestamp.
    adjacency: Vec<BTreeMap<u32, u64>>,
    num_edges: usize,
}

impl DynamicGraph {
    /// Creates an empty graph with no vertices.
    pub fn new() -> Self {
        DynamicGraph::default()
    }

    /// Creates a graph with `n` isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DynamicGraph { adjacency: vec![BTreeMap::new(); n], num_edges: 0 }
    }

    /// Number of vertices currently allocated.
    pub fn num_vertices(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of distinct directed edges currently present.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Grows the vertex set so `v` is a valid vertex.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v.index() >= self.adjacency.len() {
            self.adjacency.resize(v.index() + 1, BTreeMap::new());
        }
    }

    /// Inserts (or refreshes the timestamp of) the edge `from → to`.
    /// Returns `true` when the edge is new.
    pub fn insert_edge(&mut self, from: VertexId, to: VertexId, timestamp: u64) -> bool {
        self.ensure_vertex(from);
        self.ensure_vertex(to);
        let is_new = self.adjacency[from.index()].insert(to.0, timestamp).is_none();
        if is_new {
            self.num_edges += 1;
        }
        is_new
    }

    /// Removes the edge `from → to` if present; returns `true` when removed.
    pub fn remove_edge(&mut self, from: VertexId, to: VertexId) -> bool {
        if from.index() >= self.adjacency.len() {
            return false;
        }
        let removed = self.adjacency[from.index()].remove(&to.0).is_some();
        if removed {
            self.num_edges -= 1;
        }
        removed
    }

    /// Whether the edge `from → to` is currently present.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.adjacency.get(from.index()).is_some_and(|succ| succ.contains_key(&to.0))
    }

    /// The timestamp stored on edge `from → to`, if present.
    pub fn edge_timestamp(&self, from: VertexId, to: VertexId) -> Option<u64> {
        self.adjacency.get(from.index()).and_then(|succ| succ.get(&to.0).copied())
    }

    /// Out-degree of `v` (0 for out-of-range vertices).
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.adjacency.get(v.index()).map_or(0, |s| s.len())
    }

    /// Iterates over the successors of `v` in ascending id order.
    pub fn successors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adjacency
            .get(v.index())
            .into_iter()
            .flat_map(|succ| succ.keys().copied().map(VertexId))
    }

    /// Removes every edge whose timestamp is strictly older than `cutoff`.
    /// Returns the number of edges removed.
    pub fn expire_older_than(&mut self, cutoff: u64) -> usize {
        let mut dropped = Vec::new();
        self.expire_older_than_into(cutoff, &mut dropped)
    }

    /// Like [`DynamicGraph::expire_older_than`], but also appends every
    /// removed edge to `expired` — the removal list an epoch-versioned
    /// runtime mirror needs to stage the matching
    /// [`pefp_graph::GraphDelta`].
    pub fn expire_older_than_into(
        &mut self,
        cutoff: u64,
        expired: &mut Vec<(VertexId, VertexId)>,
    ) -> usize {
        let mut removed = 0;
        for (from, succ) in self.adjacency.iter_mut().enumerate() {
            let before = succ.len();
            succ.retain(|&to, &mut ts| {
                if ts >= cutoff {
                    true
                } else {
                    expired.push((VertexId(from as u32), VertexId(to)));
                    false
                }
            });
            removed += before - succ.len();
        }
        self.num_edges -= removed;
        removed
    }

    /// Snapshots the current edge set into the immutable CSR form the
    /// enumeration engines consume.
    pub fn snapshot_csr(&self) -> CsrGraph {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges);
        for (from, succ) in self.adjacency.iter().enumerate() {
            for &to in succ.keys() {
                edges.push((from as u32, to));
            }
        }
        CsrGraph::from_edges(self.adjacency.len(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(v: u32) -> VertexId {
        VertexId(v)
    }

    #[test]
    fn insert_grows_the_vertex_set_and_counts_edges() {
        let mut g = DynamicGraph::new();
        assert!(g.insert_edge(vid(0), vid(5), 1));
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(vid(0), vid(5)));
        assert!(!g.has_edge(vid(5), vid(0)));
        assert_eq!(g.out_degree(vid(0)), 1);
        assert_eq!(g.out_degree(vid(9)), 0);
    }

    #[test]
    fn reinserting_an_edge_refreshes_its_timestamp_only() {
        let mut g = DynamicGraph::new();
        assert!(g.insert_edge(vid(1), vid(2), 10));
        assert!(!g.insert_edge(vid(1), vid(2), 20));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_timestamp(vid(1), vid(2)), Some(20));
    }

    #[test]
    fn remove_edge_is_idempotent() {
        let mut g = DynamicGraph::new();
        g.insert_edge(vid(0), vid(1), 1);
        assert!(g.remove_edge(vid(0), vid(1)));
        assert!(!g.remove_edge(vid(0), vid(1)));
        assert!(!g.remove_edge(vid(7), vid(1)));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn expiry_drops_exactly_the_old_edges() {
        let mut g = DynamicGraph::new();
        g.insert_edge(vid(0), vid(1), 5);
        g.insert_edge(vid(1), vid(2), 10);
        g.insert_edge(vid(2), vid(3), 15);
        let removed = g.expire_older_than(10);
        assert_eq!(removed, 1);
        assert!(!g.has_edge(vid(0), vid(1)));
        assert!(g.has_edge(vid(1), vid(2)));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn snapshot_matches_the_dynamic_state() {
        let mut g = DynamicGraph::with_vertices(4);
        g.insert_edge(vid(0), vid(1), 1);
        g.insert_edge(vid(1), vid(2), 2);
        g.insert_edge(vid(2), vid(0), 3);
        g.insert_edge(vid(2), vid(3), 4);
        g.remove_edge(vid(2), vid(3));
        let csr = g.snapshot_csr();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 3);
        assert!(csr.has_edge(vid(2), vid(0)));
        assert!(!csr.has_edge(vid(2), vid(3)));
    }

    #[test]
    fn successors_are_sorted_and_live() {
        let mut g = DynamicGraph::new();
        g.insert_edge(vid(0), vid(9), 1);
        g.insert_edge(vid(0), vid(3), 1);
        g.insert_edge(vid(0), vid(6), 1);
        let succ: Vec<VertexId> = g.successors(vid(0)).collect();
        assert_eq!(succ, vec![vid(3), vid(6), vid(9)]);
        assert!(g.successors(vid(42)).next().is_none());
    }

    #[test]
    fn empty_graph_snapshots_to_an_empty_csr() {
        let g = DynamicGraph::new();
        let csr = g.snapshot_csr();
        assert_eq!(csr.num_vertices(), 0);
        assert_eq!(csr.num_edges(), 0);
    }
}
