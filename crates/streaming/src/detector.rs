//! Real-time constrained cycle detection.
//!
//! The deployment scenario of the paper's introduction: "when a new
//! transaction is submitted from account `t` to account `s`, the system will
//! perform s-t k-path enumeration to report all newly produced cycles".
//! Concretely, a transaction inserts the edge `t → s` into the (windowed)
//! transaction graph; every simple path `s ⇝ t` with at most `k - 1` hops that
//! already exists closes a constrained cycle of at most `k` hops through the
//! new edge. The detector performs exactly that enumeration per transaction,
//! delegating it either to the simulated-FPGA PEFP engine or to a CPU
//! baseline so the two deployments can be compared end to end.

use crate::transaction::Transaction;
use crate::window::SlidingWindow;
use pefp_baselines::{naive_dfs_enumerate, Join};
use pefp_core::{run_query, PefpVariant};
use pefp_fpga::DeviceConfig;
use pefp_graph::{khop_bfs, CsrGraph, Path, VertexId};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which engine the detector uses for the per-transaction enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorEngine {
    /// PEFP on the simulated FPGA (Pre-BFS + device enumeration).
    PefpSimulated,
    /// The JOIN CPU baseline.
    JoinCpu,
    /// Plain bounded DFS (correctness oracle; slowest).
    NaiveDfs,
}

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Maximum cycle length in hops (the constrained-cycle `k`). A cycle uses
    /// the new edge plus an existing path of at most `k - 1` hops.
    pub max_cycle_hops: u32,
    /// Sliding-window span in timestamp units.
    pub window_size: u64,
    /// Which enumeration engine to use.
    pub engine: DetectorEngine,
    /// Device profile used by [`DetectorEngine::PefpSimulated`].
    pub device: DeviceConfig,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            max_cycle_hops: 6,
            window_size: 100_000,
            engine: DetectorEngine::PefpSimulated,
            device: DeviceConfig::alveo_u200(),
        }
    }
}

/// The detector's verdict on one transaction.
#[derive(Debug, Clone)]
pub struct CycleAlert {
    /// The transaction that was checked.
    pub transaction: Transaction,
    /// Newly closed cycles, each given as the pre-existing path
    /// `s ⇝ t` (the cycle is that path plus the new edge `t → s`).
    pub cycles: Vec<Path>,
    /// Host wall-clock spent on the check, in milliseconds.
    pub host_millis: f64,
    /// Simulated device time in milliseconds (0 for the CPU engines).
    pub device_millis: f64,
}

impl CycleAlert {
    /// Whether any cycle was detected.
    pub fn is_alert(&self) -> bool {
        !self.cycles.is_empty()
    }
}

/// Aggregate detection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DetectorStats {
    /// Transactions ingested.
    pub transactions: u64,
    /// Transactions that closed at least one cycle.
    pub alerts: u64,
    /// Total cycles reported.
    pub cycles: u64,
    /// Alerts on transactions whose ground truth marked them fraudulent.
    pub true_positive_alerts: u64,
    /// Alerts on transactions marked benign (background traffic can also
    /// close cycles — these are not "errors", just uninteresting).
    pub benign_alerts: u64,
    /// Transactions skipped by the cheap reachability pre-check.
    pub skipped_by_precheck: u64,
    /// Total host milliseconds spent in detection.
    pub host_millis: f64,
    /// Total simulated device milliseconds.
    pub device_millis: f64,
}

impl DetectorStats {
    /// Fraction of fraudulent transactions that raised an alert, over the
    /// fraudulent transactions seen (0 when none were seen).
    pub fn recall_on_fraud(&self, fraud_seen: u64) -> f64 {
        if fraud_seen == 0 {
            0.0
        } else {
            self.true_positive_alerts as f64 / fraud_seen as f64
        }
    }
}

/// The streaming cycle detector.
#[derive(Debug)]
pub struct CycleDetector {
    config: DetectorConfig,
    window: SlidingWindow,
    stats: DetectorStats,
    fraud_seen: u64,
}

impl CycleDetector {
    /// Creates a detector with `config`.
    pub fn new(config: DetectorConfig) -> Self {
        let window = SlidingWindow::new(config.window_size);
        CycleDetector { config, window, stats: DetectorStats::default(), fraud_seen: 0 }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The current windowed graph.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Recall on injected fraud so far (needs ground-truth flags on the
    /// ingested transactions).
    pub fn fraud_recall(&self) -> f64 {
        self.stats.recall_on_fraud(self.fraud_seen)
    }

    fn enumerate(&self, g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> (Vec<Path>, f64) {
        match self.config.engine {
            DetectorEngine::PefpSimulated => {
                let result = run_query(g, s, t, k, PefpVariant::Full, &self.config.device);
                (result.paths, result.query_millis)
            }
            DetectorEngine::JoinCpu => (Join::new().enumerate(g, s, t, k), 0.0),
            DetectorEngine::NaiveDfs => (naive_dfs_enumerate(g, s, t, k), 0.0),
        }
    }

    /// Ingests one transaction and reports the cycles it closed.
    pub fn ingest(&mut self, tx: &Transaction) -> CycleAlert {
        let started = Instant::now();
        self.stats.transactions += 1;
        if tx.is_fraud {
            self.fraud_seen += 1;
        }

        // Age out edges that are stale relative to this transaction before
        // querying: a cycle is only interesting if all of its edges fall
        // inside the detection window ending at the new timestamp.
        self.window.advance_to(tx.timestamp);

        // The path query runs against the graph *before* the new edge is
        // inserted: a cycle must use the new edge exactly once (it is the
        // closing edge), and the path s ⇝ t is simple so it cannot use the
        // edge t → s anyway. Inserting first would not change the result, but
        // querying first keeps the snapshot one edge smaller.
        let path_source = VertexId(tx.to); // s in the paper's phrasing
        let path_target = VertexId(tx.from); // t in the paper's phrasing
        let path_budget = self.config.max_cycle_hops.saturating_sub(1);

        let mut cycles = Vec::new();
        let mut device_millis = 0.0;
        let graph_has_both = path_source.index() < self.window.graph().num_vertices()
            && path_target.index() < self.window.graph().num_vertices();

        if graph_has_both && path_budget > 0 && path_source != path_target {
            let snapshot = self.window.graph().snapshot_csr();
            // Cheap pre-check: is t reachable from s within the budget at all?
            let dist = khop_bfs(&snapshot, path_source, path_budget);
            if dist[path_target.index()] <= path_budget {
                let (paths, dev) = self.enumerate(&snapshot, path_source, path_target, path_budget);
                cycles = paths;
                device_millis = dev;
            } else {
                self.stats.skipped_by_precheck += 1;
            }
        } else {
            self.stats.skipped_by_precheck += 1;
        }

        // Now admit the new edge into the window.
        self.window.ingest(tx);

        let host_millis = started.elapsed().as_secs_f64() * 1e3;
        self.stats.host_millis += host_millis;
        self.stats.device_millis += device_millis;
        if !cycles.is_empty() {
            self.stats.alerts += 1;
            self.stats.cycles += cycles.len() as u64;
            if tx.is_fraud {
                self.stats.true_positive_alerts += 1;
            } else {
                self.stats.benign_alerts += 1;
            }
        }
        CycleAlert { transaction: *tx, cycles, host_millis, device_millis }
    }

    /// Ingests a whole stream, returning only the transactions that raised an
    /// alert.
    pub fn ingest_stream(&mut self, stream: &[Transaction]) -> Vec<CycleAlert> {
        stream.iter().map(|tx| self.ingest(tx)).filter(CycleAlert::is_alert).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{TransactionGenerator, TransactionGeneratorConfig};
    use pefp_graph::paths::is_simple;

    fn tx(ts: u64, from: u32, to: u32) -> Transaction {
        Transaction::new(ts, from, to, 100.0)
    }

    fn detector(engine: DetectorEngine, k: u32) -> CycleDetector {
        CycleDetector::new(DetectorConfig {
            max_cycle_hops: k,
            window_size: 1_000_000,
            engine,
            device: DeviceConfig::alveo_u200(),
        })
    }

    #[test]
    fn detects_a_simple_triangle() {
        let mut d = detector(DetectorEngine::PefpSimulated, 6);
        assert!(!d.ingest(&tx(0, 0, 1)).is_alert());
        assert!(!d.ingest(&tx(1, 1, 2)).is_alert());
        let alert = d.ingest(&tx(2, 2, 0));
        assert_eq!(alert.cycles.len(), 1);
        // The reported path goes from the new edge's head (0) to its tail (2).
        assert_eq!(alert.cycles[0], vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(d.stats().alerts, 1);
        assert_eq!(d.stats().cycles, 1);
    }

    #[test]
    fn hop_constraint_bounds_the_cycle_length() {
        // A 4-cycle needs max_cycle_hops >= 4 to be reported.
        let mut short = detector(DetectorEngine::NaiveDfs, 3);
        let mut long = detector(DetectorEngine::NaiveDfs, 4);
        let txs = [tx(0, 0, 1), tx(1, 1, 2), tx(2, 2, 3), tx(3, 3, 0)];
        for t in &txs[..3] {
            short.ingest(t);
            long.ingest(t);
        }
        assert!(!short.ingest(&txs[3]).is_alert());
        assert!(long.ingest(&txs[3]).is_alert());
    }

    #[test]
    fn parallel_paths_produce_multiple_cycles() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3, closing 3 -> 0 creates two 3-hop cycles.
        let mut d = detector(DetectorEngine::PefpSimulated, 4);
        for t in [tx(0, 0, 1), tx(1, 1, 3), tx(2, 0, 2), tx(3, 2, 3)] {
            assert!(!d.ingest(&t).is_alert());
        }
        let alert = d.ingest(&tx(4, 3, 0));
        assert_eq!(alert.cycles.len(), 2);
        for c in &alert.cycles {
            assert!(is_simple(c));
            assert_eq!(c[0], VertexId(0));
            assert_eq!(*c.last().unwrap(), VertexId(3));
        }
    }

    #[test]
    fn all_engines_agree_on_the_same_stream() {
        let mut generator = TransactionGenerator::new(TransactionGeneratorConfig {
            num_accounts: 40,
            fraud_probability: 0.10,
            ring_size: 3,
            seed: 23,
        });
        let stream = generator.stream(300);
        let mut counts = Vec::new();
        for engine in
            [DetectorEngine::PefpSimulated, DetectorEngine::JoinCpu, DetectorEngine::NaiveDfs]
        {
            let mut d = detector(engine, 5);
            let alerts = d.ingest_stream(&stream);
            counts.push((alerts.len(), alerts.iter().map(|a| a.cycles.len()).sum::<usize>()));
        }
        assert_eq!(counts[0], counts[1], "PEFP vs JOIN");
        assert_eq!(counts[0], counts[2], "PEFP vs naive DFS");
    }

    #[test]
    fn injected_fraud_rings_are_caught() {
        let config = TransactionGeneratorConfig {
            num_accounts: 200,
            fraud_probability: 0.05,
            ring_size: 4,
            seed: 31,
        };
        let mut generator = TransactionGenerator::new(config);
        let stream = generator.stream(1_500);
        let mut d = detector(DetectorEngine::PefpSimulated, 6);
        d.ingest_stream(&stream);
        let stats = d.stats();
        assert!(stats.alerts > 0);
        assert!(stats.true_positive_alerts > 0);
        // Every completed ring's closing transaction must alert: recall over
        // fraud *transactions* is diluted by the non-closing ring edges, so
        // just require a healthy floor.
        assert!(d.fraud_recall() > 0.1, "recall {}", d.fraud_recall());
        assert!(stats.device_millis > 0.0);
    }

    #[test]
    fn repeated_transactions_do_not_double_count_cycles() {
        let mut d = detector(DetectorEngine::NaiveDfs, 4);
        d.ingest(&tx(0, 0, 1));
        d.ingest(&tx(1, 1, 0)); // closes the 2-cycle
        assert_eq!(d.stats().cycles, 1);
        // Re-sending the same closing transaction finds the same single path
        // again (the graph is unchanged), it does not accumulate duplicates
        // inside one alert.
        let again = d.ingest(&tx(2, 1, 0));
        assert_eq!(again.cycles.len(), 1);
    }

    #[test]
    fn self_transfer_and_unknown_accounts_never_alert() {
        let mut d = detector(DetectorEngine::PefpSimulated, 5);
        let alert = d.ingest(&tx(0, 7, 7));
        assert!(!alert.is_alert());
        let alert = d.ingest(&tx(1, 900, 901));
        assert!(!alert.is_alert());
        assert_eq!(d.stats().skipped_by_precheck, 2);
    }

    #[test]
    fn window_expiry_prevents_stale_cycles() {
        let mut d = CycleDetector::new(DetectorConfig {
            max_cycle_hops: 6,
            window_size: 2,
            engine: DetectorEngine::NaiveDfs,
            device: DeviceConfig::alveo_u200(),
        });
        d.ingest(&tx(0, 0, 1));
        d.ingest(&tx(1, 1, 2));
        // By timestamp 5 the two edges above have expired; closing edge finds
        // nothing.
        let alert = d.ingest(&tx(5, 2, 0));
        assert!(!alert.is_alert());
    }
}
