//! Fraud detection through the multi-tenant [`HostRuntime`].
//!
//! [`crate::detector::CycleDetector`] rebuilds a CSR snapshot of the whole
//! window whenever a transaction needs a path query — fine for a one-shot
//! evaluation, but a production host cannot afford an O(|E|) rebuild per
//! transaction. [`RuntimeCycleDetector`] instead keeps the transaction graph
//! *inside* a [`HostRuntime`] as an epoch-versioned snapshot
//! ([`pefp_graph::VersionedGraph`]): every transaction stages an O(touched)
//! [`GraphDelta`] (window expiries as removals, the new edge as an insert),
//! and the per-transaction path query runs through the runtime's admission
//! queue, shared prepared-query cache and CU cluster like any other tenant's
//! work.
//!
//! Per transaction the detector performs, in order:
//!
//! 1. **advance** the sliding window to the transaction's timestamp,
//!    collecting the edges that fell out, and apply them as one removal
//!    delta (a new epoch, touched-vertex cache invalidation);
//! 2. **query** `s ⇝ t` with at most `k - 1` hops on the *pre-insert*
//!    snapshot — every returned path closes a constrained cycle through the
//!    new edge `t → s`;
//! 3. **ingest** the transaction's edge as an insert delta (another epoch).
//!
//! The detector keeps a [`SlidingWindow`] mirror purely for the timestamp
//! bookkeeping (which edges expire when); the graph the queries run on is
//! the runtime's, so concurrent clients of the same runtime observe the
//! stream's epochs through `STATS` and answer consistently with whichever
//! snapshot their query was admitted under.

use crate::detector::{CycleAlert, DetectorStats};
use crate::transaction::Transaction;
use crate::window::SlidingWindow;
use pefp_graph::view::GraphView;
use pefp_graph::{khop_bfs, CsrGraph, Epoch, GraphDelta, VertexId};
use pefp_host::{GraphHandle, HostError, HostRuntime, QueryRequest, RuntimeConfig, SessionId};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a [`RuntimeCycleDetector`].
#[derive(Debug, Clone)]
pub struct RuntimeDetectorConfig {
    /// Maximum cycle length in hops (the constrained-cycle `k`). A cycle uses
    /// the new edge plus an existing path of at most `k - 1` hops.
    pub max_cycle_hops: u32,
    /// Sliding-window span in timestamp units.
    pub window_size: u64,
    /// Configuration of the backing runtime (CU count, cache size, variant).
    pub runtime: RuntimeConfig,
}

impl Default for RuntimeDetectorConfig {
    fn default() -> Self {
        RuntimeDetectorConfig {
            max_cycle_hops: 6,
            window_size: 100_000,
            runtime: RuntimeConfig::default(),
        }
    }
}

/// The streaming cycle detector backed by a [`HostRuntime`]. See the module
/// docs for the update/query protocol.
#[derive(Debug)]
pub struct RuntimeCycleDetector {
    config: RuntimeDetectorConfig,
    runtime: Arc<HostRuntime>,
    session: SessionId,
    window: SlidingWindow,
    stats: DetectorStats,
    fraud_seen: u64,
    scratch_expired: Vec<(VertexId, VertexId)>,
}

impl RuntimeCycleDetector {
    /// Creates a detector with its own runtime, starting from an empty
    /// transaction graph.
    pub fn new(config: RuntimeDetectorConfig) -> Self {
        let runtime = HostRuntime::launch(
            GraphHandle::from_csr("fraud-stream", CsrGraph::empty(0)),
            config.runtime.clone(),
        );
        Self::with_runtime(config, runtime)
    }

    /// Creates a detector over an existing runtime — the runtime's graph
    /// (current snapshot) is taken as the initial transaction graph, with
    /// every pre-existing edge treated as timestamped at 0.
    pub fn with_runtime(config: RuntimeDetectorConfig, runtime: Arc<HostRuntime>) -> Self {
        let mut window = SlidingWindow::new(config.window_size);
        let snapshot = runtime.current_snapshot();
        let forward = snapshot.forward();
        for v in 0..snapshot.num_vertices() {
            let from = VertexId(v as u32);
            for &to in forward.successors(from) {
                window.graph_mut().insert_edge(from, to, 0);
            }
        }
        let session = runtime.register_session();
        RuntimeCycleDetector {
            config,
            runtime,
            session,
            window,
            stats: DetectorStats::default(),
            fraud_seen: 0,
            scratch_expired: Vec::new(),
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> &RuntimeDetectorConfig {
        &self.config
    }

    /// The backing runtime (epoch, cache and queue statistics live here).
    pub fn runtime(&self) -> &Arc<HostRuntime> {
        &self.runtime
    }

    /// The current graph epoch of the backing runtime.
    pub fn epoch(&self) -> Epoch {
        self.runtime.epoch()
    }

    /// The sliding-window mirror (timestamp bookkeeping only — the queried
    /// graph is the runtime's snapshot).
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DetectorStats {
        self.stats
    }

    /// Recall on injected fraud so far (needs ground-truth flags on the
    /// ingested transactions).
    pub fn fraud_recall(&self) -> f64 {
        self.stats.recall_on_fraud(self.fraud_seen)
    }

    /// Drains `self.scratch_expired` into a removal delta and applies it, if
    /// any edge expired.
    fn apply_expired(&mut self, extra_insert: Option<(VertexId, VertexId)>) {
        if self.scratch_expired.is_empty() && extra_insert.is_none() {
            return;
        }
        let mut delta = GraphDelta::new();
        for &(u, v) in &self.scratch_expired {
            delta.remove_edge(u, v);
        }
        if let Some((u, v)) = extra_insert {
            delta.insert_edge(u, v);
        }
        self.scratch_expired.clear();
        self.runtime.apply_updates(&delta);
    }

    /// Ingests one transaction and reports the cycles it closed.
    ///
    /// The path query runs against the graph *after* window expiry but
    /// *before* the new edge is inserted — the same semantics as
    /// [`crate::detector::CycleDetector::ingest`], so the two detectors are
    /// answer-for-answer interchangeable on the same stream.
    pub fn ingest(&mut self, tx: &Transaction) -> CycleAlert {
        let started = Instant::now();
        self.stats.transactions += 1;
        if tx.is_fraud {
            self.fraud_seen += 1;
        }

        // 1. Age the window and mirror the expiries into the runtime.
        self.window.advance_to_collecting(tx.timestamp, &mut self.scratch_expired);
        self.apply_expired(None);

        // 2. Enumerate s ⇝ t on the pre-insert snapshot through the runtime.
        let path_source = VertexId(tx.to); // s in the paper's phrasing
        let path_target = VertexId(tx.from); // t in the paper's phrasing
        let path_budget = self.config.max_cycle_hops.saturating_sub(1);

        let mut cycles = Vec::new();
        let mut device_millis = 0.0;
        let snapshot = self.runtime.current_snapshot();
        let in_range = path_source.index() < snapshot.num_vertices()
            && path_target.index() < snapshot.num_vertices();
        if in_range && path_budget > 0 && path_source != path_target {
            // Cheap pre-check on the snapshot view: is t reachable from s
            // within the budget at all? Most transactions close no cycle.
            let dist = khop_bfs(&snapshot.forward(), path_source, path_budget);
            if dist[path_target.index()] <= path_budget {
                let request = QueryRequest { s: path_source, t: path_target, k: path_budget };
                match self
                    .runtime
                    .submit_query(self.session, request, true)
                    .and_then(|ticket| ticket.wait())
                {
                    Ok(outcome) => {
                        cycles = outcome.paths;
                        device_millis = outcome.device_millis;
                    }
                    Err(HostError::QueryInvalid(_)) => self.stats.skipped_by_precheck += 1,
                    Err(e) => panic!("fraud-stream query failed: {e}"),
                }
            } else {
                self.stats.skipped_by_precheck += 1;
            }
        } else {
            self.stats.skipped_by_precheck += 1;
        }
        drop(snapshot);

        // 3. Admit the new edge (plus any expiries its timestamp triggers).
        self.window.ingest_collecting(tx, &mut self.scratch_expired);
        self.apply_expired(Some((VertexId(tx.from), VertexId(tx.to))));

        let host_millis = started.elapsed().as_secs_f64() * 1e3;
        self.stats.host_millis += host_millis;
        self.stats.device_millis += device_millis;
        if !cycles.is_empty() {
            self.stats.alerts += 1;
            self.stats.cycles += cycles.len() as u64;
            if tx.is_fraud {
                self.stats.true_positive_alerts += 1;
            } else {
                self.stats.benign_alerts += 1;
            }
        }
        CycleAlert { transaction: *tx, cycles, host_millis, device_millis }
    }

    /// Ingests a whole stream, returning only the transactions that raised an
    /// alert.
    pub fn ingest_stream(&mut self, stream: &[Transaction]) -> Vec<CycleAlert> {
        stream.iter().map(|tx| self.ingest(tx)).filter(CycleAlert::is_alert).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{CycleDetector, DetectorConfig, DetectorEngine};
    use crate::transaction::{TransactionGenerator, TransactionGeneratorConfig};
    use pefp_graph::paths::is_simple;

    fn tx(ts: u64, from: u32, to: u32) -> Transaction {
        Transaction::new(ts, from, to, 100.0)
    }

    fn detector(k: u32, window: u64) -> RuntimeCycleDetector {
        RuntimeCycleDetector::new(RuntimeDetectorConfig {
            max_cycle_hops: k,
            window_size: window,
            runtime: RuntimeConfig::default(),
        })
    }

    #[test]
    fn detects_a_simple_triangle_and_advances_the_epoch() {
        let mut d = detector(6, 1_000_000);
        assert_eq!(d.epoch(), 0);
        assert!(!d.ingest(&tx(0, 0, 1)).is_alert());
        assert!(!d.ingest(&tx(1, 1, 2)).is_alert());
        let alert = d.ingest(&tx(2, 2, 0));
        assert_eq!(alert.cycles.len(), 1);
        assert_eq!(alert.cycles[0], vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert!(is_simple(&alert.cycles[0]));
        // One insert delta per transaction — the epoch tracks the stream.
        assert_eq!(d.epoch(), 3);
        assert_eq!(d.runtime().stats().graph_updates, 3);
    }

    #[test]
    fn window_expiry_reaches_the_runtime_graph() {
        let mut d = detector(6, 2);
        d.ingest(&tx(0, 0, 1));
        d.ingest(&tx(1, 1, 2));
        // By timestamp 5 both edges above expired out of the runtime's
        // snapshot too; the closing edge finds nothing.
        let alert = d.ingest(&tx(5, 2, 0));
        assert!(!alert.is_alert());
        let snapshot = d.runtime().current_snapshot();
        assert!(!snapshot.has_edge(VertexId(0), VertexId(1)));
        assert!(!snapshot.has_edge(VertexId(1), VertexId(2)));
        assert!(snapshot.has_edge(VertexId(2), VertexId(0)));
    }

    #[test]
    fn agrees_with_the_snapshot_rebuilding_detector_on_a_fraud_stream() {
        let mut generator = TransactionGenerator::new(TransactionGeneratorConfig {
            num_accounts: 40,
            fraud_probability: 0.10,
            ring_size: 3,
            seed: 23,
        });
        let stream = generator.stream(300);
        let mut reference = CycleDetector::new(DetectorConfig {
            max_cycle_hops: 5,
            window_size: 100_000,
            engine: DetectorEngine::NaiveDfs,
            ..DetectorConfig::default()
        });
        let mut runtime_backed = detector(5, 100_000);
        for t in &stream {
            let a = reference.ingest(t);
            let b = runtime_backed.ingest(t);
            // Same cycle *set*; emission order differs between the naive-DFS
            // oracle and the PEFP engine (engine-order byte-identity is the
            // overlay-vs-rebuild differential test's job, same engine on both
            // sides).
            let mut left = a.cycles.clone();
            let mut right = b.cycles.clone();
            left.sort();
            right.sort();
            assert_eq!(left, right, "divergence at tx {t:?}");
        }
        assert_eq!(reference.stats().alerts, runtime_backed.stats().alerts);
        assert_eq!(reference.stats().cycles, runtime_backed.stats().cycles);
    }

    #[test]
    fn self_transfer_and_unknown_accounts_never_alert() {
        let mut d = detector(5, 1_000);
        assert!(!d.ingest(&tx(0, 7, 7)).is_alert());
        assert!(!d.ingest(&tx(1, 900, 901)).is_alert());
        assert_eq!(d.stats().skipped_by_precheck, 2);
    }

    #[test]
    fn with_runtime_adopts_the_existing_graph() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let runtime =
            HostRuntime::launch(GraphHandle::from_csr("seeded", g), RuntimeConfig::default());
        let mut d = RuntimeCycleDetector::with_runtime(
            RuntimeDetectorConfig { window_size: 1_000_000, ..Default::default() },
            runtime,
        );
        // The pre-existing 0 -> 1 -> 2 chain closes a cycle on 2 -> 0.
        let alert = d.ingest(&tx(1, 2, 0));
        assert_eq!(alert.cycles.len(), 1);
    }
}
