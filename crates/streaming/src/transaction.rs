//! Transaction stream generation.
//!
//! The paper's fraud-detection scenario has no public dataset (the Alibaba
//! transaction stream is proprietary), so the reproduction generates a
//! synthetic stream with the two ingredients the detector cares about:
//!
//! * **background traffic** — transfers between random accounts following a
//!   skewed popularity distribution (a few merchants receive most payments),
//!   which rarely closes short cycles; and
//! * **injected fraud rings** — small groups of colluding accounts that move
//!   money around a cycle of bounded length, the pattern the constrained
//!   cycle detection of Qiu et al. is designed to catch.
//!
//! Every generated stream is deterministic in its seed, and each transaction
//! carries a ground-truth flag so detection quality can be measured.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One money transfer from `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Monotone event timestamp (sequence number).
    pub timestamp: u64,
    /// Paying account.
    pub from: u32,
    /// Receiving account.
    pub to: u32,
    /// Transferred amount (used only for reporting).
    pub amount: f64,
    /// Ground truth: `true` when the transaction belongs to an injected
    /// fraud ring.
    pub is_fraud: bool,
}

impl Transaction {
    /// Creates a benign transaction.
    pub fn new(timestamp: u64, from: u32, to: u32, amount: f64) -> Self {
        Transaction { timestamp, from, to, amount, is_fraud: false }
    }
}

/// Configuration of the synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransactionGeneratorConfig {
    /// Number of accounts in the population.
    pub num_accounts: u32,
    /// Probability that a given transaction starts (or continues) a fraud
    /// ring rather than being background traffic.
    pub fraud_probability: f64,
    /// Number of accounts in each injected ring (ring length = cycle hops).
    pub ring_size: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransactionGeneratorConfig {
    fn default() -> Self {
        TransactionGeneratorConfig {
            num_accounts: 1_000,
            fraud_probability: 0.02,
            ring_size: 4,
            seed: 0xF2AD,
        }
    }
}

/// Deterministic transaction stream generator.
#[derive(Debug, Clone)]
pub struct TransactionGenerator {
    config: TransactionGeneratorConfig,
    rng: ChaCha8Rng,
    next_timestamp: u64,
    /// A fraud ring currently being emitted: remaining (from, to) hops.
    pending_ring: Vec<(u32, u32)>,
}

impl TransactionGenerator {
    /// Creates a generator from `config`.
    pub fn new(config: TransactionGeneratorConfig) -> Self {
        assert!(config.num_accounts >= 4, "need at least 4 accounts");
        assert!(config.ring_size >= 2, "a ring needs at least 2 accounts");
        assert!(
            (0.0..=1.0).contains(&config.fraud_probability),
            "fraud probability must be in [0, 1]"
        );
        TransactionGenerator {
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            config,
            next_timestamp: 0,
            pending_ring: Vec::new(),
        }
    }

    /// The generator's configuration.
    pub fn config(&self) -> TransactionGeneratorConfig {
        self.config
    }

    fn skewed_account(&mut self) -> u32 {
        // Square a uniform draw so low-numbered accounts ("merchants") are
        // hit much more often — a crude but deterministic popularity skew.
        let u: f64 = self.rng.gen();
        ((u * u) * self.config.num_accounts as f64) as u32 % self.config.num_accounts
    }

    fn start_ring(&mut self) {
        let size = self.config.ring_size.min(self.config.num_accounts);
        let mut members = Vec::with_capacity(size as usize);
        while members.len() < size as usize {
            let candidate = self.rng.gen_range(0..self.config.num_accounts);
            if !members.contains(&candidate) {
                members.push(candidate);
            }
        }
        // Emit the ring edges in order; the closing edge (last → first) is
        // emitted last so the detector sees the cycle complete.
        self.pending_ring.clear();
        for i in 0..members.len() {
            let from = members[i];
            let to = members[(i + 1) % members.len()];
            self.pending_ring.push((from, to));
        }
        self.pending_ring.reverse(); // pop() yields them in forward order
    }

    /// Generates the next transaction.
    pub fn next_transaction(&mut self) -> Transaction {
        let timestamp = self.next_timestamp;
        self.next_timestamp += 1;

        if let Some((from, to)) = self.pending_ring.pop() {
            return Transaction {
                timestamp,
                from,
                to,
                amount: self.rng.gen_range(100.0..1_000.0),
                is_fraud: true,
            };
        }
        if self.rng.gen_bool(self.config.fraud_probability) {
            self.start_ring();
            let (from, to) = self.pending_ring.pop().expect("ring just generated");
            return Transaction {
                timestamp,
                from,
                to,
                amount: self.rng.gen_range(100.0..1_000.0),
                is_fraud: true,
            };
        }
        // Background traffic; avoid self-transfers.
        let from = self.rng.gen_range(0..self.config.num_accounts);
        let mut to = self.skewed_account();
        if to == from {
            to = (to + 1) % self.config.num_accounts;
        }
        Transaction { timestamp, from, to, amount: self.rng.gen_range(1.0..500.0), is_fraud: false }
    }

    /// Generates a stream of `count` transactions.
    pub fn stream(&mut self, count: usize) -> Vec<Transaction> {
        (0..count).map(|_| self.next_transaction()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_seed() {
        let config = TransactionGeneratorConfig::default();
        let a = TransactionGenerator::new(config).stream(500);
        let b = TransactionGenerator::new(config).stream(500);
        assert_eq!(a, b);
        let c =
            TransactionGenerator::new(TransactionGeneratorConfig { seed: 1, ..config }).stream(500);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let mut generator = TransactionGenerator::new(TransactionGeneratorConfig::default());
        let stream = generator.stream(200);
        for (i, tx) in stream.iter().enumerate() {
            assert_eq!(tx.timestamp, i as u64);
            assert_ne!(tx.from, tx.to, "no self transfers");
            assert!(tx.from < 1_000 && tx.to < 1_000);
        }
    }

    #[test]
    fn fraud_rings_form_complete_cycles() {
        let config = TransactionGeneratorConfig {
            num_accounts: 50,
            fraud_probability: 0.2,
            ring_size: 3,
            seed: 7,
        };
        let mut generator = TransactionGenerator::new(config);
        let stream = generator.stream(2_000);
        let fraud: Vec<&Transaction> = stream.iter().filter(|t| t.is_fraud).collect();
        assert!(!fraud.is_empty());
        // Fraud transactions come in consecutive runs of exactly ring_size,
        // and each run's edges form a closed cycle.
        let mut i = 0;
        while i < fraud.len() {
            let run: Vec<&&Transaction> = fraud[i..(i + 3).min(fraud.len())].iter().collect();
            if run.len() == 3 {
                assert_eq!(run[0].to, run[1].from);
                assert_eq!(run[1].to, run[2].from);
                assert_eq!(run[2].to, run[0].from, "ring closes back to its start");
            }
            i += 3;
        }
    }

    #[test]
    fn zero_fraud_probability_generates_only_background_traffic() {
        let config = TransactionGeneratorConfig {
            fraud_probability: 0.0,
            ..TransactionGeneratorConfig::default()
        };
        let mut generator = TransactionGenerator::new(config);
        assert!(generator.stream(1_000).iter().all(|t| !t.is_fraud));
    }

    #[test]
    fn fraud_fraction_tracks_the_configured_probability() {
        let config = TransactionGeneratorConfig {
            num_accounts: 200,
            fraud_probability: 0.05,
            ring_size: 4,
            seed: 11,
        };
        let mut generator = TransactionGenerator::new(config);
        let stream = generator.stream(10_000);
        let fraud = stream.iter().filter(|t| t.is_fraud).count() as f64 / stream.len() as f64;
        // Each trigger emits ring_size fraudulent transactions, so the
        // expected fraction is roughly p * ring_size / (1 + p * (ring_size-1)).
        assert!(fraud > 0.05 && fraud < 0.40, "fraud fraction {fraud}");
    }

    #[test]
    #[should_panic(expected = "at least 4 accounts")]
    fn tiny_populations_are_rejected() {
        TransactionGenerator::new(TransactionGeneratorConfig {
            num_accounts: 2,
            ..TransactionGeneratorConfig::default()
        });
    }
}
