//! Graph statistics matching the columns of the paper's Table II.
//!
//! Table II reports `|V|`, `|E|`, average degree `d_avg`, diameter `D` and the
//! 90-percentile effective diameter `D90` for each dataset. The reproduction
//! computes the same statistics for its synthetic stand-ins so `figures --
//! table2` can print the analogous table, and so dataset generation can be
//! sanity-checked (e.g. low-diameter stand-ins really are low-diameter).
//!
//! Exact diameter is infeasible on larger graphs, so `D` and `D90` are
//! estimated by BFS from a deterministic sample of source vertices — the same
//! approach the original dataset-hosting sites (SNAP/KONECT) use for the
//! published "effective diameter" figures.

use crate::csr::CsrGraph;
use crate::ids::VertexId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Summary statistics of a directed graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Average out-degree `|E| / |V|`.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Estimated diameter: the largest finite BFS eccentricity observed from
    /// the sampled sources (0 when the graph is empty).
    pub diameter_estimate: usize,
    /// Estimated 90-percentile effective diameter: the smallest distance `d`
    /// such that at least 90% of the *reachable* sampled pairs are within `d`
    /// hops, linearly interpolated as in the SNAP convention.
    pub effective_diameter_90: f64,
    /// Number of BFS sources sampled for the two diameter estimates.
    pub sampled_sources: usize,
}

impl GraphStats {
    /// Computes statistics for `g`, sampling `samples` BFS sources for the
    /// diameter estimates (`0` means "all vertices", which is exact but only
    /// sensible on small graphs).
    pub fn compute(g: &CsrGraph, samples: usize) -> GraphStats {
        let n = g.num_vertices();
        let m = g.num_edges();
        let avg_degree = if n == 0 { 0.0 } else { m as f64 / n as f64 };
        let max_out_degree = g.max_out_degree();

        let sources: Vec<VertexId> = if samples == 0 || samples >= n {
            g.vertices().collect()
        } else {
            // Deterministic stride sample so stats are reproducible without an RNG.
            let stride = (n / samples).max(1);
            (0..n).step_by(stride).take(samples).map(VertexId::from_index).collect()
        };

        let mut distance_histogram: Vec<u64> = Vec::new();
        let mut diameter = 0usize;
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for &s in &sources {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            queue.clear();
            dist[s.index()] = 0;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                let du = dist[u.index()];
                for &v in g.successors(u) {
                    if dist[v.index()] == u32::MAX {
                        dist[v.index()] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
            for &d in dist.iter() {
                if d != u32::MAX && d > 0 {
                    let d = d as usize;
                    if d >= distance_histogram.len() {
                        distance_histogram.resize(d + 1, 0);
                    }
                    distance_histogram[d] += 1;
                    diameter = diameter.max(d);
                }
            }
        }

        let effective_diameter_90 = effective_diameter(&distance_histogram, 0.9);

        GraphStats {
            num_vertices: n,
            num_edges: m,
            avg_degree,
            max_out_degree,
            diameter_estimate: diameter,
            effective_diameter_90,
            sampled_sources: sources.len(),
        }
    }
}

/// Computes the `q`-percentile effective diameter from a histogram of pairwise
/// distances (`histogram[d]` = number of reachable ordered pairs at distance
/// `d`), with linear interpolation between the two straddling hop counts.
fn effective_diameter(histogram: &[u64], q: f64) -> f64 {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let threshold = q * total as f64;
    let mut cumulative = 0u64;
    for (d, &count) in histogram.iter().enumerate() {
        let next = cumulative + count;
        if next as f64 >= threshold {
            if count == 0 {
                return d as f64;
            }
            let prev_frac = cumulative as f64;
            // Interpolate within hop distance d.
            let need = threshold - prev_frac;
            let frac = need / count as f64;
            return (d as f64 - 1.0) + frac.clamp(0.0, 1.0) + if d == 0 { 1.0 } else { 0.0 };
        }
        cumulative = next;
    }
    (histogram.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{grid_graph, small_world};

    #[test]
    fn path_graph_statistics_are_exact() {
        // 0 -> 1 -> 2 -> 3
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let s = GraphStats::compute(&g, 0);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.diameter_estimate, 3);
        assert!((s.avg_degree - 0.75).abs() < 1e-9);
        assert_eq!(s.max_out_degree, 1);
    }

    #[test]
    fn empty_graph_yields_zero_stats() {
        let g = CsrGraph::empty(0);
        let s = GraphStats::compute(&g, 0);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.diameter_estimate, 0);
        assert_eq!(s.effective_diameter_90, 0.0);
    }

    #[test]
    fn effective_diameter_is_below_diameter() {
        let g = grid_graph(8, 8).to_csr();
        let s = GraphStats::compute(&g, 0);
        assert_eq!(s.diameter_estimate, 14);
        assert!(s.effective_diameter_90 <= 14.0);
        assert!(s.effective_diameter_90 > 2.0);
    }

    #[test]
    fn sampling_uses_at_most_the_requested_sources() {
        let g = small_world(500, 3, 0.1, 1).to_csr();
        let s = GraphStats::compute(&g, 16);
        assert!(s.sampled_sources <= 17);
        assert!(s.diameter_estimate > 0);
    }

    #[test]
    fn effective_diameter_handles_point_mass() {
        // All pairs at distance 2.
        let h = vec![0, 0, 100];
        let d = effective_diameter(&h, 0.9);
        assert!(d > 1.0 && d <= 2.0, "d = {d}");
    }

    #[test]
    fn effective_diameter_empty_histogram_is_zero() {
        assert_eq!(effective_diameter(&[], 0.9), 0.0);
        assert_eq!(effective_diameter(&[0, 0, 0], 0.9), 0.0);
    }

    #[test]
    fn star_graph_has_diameter_one() {
        let edges: Vec<(u32, u32)> = (1..10u32).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(10, &edges);
        let s = GraphStats::compute(&g, 0);
        assert_eq!(s.diameter_estimate, 1);
        assert_eq!(s.max_out_degree, 9);
    }
}
