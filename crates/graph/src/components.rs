//! Weakly connected components and reachability summaries.
//!
//! The host-side workload tooling uses weak connectivity to validate that the
//! synthetic dataset stand-ins are not shattered into many tiny pieces (which
//! would make the random reachable query pairs of Section VII-A meaningless),
//! and the streaming layer uses it as a cheap necessary condition before
//! attempting any path enumeration.

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// A classic union-find (disjoint-set) structure over vertex ids with path
/// compression and union by size.
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets { parent: (0..n as u32).collect(), size: vec![1; n], num_sets: n }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`, compressing paths along the way.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets containing `a` and `b`; returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.num_sets -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Weakly connected components of a directed graph (connectivity ignoring
/// edge direction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WccDecomposition {
    /// Component id of every vertex, compacted to `0..num_components`.
    pub component_of: Vec<u32>,
    /// Number of weakly connected components.
    pub num_components: usize,
}

impl WccDecomposition {
    /// The component of vertex `v`.
    #[inline]
    pub fn component(&self, v: VertexId) -> u32 {
        self.component_of[v.index()]
    }

    /// Whether `a` and `b` lie in the same weakly connected component.
    #[inline]
    pub fn same_component(&self, a: VertexId, b: VertexId) -> bool {
        self.component_of[a.index()] == self.component_of[b.index()]
    }

    /// Sizes of all components indexed by component id.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &c in &self.component_of {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest weakly connected component.
    pub fn largest_component_size(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// Fraction of vertices inside the largest component (1.0 when the whole
    /// graph is weakly connected, 0.0 for an empty graph).
    pub fn largest_component_fraction(&self) -> f64 {
        if self.component_of.is_empty() {
            return 0.0;
        }
        self.largest_component_size() as f64 / self.component_of.len() as f64
    }
}

/// Computes the weakly connected components of `g` with union-find.
pub fn weakly_connected_components(g: &CsrGraph) -> WccDecomposition {
    let n = g.num_vertices();
    let mut dsu = DisjointSets::new(n);
    for e in g.edges() {
        dsu.union(e.from.0, e.to.0);
    }
    // Compact representatives into dense component ids.
    let mut remap = vec![u32::MAX; n];
    let mut component_of = vec![0u32; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let r = dsu.find(v);
        if remap[r as usize] == u32::MAX {
            remap[r as usize] = next;
            next += 1;
        }
        component_of[v as usize] = remap[r as usize];
    }
    WccDecomposition { component_of, num_components: next as usize }
}

/// Counts the vertices reachable from `source` within `max_hops` hops
/// (including `source` itself). `max_hops == u32::MAX` means unbounded.
pub fn reachable_count(g: &CsrGraph, source: VertexId, max_hops: u32) -> usize {
    let n = g.num_vertices();
    if source.index() >= n {
        return 0;
    }
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    let mut count = 1usize;
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= max_hops {
            continue;
        }
        for &v in g.successors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = du + 1;
                count += 1;
                queue.push_back(v);
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(v: u32) -> VertexId {
        VertexId(v)
    }

    #[test]
    fn union_find_merges_and_counts_sets() {
        let mut dsu = DisjointSets::new(5);
        assert_eq!(dsu.num_sets(), 5);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 2), "already merged");
        assert_eq!(dsu.num_sets(), 3);
        assert!(dsu.same_set(0, 2));
        assert!(!dsu.same_set(0, 3));
        assert_eq!(dsu.set_size(2), 3);
        assert_eq!(dsu.set_size(4), 1);
    }

    #[test]
    fn wcc_ignores_edge_direction() {
        // 0->1, 2->1: all weakly connected even though 0 cannot reach 2.
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.num_components, 1);
        assert!(wcc.same_component(vid(0), vid(2)));
    }

    #[test]
    fn wcc_separates_disconnected_parts() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let wcc = weakly_connected_components(&g);
        // {0,1,2}, {3,4}, {5}
        assert_eq!(wcc.num_components, 3);
        assert_eq!(wcc.largest_component_size(), 3);
        assert!((wcc.largest_component_fraction() - 0.5).abs() < 1e-12);
        assert!(!wcc.same_component(vid(2), vid(3)));
    }

    #[test]
    fn wcc_component_ids_are_dense() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let wcc = weakly_connected_components(&g);
        let mut ids: Vec<u32> = wcc.component_of.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, (0..wcc.num_components as u32).collect::<Vec<_>>());
    }

    #[test]
    fn reachable_count_respects_hop_limit() {
        // 0 -> 1 -> 2 -> 3
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(reachable_count(&g, vid(0), 0), 1);
        assert_eq!(reachable_count(&g, vid(0), 1), 2);
        assert_eq!(reachable_count(&g, vid(0), 2), 3);
        assert_eq!(reachable_count(&g, vid(0), u32::MAX), 4);
        assert_eq!(reachable_count(&g, vid(3), u32::MAX), 1);
    }

    #[test]
    fn empty_graph_edge_cases() {
        let g = CsrGraph::empty(0);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.num_components, 0);
        assert_eq!(wcc.largest_component_fraction(), 0.0);
        let dsu = DisjointSets::new(0);
        assert!(dsu.is_empty());
    }
}
