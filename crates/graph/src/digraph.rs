//! Mutable adjacency-list directed graph used during loading and generation.
//!
//! [`DiGraph`] is the "host main memory" representation from the paper's
//! Fig. 2: the user points the host at a graph file, the host loads it here,
//! and every query then derives an immutable [`CsrGraph`](crate::CsrGraph)
//! (possibly induced on a vertex subset) that is shipped to the device.

use crate::ids::{Edge, VertexId};
use crate::CsrGraph;
use serde::{Deserialize, Serialize};

/// A mutable, unlabelled, directed graph stored as out-adjacency lists.
///
/// Parallel edges are tolerated on insertion and removed by
/// [`DiGraph::dedup_edges`] or when converting to CSR with
/// [`DiGraph::to_csr`] (the paper's problem definition is on simple directed
/// graphs, and duplicate edges would only duplicate result paths).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiGraph {
    /// `out[v]` holds the out-neighbours of `v` in insertion order.
    out: Vec<Vec<VertexId>>,
    /// Total number of directed edges currently stored (including duplicates).
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` isolated vertices `0..n`.
    pub fn new(n: usize) -> Self {
        DiGraph { out: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Creates an empty graph with no vertices.
    pub fn empty() -> Self {
        Self::new(0)
    }

    /// Builds a graph from an iterator of `(from, to)` pairs, growing the
    /// vertex set to cover every endpoint.
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut g = DiGraph::empty();
        for (u, v) in edges {
            let needed = u.max(v) as usize + 1;
            if needed > g.out.len() {
                g.out.resize(needed, Vec::new());
            }
            g.add_edge(VertexId(u), VertexId(v));
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges (parallel edges counted individually until
    /// [`DiGraph::dedup_edges`] is called).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_count
    }

    /// `true` when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Adds a new isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = VertexId::from_index(self.out.len());
        self.out.push(Vec::new());
        id
    }

    /// Ensures the graph has at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.out.len() {
            self.out.resize(n, Vec::new());
        }
    }

    /// Adds the directed edge `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) {
        assert!(from.index() < self.out.len(), "edge source {from} out of range");
        assert!(to.index() < self.out.len(), "edge target {to} out of range");
        self.out[from.index()].push(to);
        self.edge_count += 1;
    }

    /// Adds `from -> to` unless it is a self loop or already present.
    ///
    /// Returns `true` when the edge was inserted. This is the convenient entry
    /// point for generators, which must not create self loops (a self loop can
    /// never be part of a simple path).
    pub fn add_edge_unique(&mut self, from: VertexId, to: VertexId) -> bool {
        if from == to {
            return false;
        }
        if self.out[from.index()].contains(&to) {
            return false;
        }
        self.add_edge(from, to);
        true
    }

    /// Whether the directed edge `from -> to` exists.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.out.get(from.index()).is_some_and(|ns| ns.contains(&to))
    }

    /// Out-neighbours of `v` in insertion order.
    #[inline]
    pub fn successors(&self, v: VertexId) -> &[VertexId] {
        &self.out[v.index()]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out[v.index()].len()
    }

    /// Iterator over every directed edge.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, ns)| ns.iter().map(move |&v| Edge::new(VertexId::from_index(u), v)))
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.out.len() as u32).map(VertexId)
    }

    /// Removes duplicate edges and self loops; sorts each adjacency list.
    pub fn dedup_edges(&mut self) {
        let mut edges = 0;
        for (u, ns) in self.out.iter_mut().enumerate() {
            ns.sort_unstable();
            ns.dedup();
            ns.retain(|v| v.index() != u);
            edges += ns.len();
        }
        self.edge_count = edges;
    }

    /// The reverse graph `G_rev`: every edge `(u, v)` becomes `(v, u)`.
    ///
    /// The paper uses the reverse graph to run the backward BFS from `t`
    /// during preprocessing (Section V).
    pub fn reverse(&self) -> DiGraph {
        let mut rev = DiGraph::new(self.num_vertices());
        for e in self.edges() {
            rev.add_edge(e.to, e.from);
        }
        rev
    }

    /// Converts to the immutable CSR representation, deduplicating edges and
    /// dropping self loops.
    pub fn to_csr(&self) -> CsrGraph {
        let mut builder = crate::CsrBuilder::new(self.num_vertices());
        for e in self.edges() {
            if e.from != e.to {
                builder.add_edge(e.from, e.to);
            }
        }
        builder.build()
    }
}

impl From<&CsrGraph> for DiGraph {
    fn from(csr: &CsrGraph) -> Self {
        let mut g = DiGraph::new(csr.num_vertices());
        for u in csr.vertices() {
            for &v in csr.successors(u) {
                g.add_edge(u, v);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        DiGraph::from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_grows_vertex_set() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn successors_and_degrees() {
        let g = diamond();
        assert_eq!(g.successors(VertexId(0)), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.out_degree(VertexId(0)), 2);
        assert_eq!(g.out_degree(VertexId(3)), 0);
    }

    #[test]
    fn add_edge_unique_rejects_self_loops_and_duplicates() {
        let mut g = DiGraph::new(3);
        assert!(g.add_edge_unique(VertexId(0), VertexId(1)));
        assert!(!g.add_edge_unique(VertexId(0), VertexId(1)));
        assert!(!g.add_edge_unique(VertexId(2), VertexId(2)));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn reverse_flips_every_edge() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), g.num_edges());
        assert!(r.has_edge(VertexId(1), VertexId(0)));
        assert!(r.has_edge(VertexId(3), VertexId(2)));
        assert!(!r.has_edge(VertexId(0), VertexId(1)));
    }

    #[test]
    fn double_reverse_is_identity_on_edge_set() {
        let g = diamond();
        let rr = g.reverse().reverse();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = rr.edges().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn dedup_removes_duplicates_and_self_loops() {
        let mut g = DiGraph::from_edges([(0, 1), (0, 1), (1, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 4);
        g.dedup_edges();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(!g.has_edge(VertexId(1), VertexId(1)));
    }

    #[test]
    fn to_csr_preserves_adjacency() {
        let g = diamond();
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.successors(VertexId(0)), &[VertexId(1), VertexId(2)]);
    }

    #[test]
    fn csr_roundtrip_back_to_digraph() {
        let g = diamond();
        let csr = g.to_csr();
        let g2 = DiGraph::from(&csr);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn add_vertex_returns_fresh_ids() {
        let mut g = DiGraph::empty();
        assert_eq!(g.add_vertex(), VertexId(0));
        assert_eq!(g.add_vertex(), VertexId(1));
        g.ensure_vertices(5);
        assert_eq!(g.num_vertices(), 5);
        g.ensure_vertices(2);
        assert_eq!(g.num_vertices(), 5);
    }
}
