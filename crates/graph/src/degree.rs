//! Degree-distribution analytics.
//!
//! The paper motivates the FPGA design with the power-law degree distribution
//! of real-life graphs (Section I): most vertices have a small degree while a
//! few "super nodes" have a very large one, which is exactly what Batch-DFS's
//! neighbour windows are designed for. This module measures the degree
//! distribution of a graph so dataset stand-ins can be checked against that
//! assumption and so experiments can report how skewed each input is.

use crate::csr::CsrGraph;
use serde::{Deserialize, Serialize};

/// Histogram and summary statistics of the out-degree distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeDistribution {
    /// `histogram[d]` = number of vertices with out-degree `d`.
    pub histogram: Vec<usize>,
    /// Number of vertices.
    pub num_vertices: usize,
    /// Minimum out-degree.
    pub min_degree: usize,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Mean out-degree.
    pub mean_degree: f64,
    /// Median out-degree.
    pub median_degree: usize,
    /// Fraction of all edges that leave the top 1% highest-degree vertices
    /// (rounded up to at least one vertex). A high value indicates a skewed,
    /// power-law-like graph.
    pub top1pct_edge_fraction: f64,
    /// Gini coefficient of the out-degree distribution (0 = perfectly uniform,
    /// → 1 = extremely skewed).
    pub gini: f64,
}

impl DegreeDistribution {
    /// Computes the out-degree distribution of `g`.
    pub fn compute(g: &CsrGraph) -> DegreeDistribution {
        let n = g.num_vertices();
        let mut degrees: Vec<usize> = g.vertices().map(|v| g.out_degree(v)).collect();
        degrees.sort_unstable();

        let max_degree = degrees.last().copied().unwrap_or(0);
        let min_degree = degrees.first().copied().unwrap_or(0);
        let total_edges: usize = degrees.iter().sum();
        let mean_degree = if n == 0 { 0.0 } else { total_edges as f64 / n as f64 };
        let median_degree = if n == 0 { 0 } else { degrees[n / 2] };

        let mut histogram = vec![0usize; max_degree + 1];
        for &d in &degrees {
            histogram[d] += 1;
        }

        // Fraction of edges owned by the top 1% of vertices by degree.
        let top1pct_edge_fraction = if n == 0 || total_edges == 0 {
            0.0
        } else {
            let top = ((n as f64 * 0.01).ceil() as usize).max(1).min(n);
            let top_edges: usize = degrees.iter().rev().take(top).sum();
            top_edges as f64 / total_edges as f64
        };

        // Gini coefficient over the sorted degree sequence.
        let gini = if n == 0 || total_edges == 0 {
            0.0
        } else {
            let n_f = n as f64;
            let mut weighted = 0.0;
            for (i, &d) in degrees.iter().enumerate() {
                weighted += (i as f64 + 1.0) * d as f64;
            }
            (2.0 * weighted) / (n_f * total_edges as f64) - (n_f + 1.0) / n_f
        };

        DegreeDistribution {
            histogram,
            num_vertices: n,
            min_degree,
            max_degree,
            mean_degree,
            median_degree,
            top1pct_edge_fraction,
            gini,
        }
    }

    /// The `q`-quantile of the out-degree distribution, `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> usize {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.num_vertices == 0 {
            return 0;
        }
        let target = ((self.num_vertices as f64 - 1.0) * q).round() as usize;
        let mut seen = 0usize;
        for (d, &count) in self.histogram.iter().enumerate() {
            seen += count;
            if seen > target {
                return d;
            }
        }
        self.max_degree
    }

    /// Number of vertices whose out-degree is at least `threshold` (the "hot
    /// points" of the HP-Index baseline).
    pub fn vertices_with_degree_at_least(&self, threshold: usize) -> usize {
        self.histogram.iter().enumerate().filter(|(d, _)| *d >= threshold).map(|(_, &c)| c).sum()
    }

    /// Maximum-likelihood estimate of the power-law exponent `alpha` of the
    /// tail `d >= d_min`, using the discrete Clauset–Shalizi–Newman
    /// approximation `alpha ≈ 1 + n_tail / Σ ln(d / (d_min - 0.5))`.
    ///
    /// Returns `None` when fewer than two vertices have degree `>= d_min` or
    /// when `d_min < 1`.
    pub fn power_law_exponent(&self, d_min: usize) -> Option<f64> {
        if d_min < 1 {
            return None;
        }
        let mut n_tail = 0usize;
        let mut log_sum = 0.0f64;
        for (d, &count) in self.histogram.iter().enumerate() {
            if d >= d_min && count > 0 {
                n_tail += count;
                log_sum += count as f64 * (d as f64 / (d_min as f64 - 0.5)).ln();
            }
        }
        if n_tail < 2 || log_sum <= 0.0 {
            return None;
        }
        Some(1.0 + n_tail as f64 / log_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chung_lu;

    #[test]
    fn uniform_degree_graph_has_zero_gini() {
        // A 4-cycle: every vertex has out-degree 1.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = DegreeDistribution::compute(&g);
        assert_eq!(d.min_degree, 1);
        assert_eq!(d.max_degree, 1);
        assert_eq!(d.median_degree, 1);
        assert!((d.mean_degree - 1.0).abs() < 1e-12);
        assert!(d.gini.abs() < 1e-12);
        assert_eq!(d.histogram, vec![0, 4]);
    }

    #[test]
    fn star_graph_is_maximally_skewed() {
        // Vertex 0 points at everyone else.
        let edges: Vec<(u32, u32)> = (1..100u32).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(100, &edges);
        let d = DegreeDistribution::compute(&g);
        assert_eq!(d.max_degree, 99);
        assert_eq!(d.min_degree, 0);
        assert_eq!(d.top1pct_edge_fraction, 1.0);
        assert!(d.gini > 0.95, "gini = {}", d.gini);
        assert_eq!(d.vertices_with_degree_at_least(50), 1);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let g = chung_lu(300, 6.0, 2.2, 7).to_csr();
        let d = DegreeDistribution::compute(&g);
        let q10 = d.quantile(0.1);
        let q50 = d.quantile(0.5);
        let q90 = d.quantile(0.9);
        let q100 = d.quantile(1.0);
        assert!(q10 <= q50 && q50 <= q90 && q90 <= q100);
        assert_eq!(q50, d.median_degree);
        assert!(q100 <= d.max_degree);
        assert_eq!(d.quantile(0.0), d.min_degree);
    }

    #[test]
    fn histogram_counts_every_vertex_exactly_once() {
        let g = chung_lu(250, 5.0, 2.3, 11).to_csr();
        let d = DegreeDistribution::compute(&g);
        let total: usize = d.histogram.iter().sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn power_law_generator_yields_plausible_exponent() {
        let g = chung_lu(2000, 8.0, 2.2, 3).to_csr();
        let d = DegreeDistribution::compute(&g);
        let alpha = d.power_law_exponent(2).expect("enough tail vertices");
        // Chung-Lu with target exponent 2.2: the MLE should land in a broad
        // but clearly power-law-like band.
        assert!(alpha > 1.3 && alpha < 4.0, "alpha = {alpha}");
    }

    #[test]
    fn power_law_exponent_handles_degenerate_inputs() {
        let g = CsrGraph::empty(5);
        let d = DegreeDistribution::compute(&g);
        assert!(d.power_law_exponent(1).is_none());
        assert!(d.power_law_exponent(0).is_none());
    }

    #[test]
    fn empty_graph_statistics_are_all_zero() {
        let g = CsrGraph::empty(0);
        let d = DegreeDistribution::compute(&g);
        assert_eq!(d.num_vertices, 0);
        assert_eq!(d.max_degree, 0);
        assert_eq!(d.mean_degree, 0.0);
        assert_eq!(d.gini, 0.0);
        assert_eq!(d.quantile(0.5), 0);
    }
}
