//! Result-path utilities shared by every enumeration algorithm.
//!
//! All algorithms in the workspace (PEFP and the CPU baselines) return their
//! results as `Vec<Vec<VertexId>>`. This module provides validation and
//! canonicalisation so different algorithms can be compared for exact
//! equality in tests and experiments.

use crate::csr::CsrGraph;
use crate::ids::VertexId;
use std::collections::HashSet;

/// A result path: the full vertex sequence from `s` to `t` inclusive.
pub type Path = Vec<VertexId>;

/// Number of hops of a path (`|p| - 1`), 0 for a single-vertex path.
pub fn path_len(path: &[VertexId]) -> usize {
    path.len().saturating_sub(1)
}

/// Whether the path visits no vertex twice.
pub fn is_simple(path: &[VertexId]) -> bool {
    let mut seen = HashSet::with_capacity(path.len());
    path.iter().all(|v| seen.insert(*v))
}

/// Whether every consecutive pair of the path is an edge of `g`.
pub fn is_connected_in(g: &CsrGraph, path: &[VertexId]) -> bool {
    path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

/// Sorts paths lexicographically and removes duplicates, producing the
/// canonical form used for cross-algorithm comparisons.
pub fn canonicalize(mut paths: Vec<Path>) -> Vec<Path> {
    paths.sort();
    paths.dedup();
    paths
}

/// Problems found by [`validate_result`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathViolation {
    /// The path is empty.
    Empty,
    /// The path does not start at the query source.
    WrongSource,
    /// The path does not end at the query target.
    WrongTarget,
    /// The path exceeds the hop constraint.
    TooLong {
        /// Actual number of hops.
        hops: usize,
    },
    /// The path repeats a vertex.
    NotSimple,
    /// A consecutive pair of vertices is not an edge of the graph.
    MissingEdge {
        /// Source of the missing edge.
        from: VertexId,
        /// Target of the missing edge.
        to: VertexId,
    },
    /// The same path appears more than once in the result set.
    Duplicate,
}

/// Validates a full result set against the query `(s, t, k)` on graph `g`.
///
/// Returns the list of `(path index, violation)` pairs; empty means the result
/// is a well-formed set of s-t k-hop simple paths (it does *not* check that
/// the set is complete — completeness is established in tests by comparing
/// independent algorithms).
pub fn validate_result(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: usize,
    paths: &[Path],
) -> Vec<(usize, PathViolation)> {
    let mut violations = Vec::new();
    let mut seen: HashSet<&[VertexId]> = HashSet::with_capacity(paths.len());
    for (i, p) in paths.iter().enumerate() {
        if p.is_empty() {
            violations.push((i, PathViolation::Empty));
            continue;
        }
        if p[0] != s {
            violations.push((i, PathViolation::WrongSource));
        }
        if *p.last().expect("non-empty") != t {
            violations.push((i, PathViolation::WrongTarget));
        }
        if path_len(p) > k {
            violations.push((i, PathViolation::TooLong { hops: path_len(p) }));
        }
        if !is_simple(p) {
            violations.push((i, PathViolation::NotSimple));
        }
        for w in p.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                violations.push((i, PathViolation::MissingEdge { from: w[0], to: w[1] }));
            }
        }
        if !seen.insert(p.as_slice()) {
            violations.push((i, PathViolation::Duplicate));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    fn v(ids: &[u32]) -> Path {
        ids.iter().map(|&x| VertexId(x)).collect()
    }

    #[test]
    fn simple_and_length_checks() {
        assert!(is_simple(&v(&[0, 1, 2])));
        assert!(!is_simple(&v(&[0, 1, 0])));
        assert_eq!(path_len(&v(&[0, 1, 2])), 2);
        assert_eq!(path_len(&v(&[0])), 0);
        assert_eq!(path_len(&[]), 0);
    }

    #[test]
    fn connectivity_check_uses_graph_edges() {
        let g = diamond();
        assert!(is_connected_in(&g, &v(&[0, 1, 3])));
        assert!(!is_connected_in(&g, &v(&[0, 3])));
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        let paths = vec![v(&[0, 2, 3]), v(&[0, 1, 3]), v(&[0, 2, 3])];
        let c = canonicalize(paths);
        assert_eq!(c, vec![v(&[0, 1, 3]), v(&[0, 2, 3])]);
    }

    #[test]
    fn validate_accepts_a_correct_result() {
        let g = diamond();
        let paths = vec![v(&[0, 1, 3]), v(&[0, 2, 3])];
        assert!(validate_result(&g, VertexId(0), VertexId(3), 3, &paths).is_empty());
    }

    #[test]
    fn validate_flags_every_kind_of_problem() {
        let g = diamond();
        let paths = vec![
            vec![],              // empty
            v(&[1, 3]),          // wrong source
            v(&[0, 1]),          // wrong target
            v(&[0, 1, 3]),       // fine
            v(&[0, 1, 3]),       // duplicate
            v(&[0, 3]),          // missing edge
            v(&[0, 1, 0, 1, 3]), // not simple (and missing edge 1->0? no, 1->0 missing too)
        ];
        let violations = validate_result(&g, VertexId(0), VertexId(3), 2, &paths);
        let kinds: Vec<_> = violations.iter().map(|(i, k)| (*i, k.clone())).collect();
        assert!(kinds.contains(&(0, PathViolation::Empty)));
        assert!(kinds.contains(&(1, PathViolation::WrongSource)));
        assert!(kinds.contains(&(2, PathViolation::WrongTarget)));
        assert!(kinds.contains(&(4, PathViolation::Duplicate)));
        assert!(kinds
            .iter()
            .any(|(i, k)| *i == 5 && matches!(k, PathViolation::MissingEdge { .. })));
        assert!(kinds.iter().any(|(i, k)| *i == 6 && matches!(k, PathViolation::NotSimple)));
        assert!(kinds
            .iter()
            .any(|(i, k)| *i == 6 && matches!(k, PathViolation::TooLong { hops: 4 })));
    }

    #[test]
    fn hop_constraint_boundary_is_inclusive() {
        let g = diamond();
        let paths = vec![v(&[0, 1, 3])];
        assert!(validate_result(&g, VertexId(0), VertexId(3), 2, &paths).is_empty());
        assert!(!validate_result(&g, VertexId(0), VertexId(3), 1, &paths).is_empty());
    }
}
