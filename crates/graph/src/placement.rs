//! Bank-aware CSR row placement.
//!
//! The device stores `G'` in banked off-chip DRAM (paper §VI): each bank has
//! one row buffer, and a burst that lands on a bank whose open row (stripe)
//! differs from its own pays a conflict stall (precharge + activate). The
//! natural CSR layout scatters the hot adjacency rows — the hub rows a DFS
//! wavefront re-reads constantly — across stripes with no regard for which
//! bank they share, so two hot rows that alternate on one bank thrash its
//! row buffer and conflict on every switch once the simulator *charges*
//! those stalls (the arbiter with banked charging on).
//!
//! [`RowPlacement`] is the layout transform that exploits the charged signal:
//! it assigns every vertex's adjacency row a DRAM word address, either
//! mirroring the CSR order ([`PlacementPolicy::Natural`]) or clustering by
//! *heat* ([`PlacementPolicy::BankAware`]) — rows are packed densely in
//! descending order of how often the enumeration will fetch them, so the
//! handful of rows that dominate the fetch stream collapse into the fewest
//! possible stripes. Rows that alternate in the stream then either share a
//! stripe (a row-buffer hit) or sit in so few stripes that the banks' open
//! rows cover most of the hot set. The caller supplies the heat estimate
//! ([`RowPlacement::plan_with_heat`]); `pefp-core` derives it from the
//! query's hop budget and barrier with a walk-count recurrence, and the
//! plain [`RowPlacement::plan`] falls back to out-degree. Cold rows tie at
//! zero heat and keep their id order, preserving the natural layout's
//! locality for the tail. Placement moves bytes, never edges: enumeration
//! output is byte-identical under any policy, only the charged conflict
//! cycles change.

use crate::csr::CsrGraph;
use crate::ids::VertexId;
use serde::{Deserialize, Serialize};

/// How adjacency rows of a graph are laid out across DRAM banks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// CSR order: row `v` starts at word `offsets[v]`, rows densely packed.
    /// This is the layout every run used before placement existed.
    #[default]
    Natural,
    /// Heat-clustered: rows are packed densely in descending fetch-heat
    /// order (ties by id), concentrating the hottest rows into the fewest
    /// stripes so the banks' open rows cover most of the fetch stream.
    BankAware,
}

impl PlacementPolicy {
    /// Stable lower-case name (`natural` / `bank_aware`) for CLIs and logs.
    pub fn name(&self) -> &'static str {
        match self {
            PlacementPolicy::Natural => "natural",
            PlacementPolicy::BankAware => "bank_aware",
        }
    }

    /// Parses [`PlacementPolicy::name`] output (case-insensitive).
    pub fn parse(s: &str) -> Option<PlacementPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "natural" => Some(PlacementPolicy::Natural),
            "bank_aware" | "bankaware" | "bank-aware" => Some(PlacementPolicy::BankAware),
            _ => None,
        }
    }
}

/// A planned DRAM word address for every adjacency row of one graph.
///
/// Addresses are what the bank model times: `bank_of(addr)` decides which
/// bank a row fetch starts on and therefore whether it conflicts with the
/// previous burst. The placement never rewrites the CSR arrays themselves —
/// the engine keeps reading `successors(v)` from host memory — it only
/// relocates the *simulated* copy of each row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowPlacement {
    policy: PlacementPolicy,
    /// Start word address of each vertex's adjacency row.
    addr: Vec<u64>,
    /// One past the highest word address any row occupies.
    total_words: u64,
}

impl RowPlacement {
    /// Plans row addresses for `csr` under `policy` on a memory system of
    /// `num_banks` banks with `stripe_words`-word stripes (the geometry
    /// `pefp-fpga`'s `DramBanks` exposes), with out-degree as the heat
    /// estimate. Callers that know the fetch distribution better — the
    /// enumeration engine does, from the query's hop budget and barrier —
    /// should use [`RowPlacement::plan_with_heat`] instead.
    pub fn plan(
        csr: &CsrGraph,
        policy: PlacementPolicy,
        num_banks: usize,
        stripe_words: u64,
    ) -> RowPlacement {
        let heat: Vec<f64> = csr.vertices().map(|v| csr.out_degree(v) as f64).collect();
        Self::plan_with_heat(csr, policy, num_banks, stripe_words, &heat)
    }

    /// [`RowPlacement::plan`] with an explicit per-vertex heat estimate: how
    /// often the enumeration is expected to fetch each adjacency row.
    /// Bank-aware placement packs rows densely in descending heat order
    /// (ties by id, so the plan is deterministic), which concentrates the
    /// hot fetch set into the fewest stripes; zero-heat rows keep their id
    /// order at the tail. Degenerate geometries (fewer than two banks,
    /// zero-width stripes) always fall back to the natural layout: there is
    /// no row-buffer structure to lay out for.
    ///
    /// # Panics
    ///
    /// Panics when `heat.len()` differs from the vertex count.
    pub fn plan_with_heat(
        csr: &CsrGraph,
        policy: PlacementPolicy,
        num_banks: usize,
        stripe_words: u64,
        heat: &[f64],
    ) -> RowPlacement {
        let n = csr.num_vertices();
        let (offsets, _) = csr.raw_parts();
        if policy == PlacementPolicy::Natural || num_banks < 2 || stripe_words == 0 {
            let addr: Vec<u64> = offsets[..n].iter().map(|&o| o as u64).collect();
            return RowPlacement { policy, addr, total_words: csr.num_edges() as u64 };
        }
        assert_eq!(heat.len(), n, "heat estimate must cover every vertex");

        // Hot rows conflict when they alternate in the fetch stream while
        // holding different stripes of one bank. The fewer stripes the hot
        // set spans, the more of it the banks' open rows cover at once — so
        // sort by heat and pack densely, exactly like the natural layout but
        // in fetch-frequency order instead of id order. Total footprint
        // stays `num_edges`: no alignment gaps.
        let mut order: Vec<VertexId> = csr.vertices().collect();
        order.sort_by(|&a, &b| {
            heat[b.index()]
                .partial_cmp(&heat[a.index()])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut addr = vec![0u64; n];
        let mut cursor = 0u64;
        for &v in &order {
            addr[v.index()] = cursor;
            cursor += csr.out_degree(v) as u64;
        }
        RowPlacement { policy, addr, total_words: cursor }
    }

    /// The policy this placement was planned under.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Start word address of `v`'s adjacency row.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range for the planned graph.
    #[inline]
    pub fn row_address(&self, v: VertexId) -> u64 {
        self.addr[v.index()]
    }

    /// One past the highest word address any row occupies (the placed
    /// footprint; ≥ the edge count, since bank-aware stripes leave gaps).
    pub fn total_words(&self) -> u64 {
        self.total_words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One obvious hub (vertex 0, degree 6) plus low-degree tails.
    fn hubby() -> CsrGraph {
        CsrGraph::from_edges(
            8,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
            ],
        )
    }

    #[test]
    fn natural_placement_is_the_csr_offsets() {
        let g = hubby();
        let p = RowPlacement::plan(&g, PlacementPolicy::Natural, 4, 512);
        let (offsets, _) = g.raw_parts();
        for v in g.vertices() {
            assert_eq!(p.row_address(v), offsets[v.index()] as u64);
        }
        assert_eq!(p.total_words(), g.num_edges() as u64);
    }

    #[test]
    fn bank_aware_packs_rows_in_descending_heat_order() {
        // Heat inverts the id order: the hottest row (vertex 2) leads, and
        // the rest follow by falling heat — packed densely, no gaps.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 0)]);
        // degrees: v0=2, v1=2, v2=1, v3=1
        let heat = [1.0, 5.0, 9.0, 0.0];
        let p = RowPlacement::plan_with_heat(&g, PlacementPolicy::BankAware, 4, 8, &heat);
        assert_eq!(p.row_address(VertexId(2)), 0);
        assert_eq!(p.row_address(VertexId(1)), 1);
        assert_eq!(p.row_address(VertexId(0)), 3);
        assert_eq!(p.row_address(VertexId(3)), 5);
        assert_eq!(p.total_words(), g.num_edges() as u64, "dense: no alignment gaps");
    }

    #[test]
    fn zero_heat_ties_keep_id_order_at_the_tail() {
        let g = hubby();
        let heat: Vec<f64> = g.vertices().map(|v| if v.index() == 3 { 1.0 } else { 0.0 }).collect();
        let p = RowPlacement::plan_with_heat(&g, PlacementPolicy::BankAware, 4, 8, &heat);
        // Vertex 3 leads; everyone else follows in id order.
        assert_eq!(p.row_address(VertexId(3)), 0);
        let mut cold: Vec<(u64, VertexId)> =
            g.vertices().filter(|&v| v.index() != 3).map(|v| (p.row_address(v), v)).collect();
        cold.sort_unstable();
        let ids: Vec<u32> = cold.iter().map(|&(_, v)| v.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 4, 5, 6, 7]);
    }

    #[test]
    fn plan_defaults_heat_to_out_degree() {
        let g = hubby();
        let by_plan = RowPlacement::plan(&g, PlacementPolicy::BankAware, 4, 8);
        let heat: Vec<f64> = g.vertices().map(|v| g.out_degree(v) as f64).collect();
        let by_heat = RowPlacement::plan_with_heat(&g, PlacementPolicy::BankAware, 4, 8, &heat);
        for v in g.vertices() {
            assert_eq!(by_plan.row_address(v), by_heat.row_address(v));
        }
    }

    #[test]
    fn degenerate_geometry_falls_back_to_natural() {
        let g = hubby();
        let natural = RowPlacement::plan(&g, PlacementPolicy::Natural, 4, 512);
        let single_bank = RowPlacement::plan(&g, PlacementPolicy::BankAware, 1, 512);
        let no_stripe = RowPlacement::plan(&g, PlacementPolicy::BankAware, 4, 0);
        for v in g.vertices() {
            assert_eq!(single_bank.row_address(v), natural.row_address(v));
            assert_eq!(no_stripe.row_address(v), natural.row_address(v));
        }
    }

    #[test]
    fn every_vertex_gets_a_disjoint_row() {
        let g = crate::generators::chung_lu(300, 6.0, 2.2, 9).to_csr();
        for policy in [PlacementPolicy::Natural, PlacementPolicy::BankAware] {
            let p = RowPlacement::plan(&g, policy, 4, 512);
            let mut rows: Vec<(u64, u64)> = g
                .vertices()
                .filter(|&v| g.out_degree(v) > 0)
                .map(|v| (p.row_address(v), g.out_degree(v) as u64))
                .collect();
            rows.sort_unstable();
            for pair in rows.windows(2) {
                assert!(
                    pair[0].0 + pair[0].1 <= pair[1].0,
                    "rows overlap under {policy:?}: {pair:?}"
                );
            }
            let end = rows.last().map(|&(a, len)| a + len).unwrap_or(0);
            assert!(end <= p.total_words());
        }
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in [PlacementPolicy::Natural, PlacementPolicy::BankAware] {
            assert_eq!(PlacementPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(PlacementPolicy::parse("BANK-AWARE"), Some(PlacementPolicy::BankAware));
        assert_eq!(PlacementPolicy::parse("nope"), None);
    }
}
