//! Parsers and writers for the edge-list dialects of the dataset archives the
//! paper downloads from (SNAP and KONECT), plus auto-detection.
//!
//! The plain `io` module handles bare `u32 u32` edge lists. Real archives add
//! comment headers (`#` for SNAP, `%` for KONECT), allow tab or space
//! separation, may carry extra per-edge columns (weights, timestamps) and may
//! use arbitrary, non-contiguous vertex identifiers. This module normalises
//! all of that into a [`DiGraph`] plus the id mapping that was applied, so a
//! user pointing the tool at a downloaded `soc-Epinions1.txt` gets the same
//! graph the paper used.

use crate::digraph::DiGraph;
use crate::ids::VertexId;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};

/// The edge-list dialects understood by [`read_graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// SNAP-style: `#`-prefixed comment lines, whitespace-separated pairs.
    Snap,
    /// KONECT-style: `%`-prefixed comment lines, whitespace-separated pairs,
    /// optionally followed by weight/timestamp columns that are ignored.
    Konect,
    /// Bare edge list without comments.
    Plain,
}

impl GraphFormat {
    /// The comment prefix of the dialect (empty for [`GraphFormat::Plain`]).
    pub fn comment_prefix(self) -> &'static str {
        match self {
            GraphFormat::Snap => "#",
            GraphFormat::Konect => "%",
            GraphFormat::Plain => "",
        }
    }
}

/// Errors produced while parsing an edge-list file.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A data line did not contain at least two integer columns.
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// The line's content.
        content: String,
    },
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "i/o error: {e}"),
            FormatError::Malformed { line, content } => {
                write!(f, "malformed edge on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            FormatError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

/// A parsed graph together with the external→internal vertex id mapping that
/// was applied during loading.
#[derive(Debug, Clone)]
pub struct LoadedGraph {
    /// The graph with dense internal ids `0..n`.
    pub graph: DiGraph,
    /// `external_ids[i]` is the original identifier of internal vertex `i`.
    pub external_ids: Vec<u64>,
    /// Number of duplicate edges that were dropped.
    pub duplicate_edges: usize,
    /// Number of self-loops that were dropped (the problem definition only
    /// considers simple paths, so self-loops can never appear on one).
    pub self_loops: usize,
    /// Number of comment lines skipped.
    pub comment_lines: usize,
}

impl LoadedGraph {
    /// Looks up the internal id assigned to an external vertex identifier.
    pub fn internal_id(&self, external: u64) -> Option<VertexId> {
        self.external_ids.iter().position(|&e| e == external).map(VertexId::from_index)
    }

    /// The external identifier of an internal vertex.
    pub fn external_id(&self, v: VertexId) -> u64 {
        self.external_ids[v.index()]
    }
}

/// Guesses the dialect from the first non-empty line of `content`.
pub fn detect_format(content: &str) -> GraphFormat {
    for line in content.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed.starts_with('#') {
            return GraphFormat::Snap;
        }
        if trimmed.starts_with('%') {
            return GraphFormat::Konect;
        }
        return GraphFormat::Plain;
    }
    GraphFormat::Plain
}

/// Reads a graph in the given dialect from `reader`.
///
/// External vertex identifiers may be arbitrary `u64`s; they are remapped to
/// dense internal ids in order of first appearance. Duplicate edges and
/// self-loops are dropped (and counted in the returned [`LoadedGraph`]).
pub fn read_graph<R: BufRead>(reader: R, format: GraphFormat) -> Result<LoadedGraph, FormatError> {
    let comment = format.comment_prefix();
    let mut id_map: HashMap<u64, u32> = HashMap::new();
    let mut external_ids: Vec<u64> = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut self_loops = 0usize;
    let mut comment_lines = 0usize;

    let intern = |ext: u64, external_ids: &mut Vec<u64>, id_map: &mut HashMap<u64, u32>| -> u32 {
        *id_map.entry(ext).or_insert_with(|| {
            let id = external_ids.len() as u32;
            external_ids.push(ext);
            id
        })
    };

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if !comment.is_empty() && trimmed.starts_with(comment) {
            comment_lines += 1;
            continue;
        }
        // Tolerate comments even in "plain" files so auto-detected inputs with
        // a stray header do not abort the load.
        if trimmed.starts_with('#') || trimmed.starts_with('%') {
            comment_lines += 1;
            continue;
        }
        let mut cols = trimmed.split_whitespace();
        let from = cols.next().and_then(|c| c.parse::<u64>().ok());
        let to = cols.next().and_then(|c| c.parse::<u64>().ok());
        match (from, to) {
            (Some(f), Some(t)) => {
                if f == t {
                    self_loops += 1;
                    continue;
                }
                let fi = intern(f, &mut external_ids, &mut id_map);
                let ti = intern(t, &mut external_ids, &mut id_map);
                edges.push((fi, ti));
            }
            _ => {
                return Err(FormatError::Malformed {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }

    let before = edges.len();
    edges.sort_unstable();
    edges.dedup();
    let duplicate_edges = before - edges.len();

    let mut graph = DiGraph::new(external_ids.len());
    for (f, t) in edges {
        graph.add_edge(VertexId(f), VertexId(t));
    }

    Ok(LoadedGraph { graph, external_ids, duplicate_edges, self_loops, comment_lines })
}

/// Reads a graph from a string, auto-detecting the dialect.
pub fn read_graph_auto(content: &str) -> Result<LoadedGraph, FormatError> {
    let format = detect_format(content);
    read_graph(io::Cursor::new(content.as_bytes()), format)
}

/// Reads a graph from a file on disk, auto-detecting the dialect.
pub fn read_graph_file<P: AsRef<std::path::Path>>(path: P) -> Result<LoadedGraph, FormatError> {
    let content = std::fs::read_to_string(path)?;
    read_graph_auto(&content)
}

/// Writes `g` as a SNAP-style edge list with a descriptive comment header.
pub fn write_snap<W: Write>(g: &DiGraph, name: &str, mut writer: W) -> io::Result<()> {
    writeln!(writer, "# Directed graph: {name}")?;
    writeln!(writer, "# Nodes: {} Edges: {}", g.num_vertices(), g.num_edges())?;
    writeln!(writer, "# FromNodeId\tToNodeId")?;
    for e in g.edges() {
        writeln!(writer, "{}\t{}", e.from.0, e.to.0)?;
    }
    Ok(())
}

/// Writes `g` as a KONECT-style edge list.
pub fn write_konect<W: Write>(g: &DiGraph, mut writer: W) -> io::Result<()> {
    writeln!(writer, "% asym unweighted")?;
    writeln!(writer, "% {} {}", g.num_edges(), g.num_vertices())?;
    for e in g.edges() {
        writeln!(writer, "{} {}", e.from.0, e.to.0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_snap_konect_and_plain() {
        assert_eq!(detect_format("# comment\n1 2\n"), GraphFormat::Snap);
        assert_eq!(detect_format("% konect\n1 2\n"), GraphFormat::Konect);
        assert_eq!(detect_format("1 2\n2 3\n"), GraphFormat::Plain);
        assert_eq!(detect_format("\n\n# late header\n"), GraphFormat::Snap);
        assert_eq!(detect_format(""), GraphFormat::Plain);
    }

    #[test]
    fn parses_snap_with_comments_and_tabs() {
        let text = "# Directed graph\n# Nodes: 3 Edges: 2\n0\t1\n1\t2\n";
        let loaded = read_graph_auto(text).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 2);
        assert_eq!(loaded.comment_lines, 2);
    }

    #[test]
    fn parses_konect_and_ignores_extra_columns() {
        let text = "% asym\n% 3 3\n1 2 1.0 1234\n2 3 0.5 1235\n3 1 0.25 1236\n";
        let loaded = read_graph_auto(text).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        assert_eq!(loaded.graph.num_edges(), 3);
    }

    #[test]
    fn remaps_sparse_external_ids_densely() {
        let text = "1000000 42\n42 777\n777 1000000\n";
        let loaded = read_graph_auto(text).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 3);
        // First appearance order: 1000000, 42, 777.
        assert_eq!(loaded.external_ids, vec![1_000_000, 42, 777]);
        assert_eq!(loaded.internal_id(42), Some(VertexId(1)));
        assert_eq!(loaded.external_id(VertexId(2)), 777);
        assert_eq!(loaded.internal_id(99), None);
    }

    #[test]
    fn drops_and_counts_self_loops_and_duplicates() {
        let text = "0 1\n0 1\n1 1\n1 2\n";
        let loaded = read_graph_auto(text).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
        assert_eq!(loaded.duplicate_edges, 1);
        assert_eq!(loaded.self_loops, 1);
    }

    #[test]
    fn malformed_line_is_reported_with_its_number() {
        let text = "0 1\nnot-an-edge\n";
        let err = read_graph_auto(text).unwrap_err();
        match err {
            FormatError::Malformed { line, content } => {
                assert_eq!(line, 2);
                assert_eq!(content, "not-an-edge");
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn snap_round_trip_preserves_the_graph() {
        let mut g = DiGraph::new(4);
        g.add_edge(VertexId(0), VertexId(1));
        g.add_edge(VertexId(1), VertexId(2));
        g.add_edge(VertexId(2), VertexId(3));
        let mut buf = Vec::new();
        write_snap(&g, "test", &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(detect_format(&text), GraphFormat::Snap);
        let loaded = read_graph_auto(&text).unwrap();
        assert_eq!(loaded.graph.num_edges(), 3);
        assert_eq!(loaded.graph.to_csr(), g.to_csr());
    }

    #[test]
    fn konect_round_trip_preserves_the_graph() {
        let mut g = DiGraph::new(3);
        g.add_edge(VertexId(0), VertexId(1));
        g.add_edge(VertexId(2), VertexId(0));
        let mut buf = Vec::new();
        write_konect(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(detect_format(&text), GraphFormat::Konect);
        let loaded = read_graph_auto(&text).unwrap();
        assert_eq!(loaded.graph.to_csr(), g.to_csr());
    }

    #[test]
    fn file_round_trip_works() {
        let dir = std::env::temp_dir().join("pefp_formats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.txt");
        let mut g = DiGraph::new(5);
        g.add_edge(VertexId(0), VertexId(4));
        g.add_edge(VertexId(4), VertexId(2));
        let mut buf = Vec::new();
        write_snap(&g, "file-test", &mut buf).unwrap();
        std::fs::write(&path, buf).unwrap();
        let loaded = read_graph_file(&path).unwrap();
        assert_eq!(loaded.graph.num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let loaded = read_graph_auto("").unwrap();
        assert_eq!(loaded.graph.num_vertices(), 0);
        assert_eq!(loaded.graph.num_edges(), 0);
    }
}
