//! Streaming result consumption: the [`PathSink`] trait and its combinators.
//!
//! The paper's result sets explode (§VI sweeps reach 10⁸+ paths; the DRAM
//! spill logic exists precisely because results do not fit on-chip), so no
//! layer of the system should be forced to materialise every path as a
//! `Vec<Vec<VertexId>>` just to hand it to the next layer. A [`PathSink`] is
//! the push-based alternative: enumeration calls [`PathSink::emit`] once per
//! result path, the sink decides what to keep, and the returned
//! [`ControlFlow`] lets the sink terminate the enumeration early.
//!
//! The combinators cover the common shapes:
//!
//! * [`CountingSink`] — count paths without storing any of them;
//! * [`CollectSink`] — materialise everything (the legacy behaviour, used by
//!   the collect-everything wrappers);
//! * [`FirstN`] — forward the first `n` paths to an inner sink, then stop the
//!   enumeration;
//! * [`TranslateSink`] — remap device/subgraph vertex ids back to original
//!   ids through an [`InducedSubgraph`] before forwarding, reusing one
//!   scratch buffer so no per-path intermediate vector is allocated;
//! * [`FnSink`] — adapt a closure.
//!
//! The slice passed to `emit` is only valid for the duration of the call;
//! sinks that keep paths must copy them (that copy is the *one* allocation a
//! collecting pipeline pays per path).

use crate::ids::VertexId;
use crate::induced::InducedSubgraph;
use crate::paths::Path;
use std::ops::ControlFlow;

/// A consumer of enumerated paths.
///
/// Implementors receive each result path exactly once, in enumeration order.
/// Returning [`ControlFlow::Break`] asks the producer to stop enumerating;
/// producers must not call `emit` again after a break.
pub trait PathSink {
    /// Consumes one result path. The slice is only valid during the call.
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()>;
}

impl<S: PathSink + ?Sized> PathSink for &mut S {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        (**self).emit(path)
    }
}

/// Counts paths without storing them; never terminates the enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    count: u64,
}

impl CountingSink {
    /// A sink with a zero count.
    pub fn new() -> Self {
        CountingSink::default()
    }

    /// Number of paths emitted so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl PathSink for CountingSink {
    #[inline]
    fn emit(&mut self, _path: &[VertexId]) -> ControlFlow<()> {
        self.count += 1;
        ControlFlow::Continue(())
    }
}

/// Materialises every emitted path — the collect-everything legacy behaviour,
/// now explicitly opt-in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectSink {
    paths: Vec<Path>,
}

impl CollectSink {
    /// An empty sink.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// An empty sink with space reserved for `n` paths.
    pub fn with_capacity(n: usize) -> Self {
        CollectSink { paths: Vec::with_capacity(n) }
    }

    /// The collected paths, in emission order.
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Number of paths collected.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Consumes the sink, returning the collected paths.
    pub fn into_paths(self) -> Vec<Path> {
        self.paths
    }
}

impl PathSink for CollectSink {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        self.paths.push(path.to_vec());
        ControlFlow::Continue(())
    }
}

/// Forwards the first `n` paths to the inner sink, then breaks: the
/// early-termination combinator behind `max_results`-style limits.
///
/// The break is returned *with* the `n`-th path, so a producer that honours
/// the contract performs no further expansion work once the quota is met.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FirstN<S> {
    inner: S,
    limit: u64,
    emitted: u64,
}

impl<S: PathSink> FirstN<S> {
    /// Caps `inner` at the first `limit` paths.
    pub fn new(limit: u64, inner: S) -> Self {
        FirstN { inner, limit, emitted: 0 }
    }

    /// Number of paths forwarded so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The configured cap.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Consumes the combinator, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PathSink> PathSink for FirstN<S> {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        if self.emitted >= self.limit {
            return ControlFlow::Break(());
        }
        let flow = self.inner.emit(path);
        self.emitted += 1;
        if flow.is_break() || self.emitted >= self.limit {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// Remaps subgraph (device) vertex ids back to original graph ids before
/// forwarding to the inner sink.
///
/// One scratch buffer is reused across emissions, so translation itself
/// allocates nothing in steady state — the whole point of streaming results
/// out of the engine instead of materialising a device-id vector first.
#[derive(Debug)]
pub struct TranslateSink<'a, S> {
    mapping: &'a InducedSubgraph,
    inner: S,
    buf: Path,
}

impl<'a, S: PathSink> TranslateSink<'a, S> {
    /// Wraps `inner` so every emitted path is translated through `mapping`.
    pub fn new(mapping: &'a InducedSubgraph, inner: S) -> Self {
        TranslateSink { mapping, inner, buf: Vec::new() }
    }

    /// Consumes the combinator, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PathSink> PathSink for TranslateSink<'_, S> {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        self.buf.clear();
        self.buf.extend(path.iter().map(|&v| self.mapping.to_old(v)));
        self.inner.emit(&self.buf)
    }
}

/// Adapts a closure into a [`PathSink`].
///
/// A named wrapper instead of a blanket `impl PathSink for FnMut(..)` so the
/// `&mut S` forwarding impl stays coherent.
#[derive(Debug, Clone)]
pub struct FnSink<F>(pub F);

impl<F: FnMut(&[VertexId]) -> ControlFlow<()>> PathSink for FnSink<F> {
    #[inline]
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        (self.0)(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;
    use crate::induced::induce_subgraph;

    fn p(ids: &[u32]) -> Path {
        ids.iter().map(|&v| VertexId(v)).collect()
    }

    #[test]
    fn counting_sink_counts_without_storing() {
        let mut sink = CountingSink::new();
        for _ in 0..5 {
            assert_eq!(sink.emit(&p(&[0, 1])), ControlFlow::Continue(()));
        }
        assert_eq!(sink.count(), 5);
    }

    #[test]
    fn collect_sink_preserves_order_and_content() {
        let mut sink = CollectSink::with_capacity(2);
        let _ = sink.emit(&p(&[0, 1, 3]));
        let _ = sink.emit(&p(&[0, 2, 3]));
        assert_eq!(sink.len(), 2);
        assert!(!sink.is_empty());
        assert_eq!(sink.paths()[0], p(&[0, 1, 3]));
        assert_eq!(sink.into_paths(), vec![p(&[0, 1, 3]), p(&[0, 2, 3])]);
    }

    #[test]
    fn first_n_caps_and_breaks_on_the_nth_path() {
        let mut sink = FirstN::new(2, CollectSink::new());
        assert_eq!(sink.emit(&p(&[0])), ControlFlow::Continue(()));
        // The 2nd path is forwarded AND the producer is told to stop.
        assert_eq!(sink.emit(&p(&[1])), ControlFlow::Break(()));
        assert_eq!(sink.emitted(), 2);
        assert_eq!(sink.limit(), 2);
        // A producer ignoring the break gets refused without forwarding.
        assert_eq!(sink.emit(&p(&[2])), ControlFlow::Break(()));
        assert_eq!(sink.into_inner().len(), 2);
    }

    #[test]
    fn first_n_zero_never_forwards() {
        let mut sink = FirstN::new(0, CollectSink::new());
        assert_eq!(sink.emit(&p(&[0])), ControlFlow::Break(()));
        assert_eq!(sink.emitted(), 0);
        assert!(sink.into_inner().is_empty());
    }

    #[test]
    fn first_n_propagates_an_inner_break() {
        let mut sink = FirstN::new(10, FirstN::new(1, CountingSink::new()));
        assert_eq!(sink.emit(&p(&[0])), ControlFlow::Break(()));
        assert_eq!(sink.emitted(), 1);
    }

    #[test]
    fn translate_sink_remaps_back_to_original_ids() {
        // Keep 0, 2, 4 of a 5-vertex graph: new ids 0, 1, 2.
        let g = CsrGraph::from_edges(5, &[(0, 2), (2, 4)]);
        let ind = induce_subgraph(&g, |v| v.0 % 2 == 0);
        let mut sink = TranslateSink::new(&ind, CollectSink::new());
        let _ = sink.emit(&p(&[0, 1, 2]));
        let _ = sink.emit(&p(&[0, 1, 2]));
        let collected = sink.into_inner().into_paths();
        assert_eq!(collected, vec![p(&[0, 2, 4]), p(&[0, 2, 4])]);
    }

    #[test]
    fn fn_sink_and_mut_ref_forwarding() {
        let mut seen = 0u32;
        {
            let mut sink = FnSink(|path: &[VertexId]| {
                seen += path.len() as u32;
                ControlFlow::Continue(())
            });
            // Emit through a &mut reference, as the engine does for caller sinks.
            let by_ref: &mut dyn PathSink = &mut sink;
            let _ = by_ref.emit(&p(&[0, 1]));
            let _ = by_ref.emit(&p(&[2]));
        }
        assert_eq!(seen, 3);
    }
}
