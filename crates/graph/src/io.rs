//! Edge-list input/output.
//!
//! The paper's host loads graphs from files ("the user first specifies the
//! graph file, then the host loads the corresponding graph data", Section IV).
//! SNAP/KONECT distribute graphs as whitespace-separated edge lists with `#`
//! comment lines; this module reads and writes that format so users can run
//! the system on their own downloads of the original datasets.

use crate::digraph::DiGraph;
use crate::ids::VertexId;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum EdgeListError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed as two vertex ids.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for EdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeListError::Io(e) => write!(f, "I/O error: {e}"),
            EdgeListError::Parse { line, content } => {
                write!(f, "line {line}: expected `<from> <to>`, got {content:?}")
            }
        }
    }
}

impl std::error::Error for EdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdgeListError::Io(e) => Some(e),
            EdgeListError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for EdgeListError {
    fn from(e: io::Error) -> Self {
        EdgeListError::Io(e)
    }
}

/// Parses a SNAP-style edge list from any reader.
///
/// * Lines starting with `#` or `%` are comments.
/// * Blank lines are skipped.
/// * Every other line must contain two whitespace-separated non-negative
///   integers `<from> <to>`; any further columns (weights, timestamps) are
///   ignored.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<DiGraph, EdgeListError> {
    let mut g = DiGraph::empty();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (Some(a), Some(b)) = (parts.next(), parts.next()) else {
            return Err(EdgeListError::Parse { line: idx + 1, content: line.clone() });
        };
        let (Ok(u), Ok(v)) = (a.parse::<u32>(), b.parse::<u32>()) else {
            return Err(EdgeListError::Parse { line: idx + 1, content: line.clone() });
        };
        let needed = u.max(v) as usize + 1;
        g.ensure_vertices(needed);
        g.add_edge(VertexId(u), VertexId(v));
    }
    Ok(g)
}

/// Reads an edge-list file from disk. See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<DiGraph, EdgeListError> {
    let file = File::open(path)?;
    read_edge_list(BufReader::new(file))
}

/// Writes a graph as a SNAP-style edge list with a small header comment.
pub fn write_edge_list<W: Write>(g: &DiGraph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# Directed edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for e in g.edges() {
        writeln!(writer, "{}\t{}", e.from.0, e.to.0)?;
    }
    Ok(())
}

/// Writes a graph to an edge-list file on disk. See [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(g: &DiGraph, path: P) -> io::Result<()> {
    let file = File::create(path)?;
    write_edge_list(g, BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_simple_edge_list() {
        let input = "# comment\n0 1\n1 2\n\n% another comment\n2 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(VertexId(2), VertexId(0)));
    }

    #[test]
    fn extra_columns_are_ignored() {
        let input = "0 1 0.5 1234\n1 2 0.9 999\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn bad_line_reports_line_number() {
        let input = "0 1\nnot an edge\n";
        let err = read_edge_list(Cursor::new(input)).unwrap_err();
        match err {
            EdgeListError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn single_column_line_is_an_error() {
        let input = "0\n";
        assert!(read_edge_list(Cursor::new(input)).is_err());
    }

    #[test]
    fn write_then_read_round_trips() {
        let g = DiGraph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = g2.edges().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("pefp_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let g = DiGraph::from_edges([(0, 5), (5, 2)]);
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.num_vertices(), 6);
        assert!(g2.has_edge(VertexId(0), VertexId(5)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let err = EdgeListError::Parse { line: 7, content: "x y".to_string() };
        let msg = err.to_string();
        assert!(msg.contains("line 7"));
        assert!(msg.contains("x y"));
    }
}
