//! Compressed Sparse Row (CSR) graph representation.
//!
//! The paper stores the preprocessed subgraph `G'` in FPGA DRAM using CSR
//! (Section V), and the device-side engine caches the two CSR arrays
//! (`vertex_arr`, `edge_arr`) in BRAM. This module provides the same layout:
//! an `offsets` array of length `|V|+1` and a flat `targets` array of length
//! `|E|`, so that the successors of `v` are `targets[offsets[v]..offsets[v+1]]`.

use crate::ids::{Edge, VertexId};
use serde::{Deserialize, Serialize};

/// Immutable directed graph in CSR form.
///
/// Adjacency lists are sorted by target id and deduplicated, which makes
/// result-path canonicalisation and equality tests deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` is the slice of `targets` holding v's successors.
    offsets: Vec<u32>,
    /// Flattened successor lists.
    targets: Vec<VertexId>,
}

impl CsrGraph {
    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph { offsets: vec![0; n + 1], targets: Vec::new() }
    }

    /// Builds a CSR graph directly from an edge list (convenience for tests).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut b = CsrBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(VertexId(u), VertexId(v));
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Successors (out-neighbours) of `v`, sorted by id.
    #[inline]
    pub fn successors(&self, v: VertexId) -> &[VertexId] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The half-open range of edge indices owned by `v`.
    ///
    /// The PEFP engine's Batch-DFS keeps *neighbour pointers* into this range
    /// so a high-degree vertex can be expanded across several batches
    /// (Algorithm 4); exposing the raw range is what makes that possible.
    #[inline]
    pub fn neighbor_range(&self, v: VertexId) -> std::ops::Range<u32> {
        let i = v.index();
        self.offsets[i]..self.offsets[i + 1]
    }

    /// The target vertex of edge index `e` (an index into the flat edge array).
    #[inline]
    pub fn edge_target(&self, e: u32) -> VertexId {
        self.targets[e as usize]
    }

    /// Slice of edge targets for an arbitrary edge-index range.
    #[inline]
    pub fn edge_slice(&self, range: std::ops::Range<u32>) -> &[VertexId] {
        &self.targets[range.start as usize..range.end as usize]
    }

    /// Whether the directed edge `from -> to` exists (binary search).
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.successors(from).binary_search(&to).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterator over every directed edge.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| self.successors(u).iter().map(move |&v| Edge::new(u, v)))
    }

    /// The reverse graph `G_rev` in CSR form.
    pub fn reverse(&self) -> CsrGraph {
        let mut b = CsrBuilder::new(self.num_vertices());
        for e in self.edges() {
            b.add_edge(e.to, e.from);
        }
        b.build()
    }

    /// Raw CSR arrays `(offsets, targets)` — the exact layout transferred to
    /// device DRAM by the host (see `pefp-fpga`).
    pub fn raw_parts(&self) -> (&[u32], &[VertexId]) {
        (&self.offsets, &self.targets)
    }

    /// Size in bytes of the CSR arrays, used to model the PCIe transfer and
    /// decide whether the graph fits in BRAM.
    pub fn byte_size(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_out_degree(&self) -> usize {
        self.vertices().map(|v| self.out_degree(v)).max().unwrap_or(0)
    }
}

/// Incremental builder for [`CsrGraph`].
///
/// Edges may be added in any order; `build` sorts and deduplicates them using
/// a counting-sort style two-pass construction (no per-vertex `Vec`s), which
/// keeps peak memory at `O(|V| + |E|)`.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl CsrBuilder {
    /// Creates a builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        CsrBuilder { num_vertices: n, edges: Vec::new() }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        CsrBuilder { num_vertices: n, edges: Vec::with_capacity(m) }
    }

    /// Adds the directed edge `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    #[inline]
    pub fn add_edge(&mut self, from: VertexId, to: VertexId) {
        assert!(from.index() < self.num_vertices, "edge source {from} out of range");
        assert!(to.index() < self.num_vertices, "edge target {to} out of range");
        self.edges.push((from, to));
    }

    /// Number of edges added so far (before deduplication).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalises the CSR arrays: counting sort by source, then per-vertex sort
    /// and dedup of targets.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_vertices;
        let mut counts = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            counts[u.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        // Scatter targets into place.
        let mut targets = vec![VertexId::INVALID; self.edges.len()];
        let mut cursor = counts.clone();
        for &(u, v) in &self.edges {
            let slot = cursor[u.index()] as usize;
            targets[slot] = v;
            cursor[u.index()] += 1;
        }
        self.edges.clear();
        self.edges.shrink_to_fit();

        // Sort + dedup each adjacency list, compacting in place.
        let mut offsets = vec![0u32; n + 1];
        let mut write = 0usize;
        for v in 0..n {
            let start = counts[v] as usize;
            let end = counts[v + 1] as usize;
            let list = &mut targets[start..end];
            list.sort_unstable();
            let mut prev: Option<VertexId> = None;
            let mut kept = 0usize;
            for i in 0..list.len() {
                let t = list[i];
                if prev != Some(t) {
                    list[kept] = t;
                    kept += 1;
                    prev = Some(t);
                }
            }
            // Move the kept prefix to the compacted position.
            for i in 0..kept {
                targets[write + i] = targets[start + i];
            }
            write += kept;
            offsets[v + 1] = write as u32;
        }
        targets.truncate(write);
        CsrGraph { offsets, targets }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (0, 4)])
    }

    #[test]
    fn counts_are_correct() {
        let g = sample();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.out_degree(VertexId(0)), 3);
        assert_eq!(g.out_degree(VertexId(4)), 0);
    }

    #[test]
    fn successors_are_sorted_and_deduped() {
        let g = CsrGraph::from_edges(3, &[(0, 2), (0, 1), (0, 2), (0, 1)]);
        assert_eq!(g.successors(VertexId(0)), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn has_edge_uses_sorted_lists() {
        let g = sample();
        assert!(g.has_edge(VertexId(0), VertexId(4)));
        assert!(!g.has_edge(VertexId(4), VertexId(0)));
    }

    #[test]
    fn neighbor_range_matches_successors() {
        let g = sample();
        for v in g.vertices() {
            let r = g.neighbor_range(v);
            assert_eq!(g.edge_slice(r.clone()), g.successors(v));
            for e in r {
                assert!(g.successors(v).contains(&g.edge_target(e)));
            }
        }
    }

    #[test]
    fn reverse_has_same_edge_count_and_flipped_edges() {
        let g = sample();
        let r = g.reverse();
        assert_eq!(r.num_edges(), g.num_edges());
        for e in g.edges() {
            assert!(r.has_edge(e.to, e.from));
        }
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = CsrGraph::empty(3);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.successors(VertexId(1)), &[]);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    fn byte_size_counts_both_arrays() {
        let g = sample();
        assert_eq!(g.byte_size(), (5 + 1) * 4 + 6 * 4);
    }

    #[test]
    fn builder_reports_len() {
        let mut b = CsrBuilder::with_edge_capacity(3, 4);
        assert!(b.is_empty());
        b.add_edge(VertexId(0), VertexId(1));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn raw_parts_expose_csr_layout() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let (offsets, targets) = g.raw_parts();
        assert_eq!(offsets, &[0, 1, 2, 2]);
        assert_eq!(targets, &[VertexId(1), VertexId(2)]);
    }

    #[test]
    fn max_out_degree_finds_hub() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        assert_eq!(g.max_out_degree(), 3);
    }
}
