//! # pefp-graph
//!
//! Directed-graph substrate for the PEFP reproduction (ICDE 2021,
//! "PEFP: Efficient k-hop Constrained s-t Simple Path Enumeration on FPGA").
//!
//! The crate provides everything the host side of the system needs before any
//! path enumeration starts:
//!
//! * [`DiGraph`] — a mutable adjacency-list directed graph used while loading or
//!   generating data, with cheap reversal ([`DiGraph::reverse`]).
//! * [`CsrGraph`] — the immutable *Compressed Sparse Row* representation that the
//!   paper ships to FPGA DRAM (Section V). All enumeration algorithms run on CSR.
//! * [`induced`] — induced-subgraph extraction with old→new vertex remapping,
//!   used by the Pre-BFS preprocessing.
//! * [`sink`] — the [`PathSink`] streaming-result trait and its combinators
//!   (counting, collecting, first-`n` early termination, id translation),
//!   shared by every enumeration producer in the workspace.
//! * [`generators`] — deterministic synthetic graph generators (power-law /
//!   Chung–Lu, Erdős–Rényi, copying model, small world, grid, DAG layers).
//! * [`datasets`] — the catalog of the paper's 12 evaluation datasets (Table II)
//!   with scaled-down synthetic stand-ins.
//! * [`stats`] — degree / diameter / effective-diameter statistics so the
//!   stand-ins can be checked against Table II.
//! * [`io`] — plain edge-list reading and writing.
//!
//! ## Quick example
//!
//! ```
//! use pefp_graph::{DiGraph, VertexId};
//!
//! let mut g = DiGraph::new(4);
//! g.add_edge(VertexId(0), VertexId(1));
//! g.add_edge(VertexId(1), VertexId(2));
//! g.add_edge(VertexId(2), VertexId(3));
//! let csr = g.to_csr();
//! assert_eq!(csr.out_degree(VertexId(1)), 1);
//! assert_eq!(csr.successors(VertexId(0)), &[VertexId(1)]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bfs;
pub mod components;
pub mod csr;
pub mod datasets;
pub mod degree;
pub mod delta;
pub mod digraph;
pub mod formats;
pub mod generators;
pub mod ids;
pub mod induced;
pub mod io;
pub mod labels;
pub mod paths;
pub mod placement;
pub mod sampling;
pub mod scc;
pub mod sink;
pub mod stats;
pub mod view;

pub use bfs::{constrained_distance, khop_bfs, khop_bfs_multi, BfsScratch, UNREACHED};
pub use components::{weakly_connected_components, DisjointSets, WccDecomposition};
pub use csr::{CsrBuilder, CsrGraph};
pub use datasets::{Dataset, DatasetSpec, ScaleProfile};
pub use degree::DegreeDistribution;
pub use delta::{Epoch, GraphDelta, GraphSnapshot, SnapshotView, VersionedGraph};
pub use digraph::DiGraph;
pub use formats::{detect_format, read_graph_auto, read_graph_file, GraphFormat, LoadedGraph};
pub use ids::VertexId;
pub use induced::{
    induce_subgraph, induce_subgraph_from_vertices, induce_subgraph_from_vertices_with,
    InducedSubgraph, RemapScratch,
};
pub use labels::{Label, LabelConstraint, VertexLabels};
pub use paths::Path;
pub use placement::{PlacementPolicy, RowPlacement};
pub use sampling::{sample_reachable_pairs, sample_simple_paths};
pub use scc::{strongly_connected_components, SccDecomposition};
pub use sink::{CollectSink, CountingSink, FirstN, FnSink, PathSink, TranslateSink};
pub use stats::GraphStats;
pub use view::GraphView;
