//! Erdős–Rényi `G(n, m)` random directed graphs.
//!
//! Used for uniform-density stand-ins and as a stress workload where the
//! barrier check has uniform pruning power (no hubs, low variance degrees).

use super::rng_from_seed;
use crate::digraph::DiGraph;
use crate::ids::VertexId;
use rand::Rng;

/// Generates a directed graph with exactly `m` distinct directed edges chosen
/// uniformly at random among the `n*(n-1)` possible non-loop edges.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> DiGraph {
    let possible = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= possible, "requested {m} edges but only {possible} are possible");
    let mut rng = rng_from_seed(seed);
    let mut g = DiGraph::new(n);
    let mut added = 0usize;
    // Rejection sampling is fine for the sparse graphs used in the evaluation
    // (m << n^2); guard against pathological density with a bounded retry loop.
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(50).max(1000);
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && g.add_edge_unique(VertexId::from_index(u), VertexId::from_index(v)) {
            added += 1;
        }
        attempts += 1;
        if attempts > max_attempts && added < m {
            // Fall back to dense enumeration for the remaining edges.
            'outer: for uu in 0..n {
                for vv in 0..n {
                    if uu != vv
                        && g.add_edge_unique(VertexId::from_index(uu), VertexId::from_index(vv))
                    {
                        added += 1;
                        if added == m {
                            break 'outer;
                        }
                    }
                }
            }
            break;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(50, 200, 3);
        assert_eq!(g.to_csr().num_edges(), 200);
    }

    #[test]
    fn dense_request_is_satisfied_via_fallback() {
        // 10 vertices -> 90 possible edges; ask for 85 (rejection alone would thrash).
        let g = erdos_renyi(10, 85, 4);
        assert_eq!(g.to_csr().num_edges(), 85);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn impossible_edge_count_panics() {
        erdos_renyi(3, 10, 0);
    }

    #[test]
    fn zero_edges_is_fine() {
        let g = erdos_renyi(5, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }
}
