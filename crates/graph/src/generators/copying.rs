//! Linear copying model for web-like graphs.
//!
//! The copying model (Kumar et al.) produces graphs with power-law in-degrees
//! and pronounced local density — new vertices copy a prototype's
//! out-neighbourhood with probability `1 - beta` and link uniformly at random
//! with probability `beta`. It is the stand-in for the paper's web crawls
//! (BerkStan, web-google, Baidu, DBpedia) which exhibit "extremely dense
//! subgraphs" (Section VII-B).

use super::rng_from_seed;
use crate::digraph::DiGraph;
use crate::ids::VertexId;
use rand::Rng;

/// Generates a directed graph with `n` vertices where each new vertex emits
/// `out_deg` edges, each copied from a random earlier prototype vertex with
/// probability `1 - beta` or chosen uniformly among earlier vertices with
/// probability `beta`.
///
/// `beta` close to 0 produces heavy copying (dense clusters around early
/// vertices); `beta` close to 1 degenerates to uniform attachment.
pub fn copying_model(n: usize, out_deg: usize, beta: f64, seed: u64) -> DiGraph {
    assert!((0.0..=1.0).contains(&beta), "beta must lie in [0, 1]");
    assert!(n >= 2, "copying model needs at least two vertices");
    let mut rng = rng_from_seed(seed);
    let mut g = DiGraph::new(n);
    // Seed clique among the first few vertices so early prototypes have edges.
    let seed_core = out_deg.clamp(2, n.min(out_deg + 2));
    for u in 0..seed_core {
        for v in 0..seed_core {
            if u != v {
                g.add_edge_unique(VertexId::from_index(u), VertexId::from_index(v));
            }
        }
    }
    for u in seed_core..n {
        let prototype = rng.gen_range(0..u);
        let proto_targets: Vec<VertexId> = g.successors(VertexId::from_index(prototype)).to_vec();
        for j in 0..out_deg {
            let copy = !proto_targets.is_empty() && rng.gen::<f64>() >= beta;
            let target = if copy {
                proto_targets[j % proto_targets.len()]
            } else {
                VertexId::from_index(rng.gen_range(0..u))
            };
            g.add_edge_unique(VertexId::from_index(u), target);
        }
        // Give earlier vertices occasional back-links so s-t paths exist in
        // both directions (real web graphs are not DAGs).
        if rng.gen::<f64>() < 0.3 {
            let back_src = rng.gen_range(0..u);
            g.add_edge_unique(VertexId::from_index(back_src), VertexId::from_index(u));
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_vertex_count() {
        let g = copying_model(100, 5, 0.2, 1);
        assert_eq!(g.num_vertices(), 100);
        assert!(g.num_edges() > 100);
    }

    #[test]
    fn copying_creates_popular_targets() {
        let g = copying_model(500, 6, 0.1, 2).to_csr();
        let rev = g.reverse();
        let max_in = rev.max_out_degree() as f64;
        let avg_in = rev.num_edges() as f64 / rev.num_vertices() as f64;
        assert!(max_in > 3.0 * avg_in, "max_in {max_in} avg_in {avg_in}");
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_out_of_range_panics() {
        copying_model(10, 2, 1.5, 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_graph_panics() {
        copying_model(1, 2, 0.5, 0);
    }
}
