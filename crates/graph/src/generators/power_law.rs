//! Power-law graphs via the directed Chung–Lu model.
//!
//! Real social / web graphs in the paper's Table II follow power-law degree
//! distributions; the Chung–Lu model reproduces a target power-law degree
//! sequence in expectation, which is what drives PEFP's behaviour (a few huge
//! "super nodes" that force Batch-DFS to split their neighbour ranges, and a
//! heavy skew in intermediate-path counts).

use super::rng_from_seed;
use crate::digraph::DiGraph;
use crate::ids::VertexId;
use rand::Rng;

/// Samples a power-law degree sequence with exponent `gamma`, scaled so the
/// mean is `avg_degree`.
///
/// Degrees are `w_i = c * (i + i0)^(-1/(gamma-1))` — the standard rank-based
/// construction — and then rescaled to hit the requested average exactly.
pub fn power_law_degrees(n: usize, avg_degree: f64, gamma: f64) -> Vec<f64> {
    assert!(n > 0, "degree sequence needs at least one vertex");
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    let alpha = 1.0 / (gamma - 1.0);
    let i0 = 1.0;
    let mut w: Vec<f64> = (0..n).map(|i| (i as f64 + i0).powf(-alpha)).collect();
    let sum: f64 = w.iter().sum();
    let scale = avg_degree * n as f64 / sum;
    for x in &mut w {
        *x *= scale;
        // Cap at n-1 so expected degree stays realisable in a simple graph.
        if *x > (n - 1) as f64 {
            *x = (n - 1) as f64;
        }
    }
    w
}

/// Generates a directed graph with a power-law degree distribution using the
/// Chung–Lu edge-probability model.
///
/// Each ordered pair `(u, v)` receives an edge with probability
/// `min(1, w_u * w_v / S)` where `S = Σ w`. The out- and in-weight sequences
/// use independently shuffled ranks so in- and out-degree are not perfectly
/// correlated (as in real web graphs).
///
/// For efficiency this uses the "expected adjacency skip" trick: for each `u`
/// we geometrically skip over the candidate targets, so generation is
/// `O(|V| + |E|)` instead of `O(|V|^2)`.
pub fn chung_lu(n: usize, avg_degree: f64, gamma: f64, seed: u64) -> DiGraph {
    let mut rng = rng_from_seed(seed);
    let w_out = power_law_degrees(n, avg_degree, gamma);
    let mut w_in = w_out.clone();
    // Decorrelate in/out weights by a deterministic shuffle.
    for i in (1..w_in.len()).rev() {
        let j = rng.gen_range(0..=i);
        w_in.swap(i, j);
    }
    let total: f64 = w_out.iter().sum();

    let mut g = DiGraph::new(n);
    // Sort target candidates by descending in-weight so the skip-sampling walk
    // visits high-probability targets first (classic Miller–Hagberg approach).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| w_in[b].partial_cmp(&w_in[a]).unwrap());

    for (u, &wu) in w_out.iter().enumerate() {
        if wu <= 0.0 {
            continue;
        }
        let mut idx = 0usize;
        // Probability used for the skip distribution: the max over remaining targets.
        while idx < n {
            let p_max = (wu * w_in[order[idx]] / total).min(1.0);
            if p_max <= 0.0 {
                break;
            }
            // Geometric skip: number of candidates to jump over.
            let r: f64 = rng.gen::<f64>();
            let skip =
                if p_max >= 1.0 { 0 } else { (r.ln() / (1.0 - p_max).ln()).floor() as usize };
            idx += skip;
            if idx >= n {
                break;
            }
            let v = order[idx];
            let p = (wu * w_in[v] / total).min(1.0);
            // Accept with probability p / p_max to correct for the bound.
            if rng.gen::<f64>() < p / p_max && u != v {
                g.add_edge_unique(VertexId::from_index(u), VertexId::from_index(v));
            }
            idx += 1;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_sequence_mean_matches_request() {
        let w = power_law_degrees(1000, 12.0, 2.2);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 12.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn degree_sequence_is_monotonically_decreasing() {
        let w = power_law_degrees(100, 5.0, 2.5);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }

    #[test]
    fn degrees_are_capped_below_n() {
        let w = power_law_degrees(10, 9.0, 1.5);
        for &x in &w {
            assert!(x <= 9.0);
        }
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn gamma_must_exceed_one() {
        power_law_degrees(10, 3.0, 1.0);
    }

    #[test]
    fn generated_graph_is_skewed() {
        let g = chung_lu(1000, 8.0, 2.1, 99).to_csr();
        let max = g.max_out_degree() as f64;
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        // A power-law graph has a hub far above the average degree.
        assert!(max > 4.0 * avg, "max {max} avg {avg}");
    }
}
