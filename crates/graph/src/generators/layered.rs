//! Layered DAG generator with a single source and sink.
//!
//! Layered DAGs have a *known closed-form* s-t path count
//! (`width^layers` when fully connected), which makes them the workhorse for
//! correctness tests: any enumeration algorithm must return exactly that many
//! paths, each of length `layers + 1`.

use super::rng_from_seed;
use crate::digraph::DiGraph;
use crate::ids::VertexId;
use rand::Rng;

/// Builds a DAG of `layers` layers each containing `width` vertices, plus a
/// dedicated source (id 0) and sink (last id). Each vertex connects to
/// `fanout` random vertices of the next layer (all of them if
/// `fanout >= width`); the source connects to every vertex of the first layer
/// and every vertex of the last layer connects to the sink.
pub fn layered_dag(layers: usize, width: usize, fanout: usize, seed: u64) -> DiGraph {
    assert!(layers > 0 && width > 0, "layers and width must be positive");
    let mut rng = rng_from_seed(seed);
    let n = layers * width + 2;
    let mut g = DiGraph::new(n);
    let source = VertexId(0);
    let sink = VertexId::from_index(n - 1);
    let layer_vertex = |layer: usize, slot: usize| VertexId::from_index(1 + layer * width + slot);

    for slot in 0..width {
        g.add_edge(source, layer_vertex(0, slot));
        g.add_edge(layer_vertex(layers - 1, slot), sink);
    }
    for layer in 0..layers.saturating_sub(1) {
        for slot in 0..width {
            if fanout >= width {
                for next in 0..width {
                    g.add_edge(layer_vertex(layer, slot), layer_vertex(layer + 1, next));
                }
            } else {
                let mut chosen = 0;
                while chosen < fanout {
                    let next = rng.gen_range(0..width);
                    if g.add_edge_unique(layer_vertex(layer, slot), layer_vertex(layer + 1, next)) {
                        chosen += 1;
                    }
                }
            }
        }
    }
    g
}

/// The source vertex id of a graph produced by [`layered_dag`].
pub fn layered_source() -> VertexId {
    VertexId(0)
}

/// The sink vertex id of a graph produced by [`layered_dag`] with the given
/// dimensions.
pub fn layered_sink(layers: usize, width: usize) -> VertexId {
    VertexId::from_index(layers * width + 1)
}

/// Exact number of source→sink paths in a *fully connected* layered DAG
/// (`fanout >= width`): `width^layers`. Every path has `layers + 1` hops.
pub fn layered_full_path_count(layers: usize, width: usize) -> u64 {
    (width as u64).pow(layers as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_degrees() {
        let g = layered_dag(3, 4, 4, 1);
        assert_eq!(g.num_vertices(), 14);
        assert_eq!(g.out_degree(layered_source()), 4);
        // Fully connected: inner vertices have out-degree `width`.
        assert_eq!(g.out_degree(VertexId(1)), 4);
        assert_eq!(g.out_degree(layered_sink(3, 4)), 0);
    }

    #[test]
    fn partial_fanout_respects_limit() {
        let g = layered_dag(4, 6, 2, 5);
        for layer in 0..3 {
            for slot in 0..6 {
                let v = VertexId::from_index(1 + layer * 6 + slot);
                assert_eq!(g.out_degree(v), 2);
            }
        }
    }

    #[test]
    fn full_path_count_formula() {
        assert_eq!(layered_full_path_count(3, 4), 64);
        assert_eq!(layered_full_path_count(1, 7), 7);
        assert_eq!(layered_full_path_count(5, 2), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_layers_panics() {
        layered_dag(0, 3, 2, 0);
    }
}
