//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on 12 real graphs downloaded from KONECT and SNAP.
//! Those archives are not available offline, so the reproduction substitutes
//! each dataset with a synthetic graph whose *relevant* statistics (size,
//! density, degree distribution, diameter class) match the published Table II
//! values at a reduced scale (see `DESIGN.md`, Section 2).
//!
//! All generators are driven by a caller-supplied seed through
//! [`rand_chacha::ChaCha8Rng`], so every graph in the repository is exactly
//! reproducible.

mod copying;
mod erdos_renyi;
mod grid;
mod layered;
mod power_law;
mod small_world;

pub use copying::copying_model;
pub use erdos_renyi::erdos_renyi;
pub use grid::{grid_corner_path_count, grid_graph};
pub use layered::{layered_dag, layered_full_path_count, layered_sink, layered_source};
pub use power_law::{chung_lu, power_law_degrees};
pub use small_world::small_world;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the RNG used by every generator from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn all_generators_are_deterministic() {
        let a = chung_lu(200, 6.0, 2.2, 1);
        let b = chung_lu(200, 6.0, 2.2, 1);
        assert_eq!(a.to_csr(), b.to_csr());

        let a = erdos_renyi(100, 400, 2);
        let b = erdos_renyi(100, 400, 2);
        assert_eq!(a.to_csr(), b.to_csr());

        let a = copying_model(150, 4, 0.3, 3);
        let b = copying_model(150, 4, 0.3, 3);
        assert_eq!(a.to_csr(), b.to_csr());

        let a = small_world(120, 4, 0.1, 4);
        let b = small_world(120, 4, 0.1, 4);
        assert_eq!(a.to_csr(), b.to_csr());
    }

    #[test]
    fn generators_produce_expected_sizes() {
        let g = erdos_renyi(100, 500, 7);
        assert_eq!(g.num_vertices(), 100);
        // Duplicates are rejected during generation, so the count is exact.
        assert_eq!(g.to_csr().num_edges(), 500);

        let g = grid_graph(6, 7);
        assert_eq!(g.num_vertices(), 42);

        let g = layered_dag(5, 8, 3, 11);
        assert_eq!(g.num_vertices(), 5 * 8 + 2);
    }

    #[test]
    fn no_generator_emits_self_loops() {
        for g in [
            chung_lu(300, 8.0, 2.1, 5),
            erdos_renyi(200, 900, 6),
            copying_model(250, 5, 0.25, 7),
            small_world(200, 6, 0.05, 8),
            grid_graph(10, 10),
            layered_dag(4, 10, 4, 9),
        ] {
            for e in g.edges() {
                assert_ne!(e.from, e.to, "self loop produced");
            }
        }
    }

    #[test]
    fn chung_lu_hits_target_average_degree_roughly() {
        let g = chung_lu(2000, 10.0, 2.3, 42);
        let stats = GraphStats::compute(&g.to_csr(), 0);
        // Chung-Lu matches the expected degree sequence in expectation; allow slack.
        assert!(stats.avg_degree > 5.0 && stats.avg_degree < 20.0, "avg {}", stats.avg_degree);
    }
}
