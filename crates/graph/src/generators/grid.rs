//! Directed grid graphs.
//!
//! Grids give a *high*-diameter, low-degree extreme (the "Amazon-like" regime
//! in the paper, where the result count barely grows with `k` and JOIN's
//! preprocessing dominates total time). They are also convenient for hand
//! verification: the number of monotone s-t paths in a grid is a binomial
//! coefficient.

use crate::digraph::DiGraph;
use crate::ids::VertexId;

/// Generates a `rows x cols` directed grid where each cell links to its right
/// and down neighbours. Vertex `(r, c)` has id `r * cols + c`.
pub fn grid_graph(rows: usize, cols: usize) -> DiGraph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut g = DiGraph::new(rows * cols);
    let id = |r: usize, c: usize| VertexId::from_index(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// Number of shortest (monotone) paths from the top-left to the bottom-right
/// corner of a `rows x cols` grid: `C(rows + cols - 2, rows - 1)`.
///
/// Every monotone path has exactly `rows + cols - 2` hops, so for
/// `k >= rows + cols - 2` this is the exact k-hop s-t simple path count
/// between the two corners (longer non-monotone paths do not exist because
/// all edges point right/down).
pub fn grid_corner_path_count(rows: usize, cols: usize) -> u64 {
    let n = (rows + cols - 2) as u64;
    let k = (rows - 1) as u64;
    let mut result = 1u64;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_edge_count() {
        // rows*(cols-1) horizontal + (rows-1)*cols vertical
        let g = grid_graph(3, 4);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
    }

    #[test]
    fn corner_path_counts_match_binomials() {
        assert_eq!(grid_corner_path_count(2, 2), 2);
        assert_eq!(grid_corner_path_count(3, 3), 6);
        assert_eq!(grid_corner_path_count(4, 4), 20);
        assert_eq!(grid_corner_path_count(1, 5), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        grid_graph(0, 3);
    }
}
