//! Watts–Strogatz style small-world directed graphs.
//!
//! Stand-in for low-diameter social graphs (twitter-social, WikiTalk in
//! Table II have D90 ≈ 4–5). Low diameter is exactly the regime where the
//! barrier check loses pruning power and PEFP's pipelined expansion shows the
//! largest speedup over JOIN (Section VII-B), so the generator's job is to
//! keep the 90-percentile effective diameter small.

use super::rng_from_seed;
use crate::digraph::DiGraph;
use crate::ids::VertexId;
use rand::Rng;

/// Generates a directed small-world graph: a ring lattice where every vertex
/// links to its next `k_half` neighbours in both directions, with each edge
/// rewired to a uniformly random target with probability `rewire_p`.
pub fn small_world(n: usize, k_half: usize, rewire_p: f64, seed: u64) -> DiGraph {
    assert!(n > 2 * k_half, "need n > 2 * k_half for a ring lattice");
    assert!((0.0..=1.0).contains(&rewire_p), "rewire probability must lie in [0, 1]");
    let mut rng = rng_from_seed(seed);
    let mut g = DiGraph::new(n);
    for u in 0..n {
        for d in 1..=k_half {
            for &v in &[(u + d) % n, (u + n - d) % n] {
                let target = if rng.gen::<f64>() < rewire_p {
                    let mut t = rng.gen_range(0..n);
                    while t == u {
                        t = rng.gen_range(0..n);
                    }
                    t
                } else {
                    v
                };
                g.add_edge_unique(VertexId::from_index(u), VertexId::from_index(target));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn lattice_without_rewiring_is_regular() {
        let g = small_world(20, 2, 0.0, 1);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4);
        }
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let ring = small_world(200, 2, 0.0, 2).to_csr();
        let sw = small_world(200, 2, 0.3, 2).to_csr();
        let d_ring = GraphStats::compute(&ring, 20).effective_diameter_90;
        let d_sw = GraphStats::compute(&sw, 20).effective_diameter_90;
        assert!(d_sw < d_ring, "rewired {d_sw} vs ring {d_ring}");
    }

    #[test]
    #[should_panic(expected = "ring lattice")]
    fn too_small_ring_panics() {
        small_world(4, 2, 0.0, 0);
    }
}
