//! Vertex labels and label constraints.
//!
//! The paper studies unlabelled graphs but points out (Section I) that label
//! constraints — e.g. "only consider users of a specific type" in a social
//! network — can be handled in the preprocessing stage by filtering out the
//! vertices and edges that do not satisfy the constraint. This module provides
//! the vertex labelling and the constraint predicate used by that extension
//! (`pefp_core::labeled`).

use crate::csr::CsrGraph;
use crate::ids::VertexId;
use serde::{Deserialize, Serialize};

/// A vertex label (application-defined small integer, e.g. a user type or a
/// substance category).
pub type Label = u16;

/// Dense label assignment for one graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexLabels {
    labels: Vec<Label>,
}

impl VertexLabels {
    /// Assigns `label` to every one of `n` vertices.
    pub fn uniform(n: usize, label: Label) -> Self {
        VertexLabels { labels: vec![label; n] }
    }

    /// Builds a labelling from an explicit vector (one entry per vertex).
    pub fn from_vec(labels: Vec<Label>) -> Self {
        VertexLabels { labels }
    }

    /// Assigns labels round-robin from `palette` (deterministic, handy for
    /// tests and synthetic workloads).
    pub fn cyclic(n: usize, palette: &[Label]) -> Self {
        assert!(!palette.is_empty(), "palette must contain at least one label");
        VertexLabels { labels: (0..n).map(|i| palette[i % palette.len()]).collect() }
    }

    /// Number of labelled vertices.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the labelling is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// Sets the label of vertex `v`.
    pub fn set(&mut self, v: VertexId, label: Label) {
        self.labels[v.index()] = label;
    }

    /// Checks that the labelling covers every vertex of `g`.
    pub fn covers(&self, g: &CsrGraph) -> bool {
        self.labels.len() == g.num_vertices()
    }
}

/// A label constraint on the *intermediate* vertices of a path (the endpoints
/// `s` and `t` are always admissible, matching the usual query semantics).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelConstraint {
    /// No constraint: every vertex is admissible.
    Any,
    /// Only vertices whose label is in the given set are admissible.
    OneOf(Vec<Label>),
    /// Vertices whose label is in the given set are *excluded*.
    NoneOf(Vec<Label>),
}

impl LabelConstraint {
    /// Whether a vertex with `label` may appear as an intermediate vertex.
    pub fn admits(&self, label: Label) -> bool {
        match self {
            LabelConstraint::Any => true,
            LabelConstraint::OneOf(set) => set.contains(&label),
            LabelConstraint::NoneOf(set) => !set.contains(&label),
        }
    }

    /// Whether the constraint admits every label (i.e. is trivially true).
    pub fn is_trivial(&self) -> bool {
        match self {
            LabelConstraint::Any => true,
            LabelConstraint::OneOf(_) => false,
            LabelConstraint::NoneOf(set) => set.is_empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_cyclic_labelling() {
        let u = VertexLabels::uniform(4, 7);
        assert_eq!(u.label(VertexId(3)), 7);
        assert_eq!(u.len(), 4);
        let c = VertexLabels::cyclic(5, &[1, 2]);
        assert_eq!(c.label(VertexId(0)), 1);
        assert_eq!(c.label(VertexId(1)), 2);
        assert_eq!(c.label(VertexId(4)), 1);
    }

    #[test]
    fn set_and_covers() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut l = VertexLabels::uniform(3, 0);
        l.set(VertexId(1), 9);
        assert_eq!(l.label(VertexId(1)), 9);
        assert!(l.covers(&g));
        assert!(!VertexLabels::uniform(2, 0).covers(&g));
    }

    #[test]
    fn constraints_admit_the_right_labels() {
        let one_of = LabelConstraint::OneOf(vec![1, 2]);
        assert!(one_of.admits(1));
        assert!(!one_of.admits(3));
        let none_of = LabelConstraint::NoneOf(vec![5]);
        assert!(none_of.admits(1));
        assert!(!none_of.admits(5));
        assert!(LabelConstraint::Any.admits(42));
    }

    #[test]
    fn triviality() {
        assert!(LabelConstraint::Any.is_trivial());
        assert!(LabelConstraint::NoneOf(vec![]).is_trivial());
        assert!(!LabelConstraint::NoneOf(vec![1]).is_trivial());
        assert!(!LabelConstraint::OneOf(vec![1]).is_trivial());
    }

    #[test]
    #[should_panic(expected = "palette")]
    fn empty_palette_is_rejected() {
        VertexLabels::cyclic(3, &[]);
    }
}
