//! Read-only graph abstraction shared by CSR graphs and snapshot overlays.
//!
//! The BFS and induced-subgraph machinery originally operated on [`CsrGraph`]
//! directly. The epoch-versioned snapshot layer ([`crate::delta`]) serves the
//! *same* traversals over a copy-on-write overlay — a base CSR plus a handful
//! of replaced adjacency rows — so the traversal primitives are generic over
//! this trait instead. Both representations hand out adjacency lists as
//! sorted, deduplicated slices, which is what keeps enumeration order (and
//! therefore result byte-identity) independent of the representation.

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// A read-only directed graph: a vertex count plus sorted successor slices.
///
/// Implementations must return successor lists sorted ascending by vertex id
/// and free of duplicates — the invariant [`CsrGraph`] already maintains —
/// because enumeration order, path canonicalisation and snapshot/rebuild
/// equivalence tests all depend on it.
pub trait GraphView {
    /// Number of vertices; valid ids are `0..num_vertices()`.
    fn num_vertices(&self) -> usize;

    /// Successors (out-neighbours) of `v`, sorted ascending and deduplicated.
    fn successors(&self, v: VertexId) -> &[VertexId];

    /// Out-degree of `v`.
    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        self.successors(v).len()
    }

    /// Whether the directed edge `from -> to` exists (binary search).
    #[inline]
    fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        self.successors(from).binary_search(&to).is_ok()
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn successors(&self, v: VertexId) -> &[VertexId] {
        CsrGraph::successors(self, v)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        CsrGraph::out_degree(self, v)
    }
}

impl<G: GraphView + ?Sized> GraphView for std::sync::Arc<G> {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn successors(&self, v: VertexId) -> &[VertexId] {
        (**self).successors(v)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        (**self).out_degree(v)
    }
}

impl<G: GraphView + ?Sized> GraphView for &G {
    #[inline]
    fn num_vertices(&self) -> usize {
        (**self).num_vertices()
    }

    #[inline]
    fn successors(&self, v: VertexId) -> &[VertexId] {
        (**self).successors(v)
    }

    #[inline]
    fn out_degree(&self, v: VertexId) -> usize {
        (**self).out_degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn takes_view<G: GraphView>(g: &G, v: VertexId) -> usize {
        g.successors(v).len() + g.num_vertices()
    }

    #[test]
    fn csr_and_arc_csr_both_implement_the_view() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2)]);
        assert_eq!(takes_view(&g, VertexId(0)), 5);
        let shared = std::sync::Arc::new(g);
        assert_eq!(takes_view(&shared, VertexId(0)), 5);
        assert!(GraphView::has_edge(&shared, VertexId(0), VertexId(2)));
        assert_eq!(GraphView::out_degree(&shared, VertexId(1)), 0);
    }
}
