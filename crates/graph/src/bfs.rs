//! Bounded (k-hop) breadth-first search primitives.
//!
//! Both the paper's preprocessing (Pre-BFS, Section V) and the JOIN baseline's
//! preprocessing are built from hop-bounded BFS distance computations; the
//! reproduction shares one implementation here.

use crate::csr::CsrGraph;
use crate::ids::VertexId;
use crate::view::GraphView;
use std::collections::VecDeque;

/// Distance value used for vertices not reached within the hop bound.
///
/// The paper sets unreached distances to `k + 1`; using `u32::MAX` instead
/// keeps the sentinel independent of `k` — callers clamp when they need the
/// paper's convention.
pub const UNREACHED: u32 = u32::MAX;

/// Runs a BFS from `source` that explores at most `max_hops` hops and returns
/// the distance array (`UNREACHED` for vertices not reached within the bound).
pub fn khop_bfs<G: GraphView + ?Sized>(g: &G, source: VertexId, max_hops: u32) -> Vec<u32> {
    khop_bfs_multi(g, std::slice::from_ref(&source), max_hops)
}

/// Multi-source variant of [`khop_bfs`]: every source starts at distance 0.
///
/// Kept as a direct dense implementation: callers that want a full distance
/// array (JOIN preprocessing, barrier construction over all of `G`) pay
/// O(|V|) for the output anyway, so the epoch-stamping of [`BfsScratch`]
/// would only add bookkeeping here.
pub fn khop_bfs_multi<G: GraphView + ?Sized>(
    g: &G,
    sources: &[VertexId],
    max_hops: u32,
) -> Vec<u32> {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] != 0 {
            dist[s.index()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= max_hops {
            continue;
        }
        for &v in g.successors(u) {
            if dist[v.index()] == UNREACHED {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Reusable hop-bounded BFS scratch space with epoch-stamped distances.
///
/// A fresh `khop_bfs` call pays O(|V|) to allocate and initialise its distance
/// array even when the hop bound confines the traversal to a handful of
/// vertices. `BfsScratch` amortises that cost across queries: the distance
/// array is allocated once and validated per run through a generation counter
/// (`mark[v] == epoch` means `dist[v]` belongs to the current run), so a new
/// run costs O(touched), not O(|V|). The scratch also records the exact set of
/// reached vertices, which is what the Pre-BFS vertex cut iterates instead of
/// scanning every vertex of the data graph.
#[derive(Debug, Default, Clone)]
pub struct BfsScratch {
    dist: Vec<u32>,
    mark: Vec<u32>,
    epoch: u32,
    touched: Vec<VertexId>,
    queue: VecDeque<VertexId>,
}

impl BfsScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Opens a new epoch sized for `n` vertices, invalidating all previous
    /// distances in O(1) (except on counter wrap-around or graph resize).
    fn begin(&mut self, n: usize) {
        if self.dist.len() != n {
            self.dist = vec![0; n];
            self.mark = vec![0; n];
            self.epoch = 0;
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                // Counter wrapped: every stale mark could alias the new epoch,
                // so pay one O(|V|) reset and restart the generation sequence.
                self.mark.fill(0);
                1
            }
        };
        self.touched.clear();
        self.queue.clear();
    }

    #[inline]
    fn visit(&mut self, v: VertexId, d: u32) {
        self.mark[v.index()] = self.epoch;
        self.dist[v.index()] = d;
        self.touched.push(v);
        self.queue.push_back(v);
    }

    /// Runs a hop-bounded BFS from `source`, replacing any previous run.
    pub fn run<G: GraphView + ?Sized>(&mut self, g: &G, source: VertexId, max_hops: u32) {
        self.run_multi(g, std::slice::from_ref(&source), max_hops);
    }

    /// Multi-source variant of [`BfsScratch::run`].
    pub fn run_multi<G: GraphView + ?Sized>(&mut self, g: &G, sources: &[VertexId], max_hops: u32) {
        self.begin(g.num_vertices());
        for &s in sources {
            if self.mark[s.index()] != self.epoch {
                self.visit(s, 0);
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if du >= max_hops {
                continue;
            }
            for &v in g.successors(u) {
                if self.mark[v.index()] != self.epoch {
                    self.visit(v, du + 1);
                }
            }
        }
    }

    /// Distance of `v` in the most recent run (`UNREACHED` if not reached).
    #[inline]
    pub fn dist(&self, v: VertexId) -> u32 {
        if self.mark.get(v.index()) == Some(&self.epoch) {
            self.dist[v.index()]
        } else {
            UNREACHED
        }
    }

    /// The vertices reached by the most recent run, in discovery order
    /// (sources first, then by increasing distance).
    pub fn touched(&self) -> &[VertexId] {
        &self.touched
    }

    /// Number of vertices reached by the most recent run.
    pub fn touched_len(&self) -> usize {
        self.touched.len()
    }

    /// Materialises the most recent run as a dense distance array (the
    /// [`khop_bfs`] output format).
    pub fn to_dense(&self, n: usize) -> Vec<u32> {
        let mut dense = vec![UNREACHED; n];
        for &v in &self.touched {
            dense[v.index()] = self.dist[v.index()];
        }
        dense
    }
}

/// Shortest distance from `source` to `target` with at most `max_hops` hops,
/// ignoring every vertex for which `blocked` returns `true` (except the
/// endpoints themselves).
///
/// This is `sd(v, v'|p)` from the paper's notation table and the primitive
/// behind the T-DFS baseline's aggressive verification.
pub fn constrained_distance<F>(
    g: &CsrGraph,
    source: VertexId,
    target: VertexId,
    max_hops: u32,
    mut blocked: F,
) -> Option<u32>
where
    F: FnMut(VertexId) -> bool,
{
    if source == target {
        return Some(0);
    }
    let n = g.num_vertices();
    let mut dist = vec![UNREACHED; n];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= max_hops {
            continue;
        }
        for &v in g.successors(u) {
            if dist[v.index()] != UNREACHED {
                continue;
            }
            if v == target {
                return Some(du + 1);
            }
            if blocked(v) {
                continue;
            }
            dist[v.index()] = du + 1;
            queue.push_back(v);
        }
    }
    None
}

/// Convenience: distances clamped to the paper's `k + 1` convention for
/// unreached vertices.
pub fn clamp_unreached(dist: &mut [u32], k: u32) {
    for d in dist {
        if *d == UNREACHED || *d > k {
            *d = k + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3 -> 4
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn bfs_distances_on_a_chain() {
        let g = chain();
        let d = khop_bfs(&g, VertexId(0), 10);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn hop_bound_stops_exploration() {
        let g = chain();
        let d = khop_bfs(&g, VertexId(0), 2);
        assert_eq!(d[0..3], [0, 1, 2]);
        assert_eq!(d[3], UNREACHED);
        assert_eq!(d[4], UNREACHED);
    }

    #[test]
    fn multi_source_takes_the_minimum() {
        let g = chain();
        let d = khop_bfs_multi(&g, &[VertexId(0), VertexId(3)], 10);
        assert_eq!(d, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn clamping_applies_the_paper_convention() {
        let g = chain();
        let mut d = khop_bfs(&g, VertexId(0), 2);
        clamp_unreached(&mut d, 2);
        assert_eq!(d, vec![0, 1, 2, 3, 3]);
    }

    #[test]
    fn constrained_distance_avoids_blocked_vertices() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 3
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let unconstrained = constrained_distance(&g, VertexId(0), VertexId(3), 5, |_| false);
        assert_eq!(unconstrained, Some(2));
        // Block vertex 1: the path through 2 still works.
        let avoid1 = constrained_distance(&g, VertexId(0), VertexId(3), 5, |v| v == VertexId(1));
        assert_eq!(avoid1, Some(2));
        // Block both middles: unreachable.
        let blocked = constrained_distance(&g, VertexId(0), VertexId(3), 5, |v| {
            v == VertexId(1) || v == VertexId(2)
        });
        assert_eq!(blocked, None);
    }

    #[test]
    fn constrained_distance_respects_the_hop_bound() {
        let g = chain();
        assert_eq!(constrained_distance(&g, VertexId(0), VertexId(4), 3, |_| false), None);
        assert_eq!(constrained_distance(&g, VertexId(0), VertexId(4), 4, |_| false), Some(4));
    }

    #[test]
    fn source_equals_target_is_distance_zero() {
        let g = chain();
        assert_eq!(constrained_distance(&g, VertexId(2), VertexId(2), 0, |_| false), Some(0));
    }

    #[test]
    fn reverse_bfs_gives_distance_to_target() {
        let g = chain();
        let rev = g.reverse();
        let d = khop_bfs(&rev, VertexId(4), 10);
        assert_eq!(d, vec![4, 3, 2, 1, 0]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_bfs() {
        let g = chain();
        let mut scratch = BfsScratch::new();
        // Deliberately dirty the scratch with a different run first.
        scratch.run(&g, VertexId(3), 10);
        assert_eq!(scratch.to_dense(5), vec![UNREACHED, UNREACHED, UNREACHED, 0, 1]);
        for (source, bound) in [(0u32, 2u32), (1, 10), (4, 3)] {
            scratch.run(&g, VertexId(source), bound);
            assert_eq!(scratch.to_dense(5), khop_bfs(&g, VertexId(source), bound));
        }
    }

    #[test]
    fn scratch_records_only_reached_vertices() {
        let g = chain();
        let mut scratch = BfsScratch::new();
        scratch.run(&g, VertexId(0), 2);
        assert_eq!(scratch.touched(), &[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(scratch.touched_len(), 3);
        assert_eq!(scratch.dist(VertexId(2)), 2);
        assert_eq!(scratch.dist(VertexId(3)), UNREACHED);
    }

    #[test]
    fn scratch_adapts_to_graphs_of_different_sizes() {
        let mut scratch = BfsScratch::new();
        assert_eq!(scratch.dist(VertexId(0)), UNREACHED);
        scratch.run(&chain(), VertexId(0), 10);
        assert_eq!(scratch.dist(VertexId(4)), 4);
        let small = CsrGraph::from_edges(2, &[(0, 1)]);
        scratch.run(&small, VertexId(1), 10);
        assert_eq!(scratch.dist(VertexId(1)), 0);
        assert_eq!(scratch.dist(VertexId(0)), UNREACHED);
        assert_eq!(scratch.dist(VertexId(4)), UNREACHED); // out of range, not stale
    }

    #[test]
    fn scratch_multi_source_matches_dense_multi_source() {
        let g = chain();
        let mut scratch = BfsScratch::new();
        scratch.run_multi(&g, &[VertexId(0), VertexId(3)], 10);
        assert_eq!(scratch.to_dense(5), khop_bfs_multi(&g, &[VertexId(0), VertexId(3)], 10));
    }
}
