//! Strongly-typed vertex identifiers.
//!
//! Vertex ids are `u32` throughout the system: the paper stores a path as a
//! fixed-width row of 32-bit vertex ids in BRAM, and the largest evaluated
//! graph (DBpedia, 18M vertices) fits comfortably in 32 bits. Using a newtype
//! keeps vertex ids from being mixed up with counts, offsets or hop budgets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex inside one graph.
///
/// The value is an index into the graph's vertex arrays, i.e. it is only
/// meaningful together with the graph it came from. Induced subgraphs remap
/// ids densely (see [`crate::induced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Sentinel used where "no vertex" must be representable in dense arrays
    /// (e.g. the predecessor array of a BFS before a vertex is discovered).
    pub const INVALID: VertexId = VertexId(u32::MAX);

    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a [`VertexId`] from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index < u32::MAX as usize, "vertex index {index} overflows u32");
        VertexId(index as u32)
    }

    /// Whether this id is the [`VertexId::INVALID`] sentinel.
    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

/// A directed edge `(from, to)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Source endpoint.
    pub from: VertexId,
    /// Destination endpoint.
    pub to: VertexId,
}

impl Edge {
    /// Creates an edge from `from` to `to`.
    #[inline]
    pub fn new(from: VertexId, to: VertexId) -> Self {
        Edge { from, to }
    }

    /// The same edge with endpoints swapped (for reverse graphs).
    #[inline]
    pub fn reversed(self) -> Self {
        Edge { from: self.to, to: self.from }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrips_through_index() {
        let v = VertexId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn invalid_sentinel_is_not_valid() {
        assert!(!VertexId::INVALID.is_valid());
        assert!(VertexId(0).is_valid());
        assert!(VertexId(u32::MAX - 1).is_valid());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(VertexId(7).to_string(), "v7");
    }

    #[test]
    fn edge_reversal_swaps_endpoints() {
        let e = Edge::new(VertexId(1), VertexId(2));
        let r = e.reversed();
        assert_eq!(r.from, VertexId(2));
        assert_eq!(r.to, VertexId(1));
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn ordering_is_lexicographic_on_the_raw_value() {
        let mut v = vec![VertexId(3), VertexId(1), VertexId(2)];
        v.sort();
        assert_eq!(v, vec![VertexId(1), VertexId(2), VertexId(3)]);
    }
}
