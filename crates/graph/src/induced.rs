//! Induced-subgraph extraction with vertex remapping.
//!
//! Theorem 1 of the paper: enumeration on `G` is equivalent to enumeration on
//! the subgraph induced by `{u | sd(s,u) + sd(u,t) <= k}`. Pre-BFS computes
//! that vertex set and this module extracts the induced subgraph, remapping
//! surviving vertices to a dense `0..n'` id space so that the device-side
//! arrays (CSR, barrier) stay small and contiguous.
//!
//! The mapping is stored sparsely: only the sorted `old_of_new` array (one
//! entry per *kept* vertex) is materialised, so an [`InducedSubgraph`] costs
//! O(|V'| + |E'|) memory rather than O(|V|). That matters for the host-side
//! `PreparedQuery` caches, which keep many induced subgraphs alive at once,
//! and it lets [`induce_subgraph_from_vertices`] build `G'` without ever
//! scanning the full vertex set of the data graph.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::ids::VertexId;
use crate::view::GraphView;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An induced subgraph together with the old↔new vertex id mappings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InducedSubgraph {
    /// The induced subgraph with densely remapped vertex ids, shared so that
    /// downstream holders (prepared queries, payload encoders) can keep it
    /// alive without cloning the CSR arrays.
    pub graph: Arc<CsrGraph>,
    /// `old_of_new[v_new]` is the original id of new vertex `v_new`. Sorted
    /// ascending, which is what makes the sparse old→new lookup possible.
    pub old_of_new: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Maps an original vertex id into the subgraph, if it survived.
    ///
    /// O(log |V'|) via binary search on the sorted kept list — the price of
    /// not materialising an O(|V|) lookup table per extraction.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> Option<VertexId> {
        self.old_of_new.binary_search(&old).ok().map(VertexId::from_index)
    }

    /// Maps a subgraph vertex id back to the original graph.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.old_of_new[new.index()]
    }

    /// Number of vertices kept.
    pub fn num_kept(&self) -> usize {
        self.old_of_new.len()
    }

    /// Translates a path over subgraph ids back into original ids.
    pub fn translate_path(&self, path: &[VertexId]) -> Vec<VertexId> {
        path.iter().map(|&v| self.to_old(v)).collect()
    }
}

/// Extracts the subgraph of `g` induced by the vertices for which `keep`
/// returns `true`.
///
/// An edge `(u, v)` survives iff both endpoints are kept, exactly matching the
/// induced-subgraph definition in Section III of the paper. This variant scans
/// every vertex of `g` to evaluate the predicate; callers that already know
/// the kept set (e.g. from a bounded BFS frontier) should use
/// [`induce_subgraph_from_vertices`] instead, which only touches that set.
pub fn induce_subgraph<F>(g: &CsrGraph, mut keep: F) -> InducedSubgraph
where
    F: FnMut(VertexId) -> bool,
{
    let kept: Vec<VertexId> = g.vertices().filter(|&v| keep(v)).collect();
    induce_subgraph_from_vertices(g, kept)
}

/// Reusable old→new id translation table with epoch-stamped validity, the
/// extraction-side companion of `bfs::BfsScratch`: the dense arrays are
/// allocated once and revalidated per extraction through a generation
/// counter, so repeated extractions cost O(kept + edges kept), never O(|V|),
/// while edge remapping stays an O(1) array lookup.
#[derive(Debug, Default, Clone)]
pub struct RemapScratch {
    new_id: Vec<u32>,
    mark: Vec<u32>,
    epoch: u32,
}

impl RemapScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        RemapScratch::default()
    }

    /// Opens a new epoch sized for `n` vertices, invalidating all previous
    /// entries in O(1) (except on counter wrap-around or graph resize).
    fn begin(&mut self, n: usize) {
        if self.new_id.len() != n {
            self.new_id = vec![0; n];
            self.mark = vec![0; n];
            self.epoch = 0;
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.fill(0);
                1
            }
        };
    }
}

/// Extracts the subgraph induced by an explicit vertex list, touching only
/// the listed vertices and their out-edges; the epoch-stamped `scratch`
/// supplies O(1) old→new lookups without a per-call O(|V|) table build.
///
/// `kept` may be unsorted and contain duplicates; it is sorted and
/// deduplicated in place and becomes the subgraph's `old_of_new` mapping.
///
/// # Panics
///
/// Panics if any listed vertex is out of range for `g`.
pub fn induce_subgraph_from_vertices_with<G: GraphView + ?Sized>(
    scratch: &mut RemapScratch,
    g: &G,
    mut kept: Vec<VertexId>,
) -> InducedSubgraph {
    kept.sort_unstable();
    kept.dedup();
    if let Some(&last) = kept.last() {
        assert!(last.index() < g.num_vertices(), "kept vertex {last} out of range");
    }

    scratch.begin(g.num_vertices());
    for (new_v, &old_v) in kept.iter().enumerate() {
        scratch.mark[old_v.index()] = scratch.epoch;
        scratch.new_id[old_v.index()] = new_v as u32;
    }

    let mut builder = CsrBuilder::new(kept.len());
    for (new_u, &old_u) in kept.iter().enumerate() {
        let new_u = VertexId::from_index(new_u);
        for &old_v in g.successors(old_u) {
            if scratch.mark[old_v.index()] == scratch.epoch {
                builder.add_edge(new_u, VertexId(scratch.new_id[old_v.index()]));
            }
        }
    }

    InducedSubgraph { graph: Arc::new(builder.build()), old_of_new: kept }
}

/// One-shot form of [`induce_subgraph_from_vertices_with`] with fresh scratch.
pub fn induce_subgraph_from_vertices(g: &CsrGraph, kept: Vec<VertexId>) -> InducedSubgraph {
    induce_subgraph_from_vertices_with(&mut RemapScratch::new(), g, kept)
}

/// Extracts the subgraph induced by an explicit vertex set given as a boolean
/// mask (`mask[v] == true` keeps `v`).
pub fn induce_from_mask(g: &CsrGraph, mask: &[bool]) -> InducedSubgraph {
    assert_eq!(mask.len(), g.num_vertices(), "mask length must equal |V|");
    induce_subgraph(g, |v| mask[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3, 0 -> 3, 1 -> 4 (4 is a dead end)
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 3), (1, 4)])
    }

    #[test]
    fn keeping_everything_is_identity_up_to_ids() {
        let g = sample();
        let ind = induce_subgraph(&g, |_| true);
        assert_eq!(ind.graph.num_vertices(), g.num_vertices());
        assert_eq!(ind.graph.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(ind.to_new(v), Some(v));
            assert_eq!(ind.to_old(v), v);
        }
    }

    #[test]
    fn removed_vertices_drop_their_edges() {
        let g = sample();
        let ind = induce_subgraph(&g, |v| v != VertexId(4));
        assert_eq!(ind.graph.num_vertices(), 4);
        assert_eq!(ind.graph.num_edges(), 4); // the edge 1->4 is gone
        assert_eq!(ind.to_new(VertexId(4)), None);
    }

    #[test]
    fn ids_are_remapped_densely() {
        let g = sample();
        let ind = induce_subgraph(&g, |v| v.0 % 2 == 0); // keep 0, 2, 4
        assert_eq!(ind.num_kept(), 3);
        assert_eq!(ind.to_old(VertexId(0)), VertexId(0));
        assert_eq!(ind.to_old(VertexId(1)), VertexId(2));
        assert_eq!(ind.to_old(VertexId(2)), VertexId(4));
        // only 2->3 and 0->1, 1->2 cross removed vertices; no kept-kept edges remain
        assert_eq!(ind.graph.num_edges(), 0);
    }

    #[test]
    fn translate_path_round_trips() {
        let g = sample();
        let ind = induce_subgraph(&g, |v| v != VertexId(4));
        let new_path: Vec<VertexId> =
            [0u32, 1, 2, 3].iter().map(|&v| ind.to_new(VertexId(v)).unwrap()).collect();
        let old = ind.translate_path(&new_path);
        assert_eq!(old, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn mask_variant_matches_closure_variant() {
        let g = sample();
        let mask = vec![true, true, false, true, false];
        let a = induce_from_mask(&g, &mask);
        let b = induce_subgraph(&g, |v| mask[v.index()]);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.old_of_new, b.old_of_new);
    }

    #[test]
    fn vertex_list_variant_matches_closure_variant() {
        let g = sample();
        // Unsorted, with a duplicate: the list variant must normalise it.
        let list = induce_subgraph_from_vertices(
            &g,
            vec![VertexId(3), VertexId(0), VertexId(1), VertexId(3)],
        );
        let closure = induce_subgraph(&g, |v| matches!(v.0, 0 | 1 | 3));
        assert_eq!(list.graph, closure.graph);
        assert_eq!(list.old_of_new, closure.old_of_new);
        assert_eq!(list.graph.num_edges(), 2); // 0->1, 0->3 survive; 1's edges go to dropped 2/4
    }

    #[test]
    fn dirty_remap_scratch_matches_fresh_extraction() {
        let g = sample();
        let mut scratch = RemapScratch::new();
        // Dirty the scratch with one extraction, then check three more.
        induce_subgraph_from_vertices_with(&mut scratch, &g, vec![VertexId(2), VertexId(4)]);
        for kept in [vec![0u32, 1, 3], vec![0, 1, 2, 3, 4], vec![4]] {
            let kept: Vec<VertexId> = kept.into_iter().map(VertexId).collect();
            let reused = induce_subgraph_from_vertices_with(&mut scratch, &g, kept.clone());
            let fresh = induce_subgraph_from_vertices(&g, kept);
            assert_eq!(reused.graph, fresh.graph);
            assert_eq!(reused.old_of_new, fresh.old_of_new);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vertex_list_out_of_range_is_rejected() {
        let g = sample();
        induce_subgraph_from_vertices(&g, vec![VertexId(0), VertexId(99)]);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn mask_length_is_checked() {
        let g = sample();
        induce_from_mask(&g, &[true, false]);
    }

    #[test]
    fn empty_selection_yields_empty_graph() {
        let g = sample();
        let ind = induce_subgraph(&g, |_| false);
        assert_eq!(ind.graph.num_vertices(), 0);
        assert_eq!(ind.graph.num_edges(), 0);
        assert_eq!(ind.num_kept(), 0);
    }
}
