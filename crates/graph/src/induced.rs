//! Induced-subgraph extraction with vertex remapping.
//!
//! Theorem 1 of the paper: enumeration on `G` is equivalent to enumeration on
//! the subgraph induced by `{u | sd(s,u) + sd(u,t) <= k}`. Pre-BFS computes
//! that vertex set and this module extracts the induced subgraph, remapping
//! surviving vertices to a dense `0..n'` id space so that the device-side
//! arrays (CSR, barrier) stay small and contiguous.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::ids::VertexId;
use serde::{Deserialize, Serialize};

/// An induced subgraph together with the old↔new vertex id mappings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InducedSubgraph {
    /// The induced subgraph with densely remapped vertex ids.
    pub graph: CsrGraph,
    /// `new_of_old[v_old]` is the new id of `v_old`, or [`VertexId::INVALID`]
    /// if `v_old` was removed.
    pub new_of_old: Vec<VertexId>,
    /// `old_of_new[v_new]` is the original id of new vertex `v_new`.
    pub old_of_new: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Maps an original vertex id into the subgraph, if it survived.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> Option<VertexId> {
        let mapped = *self.new_of_old.get(old.index())?;
        mapped.is_valid().then_some(mapped)
    }

    /// Maps a subgraph vertex id back to the original graph.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.old_of_new[new.index()]
    }

    /// Number of vertices kept.
    pub fn num_kept(&self) -> usize {
        self.old_of_new.len()
    }

    /// Translates a path over subgraph ids back into original ids.
    pub fn translate_path(&self, path: &[VertexId]) -> Vec<VertexId> {
        path.iter().map(|&v| self.to_old(v)).collect()
    }
}

/// Extracts the subgraph of `g` induced by the vertices for which `keep`
/// returns `true`.
///
/// An edge `(u, v)` survives iff both endpoints are kept, exactly matching the
/// induced-subgraph definition in Section III of the paper.
pub fn induce_subgraph<F>(g: &CsrGraph, mut keep: F) -> InducedSubgraph
where
    F: FnMut(VertexId) -> bool,
{
    let n = g.num_vertices();
    let mut new_of_old = vec![VertexId::INVALID; n];
    let mut old_of_new = Vec::new();
    for v in g.vertices() {
        if keep(v) {
            new_of_old[v.index()] = VertexId::from_index(old_of_new.len());
            old_of_new.push(v);
        }
    }

    let mut builder = CsrBuilder::new(old_of_new.len());
    for &old_u in &old_of_new {
        let new_u = new_of_old[old_u.index()];
        for &old_v in g.successors(old_u) {
            let new_v = new_of_old[old_v.index()];
            if new_v.is_valid() {
                builder.add_edge(new_u, new_v);
            }
        }
    }

    InducedSubgraph { graph: builder.build(), new_of_old, old_of_new }
}

/// Extracts the subgraph induced by an explicit vertex set given as a boolean
/// mask (`mask[v] == true` keeps `v`).
pub fn induce_from_mask(g: &CsrGraph, mask: &[bool]) -> InducedSubgraph {
    assert_eq!(mask.len(), g.num_vertices(), "mask length must equal |V|");
    induce_subgraph(g, |v| mask[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        // 0 -> 1 -> 2 -> 3, 0 -> 3, 1 -> 4 (4 is a dead end)
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (0, 3), (1, 4)])
    }

    #[test]
    fn keeping_everything_is_identity_up_to_ids() {
        let g = sample();
        let ind = induce_subgraph(&g, |_| true);
        assert_eq!(ind.graph.num_vertices(), g.num_vertices());
        assert_eq!(ind.graph.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(ind.to_new(v), Some(v));
            assert_eq!(ind.to_old(v), v);
        }
    }

    #[test]
    fn removed_vertices_drop_their_edges() {
        let g = sample();
        let ind = induce_subgraph(&g, |v| v != VertexId(4));
        assert_eq!(ind.graph.num_vertices(), 4);
        assert_eq!(ind.graph.num_edges(), 4); // the edge 1->4 is gone
        assert_eq!(ind.to_new(VertexId(4)), None);
    }

    #[test]
    fn ids_are_remapped_densely() {
        let g = sample();
        let ind = induce_subgraph(&g, |v| v.0 % 2 == 0); // keep 0, 2, 4
        assert_eq!(ind.num_kept(), 3);
        assert_eq!(ind.to_old(VertexId(0)), VertexId(0));
        assert_eq!(ind.to_old(VertexId(1)), VertexId(2));
        assert_eq!(ind.to_old(VertexId(2)), VertexId(4));
        // only 2->3 and 0->1, 1->2 cross removed vertices; no kept-kept edges remain
        assert_eq!(ind.graph.num_edges(), 0);
    }

    #[test]
    fn translate_path_round_trips() {
        let g = sample();
        let ind = induce_subgraph(&g, |v| v != VertexId(4));
        let new_path: Vec<VertexId> =
            [0u32, 1, 2, 3].iter().map(|&v| ind.to_new(VertexId(v)).unwrap()).collect();
        let old = ind.translate_path(&new_path);
        assert_eq!(old, vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn mask_variant_matches_closure_variant() {
        let g = sample();
        let mask = vec![true, true, false, true, false];
        let a = induce_from_mask(&g, &mask);
        let b = induce_subgraph(&g, |v| mask[v.index()]);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.old_of_new, b.old_of_new);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn mask_length_is_checked() {
        let g = sample();
        induce_from_mask(&g, &[true, false]);
    }

    #[test]
    fn empty_selection_yields_empty_graph() {
        let g = sample();
        let ind = induce_subgraph(&g, |_| false);
        assert_eq!(ind.graph.num_vertices(), 0);
        assert_eq!(ind.graph.num_edges(), 0);
        assert_eq!(ind.num_kept(), 0);
    }
}
