//! Deterministic sampling utilities used to build query workloads.
//!
//! The paper's evaluation (Section VII-A) generates 1,000 random `(s, t)`
//! query pairs per dataset such that `s` can reach `t` within `k` hops. The
//! workload crate builds on the primitives here: seeded vertex sampling,
//! hop-bounded reachable-pair sampling, and bounded random walks (used to
//! sample intermediate paths of a prescribed length for Table III).

use crate::csr::CsrGraph;
use crate::ids::VertexId;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the seeded RNG used by every sampler in this module.
pub fn sampler_rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Samples `count` vertices uniformly at random (with replacement) from the
/// non-isolated vertices of `g` — vertices with at least one outgoing edge.
/// Returns fewer than `count` only when the graph has no such vertex.
pub fn sample_source_vertices(g: &CsrGraph, count: usize, seed: u64) -> Vec<VertexId> {
    let candidates: Vec<VertexId> = g.vertices().filter(|&v| g.out_degree(v) > 0).collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut rng = sampler_rng(seed);
    (0..count).map(|_| candidates[rng.gen_range(0..candidates.len())]).collect()
}

/// Samples up to `count` pairs `(s, t)` such that `t` is reachable from `s`
/// in at most `k` hops and `s != t`.
///
/// The sampler draws a random source, runs a `k`-hop BFS and picks a random
/// reachable target, retrying up to `max_attempts` times overall; this is the
/// same procedure the paper uses to build its per-dataset query sets.
pub fn sample_reachable_pairs(
    g: &CsrGraph,
    k: u32,
    count: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices();
    if n < 2 {
        return Vec::new();
    }
    let sources: Vec<VertexId> = g.vertices().filter(|&v| g.out_degree(v) > 0).collect();
    if sources.is_empty() {
        return Vec::new();
    }
    let mut rng = sampler_rng(seed);
    let mut pairs = Vec::with_capacity(count);
    let max_attempts = count.saturating_mul(20).max(100);
    let mut dist = vec![u32::MAX; n];
    let mut reached: Vec<VertexId> = Vec::new();
    let mut queue = std::collections::VecDeque::new();

    for _ in 0..max_attempts {
        if pairs.len() >= count {
            break;
        }
        let s = sources[rng.gen_range(0..sources.len())];
        // Bounded BFS from s.
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        reached.clear();
        queue.clear();
        dist[s.index()] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if du >= k {
                continue;
            }
            for &v in g.successors(u) {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = du + 1;
                    reached.push(v);
                    queue.push_back(v);
                }
            }
        }
        if reached.is_empty() {
            continue;
        }
        let t = reached[rng.gen_range(0..reached.len())];
        if t != s {
            pairs.push((s, t));
        }
    }
    pairs
}

/// Performs one random walk of exactly `steps` edges starting at `start`,
/// restricted to *simple* continuations (no vertex repeated). Returns `None`
/// when the walk gets stuck before reaching the requested length.
pub fn simple_random_walk<R: Rng>(
    g: &CsrGraph,
    start: VertexId,
    steps: usize,
    rng: &mut R,
) -> Option<Vec<VertexId>> {
    let mut walk = vec![start];
    let mut current = start;
    for _ in 0..steps {
        let succ = g.successors(current);
        if succ.is_empty() {
            return None;
        }
        // Collect unvisited successors; a Vec is fine because paths are short
        // (bounded by the hop constraint, MAX 30 in pefp-core).
        let fresh: Vec<VertexId> = succ.iter().copied().filter(|v| !walk.contains(v)).collect();
        if fresh.is_empty() {
            return None;
        }
        current = *fresh.choose(rng).expect("non-empty");
        walk.push(current);
    }
    Some(walk)
}

/// Samples up to `count` simple paths of exactly `length` edges each, using
/// seeded restarts of [`simple_random_walk`]. Used to reproduce Table III
/// (one-hop expansion statistics for 1,000 paths of each length).
pub fn sample_simple_paths(
    g: &CsrGraph,
    length: usize,
    count: usize,
    seed: u64,
) -> Vec<Vec<VertexId>> {
    let sources: Vec<VertexId> = g.vertices().filter(|&v| g.out_degree(v) > 0).collect();
    if sources.is_empty() {
        return Vec::new();
    }
    let mut rng = sampler_rng(seed);
    let mut paths = Vec::with_capacity(count);
    let max_attempts = count.saturating_mul(50).max(200);
    for _ in 0..max_attempts {
        if paths.len() >= count {
            break;
        }
        let start = sources[rng.gen_range(0..sources.len())];
        if let Some(path) = simple_random_walk(g, start, length, &mut rng) {
            paths.push(path);
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::chung_lu;
    use crate::paths::is_simple;

    fn test_graph() -> CsrGraph {
        chung_lu(300, 6.0, 2.2, 42).to_csr()
    }

    #[test]
    fn source_sampling_is_deterministic_and_skips_sinks() {
        let g = test_graph();
        let a = sample_source_vertices(&g, 50, 7);
        let b = sample_source_vertices(&g, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|&v| g.out_degree(v) > 0));
        let c = sample_source_vertices(&g, 50, 8);
        assert_ne!(a, c, "different seeds should give different samples");
    }

    #[test]
    fn source_sampling_on_edgeless_graph_is_empty() {
        let g = CsrGraph::empty(10);
        assert!(sample_source_vertices(&g, 5, 1).is_empty());
    }

    #[test]
    fn reachable_pairs_really_are_reachable_within_k() {
        let g = test_graph();
        let k = 4;
        let pairs = sample_reachable_pairs(&g, k, 30, 11);
        assert!(!pairs.is_empty());
        for (s, t) in &pairs {
            assert_ne!(s, t);
            let dist = crate::bfs::khop_bfs(&g, *s, k);
            assert!(dist[t.index()] <= k, "target {t} not reachable from {s} within {k} hops");
        }
    }

    #[test]
    fn reachable_pairs_are_deterministic_per_seed() {
        let g = test_graph();
        let a = sample_reachable_pairs(&g, 3, 20, 5);
        let b = sample_reachable_pairs(&g, 3, 20, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn reachable_pairs_on_tiny_graphs_do_not_panic() {
        let g = CsrGraph::empty(1);
        assert!(sample_reachable_pairs(&g, 3, 10, 1).is_empty());
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let pairs = sample_reachable_pairs(&g, 3, 5, 1);
        assert!(pairs.iter().all(|&(s, t)| s == VertexId(0) && t == VertexId(1)));
    }

    #[test]
    fn random_walks_are_simple_and_have_requested_length() {
        let g = test_graph();
        let mut rng = sampler_rng(3);
        let mut found = 0;
        for _ in 0..200 {
            let start = VertexId(rng.gen_range(0..g.num_vertices() as u32));
            if let Some(walk) = simple_random_walk(&g, start, 3, &mut rng) {
                assert_eq!(walk.len(), 4);
                assert!(is_simple(&walk));
                for w in walk.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
                found += 1;
            }
        }
        assert!(found > 0, "expected at least one successful walk");
    }

    #[test]
    fn walk_fails_gracefully_at_dead_ends() {
        // 0 -> 1, nothing out of 1.
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let mut rng = sampler_rng(1);
        assert!(simple_random_walk(&g, VertexId(0), 2, &mut rng).is_none());
        assert!(simple_random_walk(&g, VertexId(1), 1, &mut rng).is_none());
        assert_eq!(
            simple_random_walk(&g, VertexId(0), 1, &mut rng),
            Some(vec![VertexId(0), VertexId(1)])
        );
    }

    #[test]
    fn sampled_simple_paths_have_exact_length() {
        let g = test_graph();
        let paths = sample_simple_paths(&g, 3, 25, 17);
        assert!(!paths.is_empty());
        for p in &paths {
            assert_eq!(p.len(), 4, "3 edges = 4 vertices");
            assert!(is_simple(p));
        }
        let again = sample_simple_paths(&g, 3, 25, 17);
        assert_eq!(paths, again);
    }
}
