//! Strongly connected components (Tarjan) and graph condensation.
//!
//! The fraud-detection application of the paper (Section I) looks for cycles
//! through a newly inserted edge `(t, s)`: every s-t k-path closes one cycle.
//! A cycle can only exist inside a strongly connected component, so SCC
//! analysis is a useful host-side sanity check and lets the streaming layer
//! skip enumeration entirely when `s` and `t` sit in different components.
//! The condensation (the DAG of components) is also used by the dataset
//! stand-in validation to compare the macro-structure of generated graphs.

use crate::csr::CsrGraph;
use crate::ids::VertexId;

/// The strongly connected components of a directed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccDecomposition {
    /// Component id of every vertex, in `0..num_components`.
    ///
    /// Components are numbered in *reverse topological order* of the
    /// condensation (a property of Tarjan's algorithm): if there is an edge
    /// from component `a` to component `b` with `a != b`, then `a > b`.
    pub component_of: Vec<u32>,
    /// Number of components found.
    pub num_components: usize,
}

impl SccDecomposition {
    /// The component id of vertex `v`.
    #[inline]
    pub fn component(&self, v: VertexId) -> u32 {
        self.component_of[v.index()]
    }

    /// Whether `a` and `b` belong to the same strongly connected component,
    /// i.e. whether there is a cycle through both.
    #[inline]
    pub fn same_component(&self, a: VertexId, b: VertexId) -> bool {
        self.component_of[a.index()] == self.component_of[b.index()]
    }

    /// Sizes of every component, indexed by component id.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components];
        for &c in &self.component_of {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest strongly connected component (0 for an empty graph).
    pub fn largest_component_size(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// Number of non-trivial components (size ≥ 2), i.e. components that can
    /// contain a cycle of distinct vertices.
    pub fn num_nontrivial_components(&self) -> usize {
        self.component_sizes().into_iter().filter(|&s| s >= 2).count()
    }

    /// The members of component `c`.
    pub fn members(&self, c: u32) -> Vec<VertexId> {
        self.component_of
            .iter()
            .enumerate()
            .filter(|(_, &cc)| cc == c)
            .map(|(i, _)| VertexId::from_index(i))
            .collect()
    }
}

/// Computes the strongly connected components of `g` using an iterative
/// Tarjan algorithm (no recursion, so deep graphs cannot overflow the stack).
pub fn strongly_connected_components(g: &CsrGraph) -> SccDecomposition {
    let n = g.num_vertices();
    const UNVISITED: u32 = u32::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component_of = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_components = 0usize;

    // Explicit DFS frame: (vertex, next successor offset to explore).
    let mut frames: Vec<(u32, u32)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let vi = v as usize;
            if *child == 0 {
                // First visit of v.
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let succs = g.successors(VertexId(v));
            let mut advanced = false;
            while (*child as usize) < succs.len() {
                let w = succs[*child as usize];
                *child += 1;
                let wi = w.index();
                if index[wi] == UNVISITED {
                    frames.push((w.0, 0));
                    advanced = true;
                    break;
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            }
            if advanced {
                continue;
            }
            // All successors of v explored.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                let pi = parent as usize;
                lowlink[pi] = lowlink[pi].min(lowlink[vi]);
            }
            if lowlink[vi] == index[vi] {
                // v is the root of a component.
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    component_of[w as usize] = num_components as u32;
                    if w == v {
                        break;
                    }
                }
                num_components += 1;
            }
        }
    }

    SccDecomposition { component_of, num_components }
}

/// The condensation of a graph: one vertex per strongly connected component,
/// one edge per pair of components connected by at least one original edge.
/// The result is always a DAG.
pub fn condensation(g: &CsrGraph, scc: &SccDecomposition) -> CsrGraph {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for e in g.edges() {
        let a = scc.component(e.from);
        let b = scc.component(e.to);
        if a != b {
            edges.push((a, b));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    CsrGraph::from_edges(scc.num_components, &edges)
}

/// Returns `true` iff a cycle through both `s` and `t` can exist in `g`,
/// i.e. `t` can reach `s` and `s` can reach `t`. Used by the streaming cycle
/// detector to skip hopeless enumerations cheaply.
pub fn cycle_possible(scc: &SccDecomposition, s: VertexId, t: VertexId) -> bool {
    scc.same_component(s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(v: u32) -> VertexId {
        VertexId(v)
    }

    #[test]
    fn single_cycle_is_one_component() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 1);
        assert!(scc.same_component(vid(0), vid(3)));
        assert_eq!(scc.largest_component_size(), 4);
    }

    #[test]
    fn dag_has_one_component_per_vertex() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 5);
        assert_eq!(scc.num_nontrivial_components(), 0);
        assert!(!scc.same_component(vid(0), vid(4)));
    }

    #[test]
    fn two_cycles_bridged_by_an_edge_are_two_components() {
        // 0<->1 and 2<->3, bridge 1->2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 2);
        assert!(scc.same_component(vid(0), vid(1)));
        assert!(scc.same_component(vid(2), vid(3)));
        assert!(!scc.same_component(vid(1), vid(2)));
        assert_eq!(scc.num_nontrivial_components(), 2);
    }

    #[test]
    fn component_numbering_is_reverse_topological() {
        // 0->1->2 chain of singleton components: edge (a,b) implies comp(a) > comp(b).
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let scc = strongly_connected_components(&g);
        for e in g.edges() {
            assert!(scc.component(e.from) > scc.component(e.to));
        }
    }

    #[test]
    fn condensation_is_acyclic_and_collapses_cycles() {
        // Cycle {0,1,2} -> cycle {3,4} -> vertex 5.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3), (4, 5)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 3);
        let dag = condensation(&g, &scc);
        assert_eq!(dag.num_vertices(), 3);
        assert_eq!(dag.num_edges(), 2);
        let dag_scc = strongly_connected_components(&dag);
        assert_eq!(dag_scc.num_components, dag.num_vertices());
    }

    #[test]
    fn condensation_deduplicates_parallel_component_edges() {
        // Two edges from component {0,1} to component {2,3} produce one DAG edge.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3)]);
        let scc = strongly_connected_components(&g);
        let dag = condensation(&g, &scc);
        assert_eq!(dag.num_edges(), 1);
    }

    #[test]
    fn cycle_possible_matches_component_membership() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]);
        let scc = strongly_connected_components(&g);
        assert!(cycle_possible(&scc, vid(0), vid(1)));
        assert!(!cycle_possible(&scc, vid(0), vid(3)));
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = CsrGraph::empty(0);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 0);
        assert_eq!(scc.largest_component_size(), 0);

        let g = CsrGraph::empty(1);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 1);
        assert_eq!(scc.largest_component_size(), 1);
    }

    #[test]
    fn self_loop_is_a_singleton_component() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, 2);
        assert_eq!(scc.largest_component_size(), 1);
    }

    #[test]
    fn members_returns_exactly_the_component() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)]);
        let scc = strongly_connected_components(&g);
        let c01 = scc.component(vid(0));
        let mut members = scc.members(c01);
        members.sort();
        assert_eq!(members, vec![vid(0), vid(1)]);
        let c234 = scc.component(vid(2));
        assert_eq!(scc.members(c234).len(), 3);
    }

    #[test]
    fn deep_path_does_not_overflow_the_stack() {
        // 50 000-vertex path: a recursive Tarjan would overflow here.
        let n = 50_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.num_components, n as usize);
    }
}
