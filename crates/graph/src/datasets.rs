//! Catalog of the paper's 12 evaluation datasets (Table II) and their
//! synthetic stand-ins.
//!
//! The original graphs come from KONECT and SNAP and range from 6.3 K to 18 M
//! vertices. They are not redistributable inside this repository, so each
//! dataset is represented by a [`DatasetSpec`] that records the *published*
//! Table II statistics and a deterministic generator recipe that reproduces
//! the topology class (degree skew, density, diameter regime) at a reduced,
//! laptop-friendly scale. `EXPERIMENTS.md` records the scale factors.
//!
//! If you have downloaded an original edge list you can still run every
//! experiment on it via [`crate::io::read_edge_list_file`]; the stand-ins are
//! only the default so the benchmark suite is self-contained.

use crate::digraph::DiGraph;
use crate::generators;
use crate::stats::GraphStats;
use serde::{Deserialize, Serialize};

/// The 12 datasets of Table II, identified by the paper's two-letter code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Reactome (RT) — dense biological network.
    Reactome,
    /// soc-Epinions1 (SE) — who-trusts-whom social network.
    SocEpinions,
    /// Slashdot0902 (SD) — Slashdot friend/foe network.
    Slashdot,
    /// Amazon (AM) — sparse, high-diameter co-purchase network.
    Amazon,
    /// twitter-social (TS) — sparse, very low diameter follower graph.
    TwitterSocial,
    /// Baidu (BD) — Chinese web/encyclopedia hyperlink graph with dense cores.
    Baidu,
    /// BerkStan (BS) — berkeley.edu/stanford.edu web crawl, huge diameter.
    BerkStan,
    /// web-google (WG) — Google programming-contest web graph.
    WebGoogle,
    /// Skitter (SK) — internet (autonomous system) topology.
    Skitter,
    /// WikiTalk (WT) — Wikipedia user-talk graph, very sparse and shallow.
    WikiTalk,
    /// LiveJournal (LJ) — dense blogging social network.
    LiveJournal,
    /// DBpedia (DP) — knowledge-graph hyperlinks, the largest dataset.
    DBpedia,
}

/// How much of the original dataset scale the synthetic stand-in uses.
///
/// The three profiles trade fidelity for runtime; all experiments default to
/// [`ScaleProfile::Small`], the integration tests use [`ScaleProfile::Tiny`],
/// and [`ScaleProfile::Medium`] is for overnight runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScaleProfile {
    /// A few hundred vertices — for unit/integration tests.
    Tiny,
    /// A few thousand vertices — default for figure regeneration.
    Small,
    /// Tens of thousands of vertices — closer to the paper's smallest graphs.
    Medium,
}

impl ScaleProfile {
    fn vertex_budget(self, base: usize) -> usize {
        match self {
            ScaleProfile::Tiny => (base / 8).max(120),
            ScaleProfile::Small => base,
            ScaleProfile::Medium => base * 8,
        }
    }
}

/// Topology class used to pick the generator for a stand-in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TopologyClass {
    /// Power-law social/internet graph (Chung–Lu generator).
    PowerLaw {
        /// Power-law exponent of the degree distribution.
        gamma: f64,
    },
    /// Web graph with copying-induced dense clusters (copying model).
    Web {
        /// Probability of uniform (non-copied) attachment.
        beta: f64,
    },
    /// Low-diameter small-world graph (Watts–Strogatz).
    SmallWorld {
        /// Rewiring probability.
        rewire: f64,
    },
    /// High-diameter, low-degree lattice-like graph.
    HighDiameter,
}

/// Published statistics of one Table II row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperStats {
    /// Number of vertices in the original dataset.
    pub num_vertices: usize,
    /// Number of edges in the original dataset.
    pub num_edges: usize,
    /// Average degree as reported in the paper.
    pub avg_degree: f64,
    /// Diameter as reported in the paper.
    pub diameter: usize,
    /// 90-percentile effective diameter as reported in the paper.
    pub effective_diameter_90: f64,
}

/// Full specification of a dataset: paper statistics + stand-in recipe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which Table II dataset this is.
    pub dataset: Dataset,
    /// Two-letter code used in the paper's figures (e.g. "AM").
    pub code: &'static str,
    /// Human-readable name as used in Table II.
    pub name: &'static str,
    /// Statistics of the original graph as published.
    pub paper: PaperStats,
    /// Topology class controlling which generator is used.
    pub topology: TopologyClass,
    /// Vertex count of the stand-in at [`ScaleProfile::Small`].
    pub base_vertices: usize,
    /// Target average degree of the stand-in (kept close to the original
    /// unless that would make the scaled graph unrealistically dense).
    pub target_avg_degree: f64,
    /// Hop constraints evaluated for this dataset in Fig. 8 (inclusive range).
    pub k_range: (u32, u32),
    /// RNG seed for the stand-in generator.
    pub seed: u64,
}

impl Dataset {
    /// All 12 datasets in Table II order.
    pub fn all() -> [Dataset; 12] {
        [
            Dataset::Reactome,
            Dataset::SocEpinions,
            Dataset::Slashdot,
            Dataset::Amazon,
            Dataset::TwitterSocial,
            Dataset::Baidu,
            Dataset::BerkStan,
            Dataset::WebGoogle,
            Dataset::Skitter,
            Dataset::WikiTalk,
            Dataset::LiveJournal,
            Dataset::DBpedia,
        ]
    }

    /// The paper's two-letter code for this dataset.
    pub fn code(self) -> &'static str {
        self.spec().code
    }

    /// Looks a dataset up by its two-letter code (case-insensitive).
    pub fn from_code(code: &str) -> Option<Dataset> {
        Dataset::all().into_iter().find(|d| d.code().eq_ignore_ascii_case(code))
    }

    /// Returns the full specification for this dataset.
    pub fn spec(self) -> DatasetSpec {
        match self {
            Dataset::Reactome => DatasetSpec {
                dataset: self,
                code: "RT",
                name: "Reactome",
                paper: PaperStats {
                    num_vertices: 6_300,
                    num_edges: 147_000,
                    avg_degree: 46.64,
                    diameter: 24,
                    effective_diameter_90: 5.39,
                },
                topology: TopologyClass::PowerLaw { gamma: 2.1 },
                base_vertices: 600,
                target_avg_degree: 24.0,
                k_range: (5, 8),
                seed: seeds::RT,
            },
            Dataset::SocEpinions => DatasetSpec {
                dataset: self,
                code: "SE",
                name: "soc-Epinions1",
                paper: PaperStats {
                    num_vertices: 75_000,
                    num_edges: 508_000,
                    avg_degree: 13.42,
                    diameter: 14,
                    effective_diameter_90: 5.0,
                },
                topology: TopologyClass::PowerLaw { gamma: 2.2 },
                base_vertices: 2_500,
                target_avg_degree: 10.0,
                k_range: (3, 6),
                seed: seeds::SE,
            },
            Dataset::Slashdot => DatasetSpec {
                dataset: self,
                code: "SD",
                name: "Slashdot0902",
                paper: PaperStats {
                    num_vertices: 82_000,
                    num_edges: 948_000,
                    avg_degree: 23.08,
                    diameter: 12,
                    effective_diameter_90: 4.7,
                },
                topology: TopologyClass::PowerLaw { gamma: 2.1 },
                base_vertices: 2_200,
                target_avg_degree: 14.0,
                k_range: (3, 6),
                seed: seeds::SD,
            },
            Dataset::Amazon => DatasetSpec {
                dataset: self,
                code: "AM",
                name: "Amazon",
                paper: PaperStats {
                    num_vertices: 334_000,
                    num_edges: 925_000,
                    avg_degree: 6.76,
                    diameter: 44,
                    effective_diameter_90: 15.0,
                },
                topology: TopologyClass::HighDiameter,
                base_vertices: 4_000,
                target_avg_degree: 5.0,
                k_range: (8, 13),
                seed: seeds::AM,
            },
            Dataset::TwitterSocial => DatasetSpec {
                dataset: self,
                code: "TS",
                name: "twitter-social",
                paper: PaperStats {
                    num_vertices: 465_000,
                    num_edges: 834_000,
                    avg_degree: 3.86,
                    diameter: 8,
                    effective_diameter_90: 4.96,
                },
                topology: TopologyClass::SmallWorld { rewire: 0.6 },
                base_vertices: 4_000,
                target_avg_degree: 4.0,
                k_range: (5, 8),
                seed: seeds::TS,
            },
            Dataset::Baidu => DatasetSpec {
                dataset: self,
                code: "BD",
                name: "Baidu",
                paper: PaperStats {
                    num_vertices: 425_000,
                    num_edges: 3_000_000,
                    avg_degree: 15.8,
                    diameter: 32,
                    effective_diameter_90: 8.54,
                },
                topology: TopologyClass::Web { beta: 0.15 },
                base_vertices: 3_000,
                target_avg_degree: 12.0,
                k_range: (3, 7),
                seed: seeds::BD,
            },
            Dataset::BerkStan => DatasetSpec {
                dataset: self,
                code: "BS",
                name: "BerkStan",
                paper: PaperStats {
                    num_vertices: 685_000,
                    num_edges: 7_000_000,
                    avg_degree: 22.18,
                    diameter: 208,
                    effective_diameter_90: 9.79,
                },
                topology: TopologyClass::Web { beta: 0.1 },
                base_vertices: 3_500,
                target_avg_degree: 14.0,
                k_range: (5, 8),
                seed: seeds::BS,
            },
            Dataset::WebGoogle => DatasetSpec {
                dataset: self,
                code: "WG",
                name: "web-google",
                paper: PaperStats {
                    num_vertices: 875_000,
                    num_edges: 5_000_000,
                    avg_degree: 11.6,
                    diameter: 24,
                    effective_diameter_90: 7.95,
                },
                topology: TopologyClass::Web { beta: 0.25 },
                base_vertices: 4_000,
                target_avg_degree: 9.0,
                k_range: (4, 8),
                seed: seeds::WG,
            },
            Dataset::Skitter => DatasetSpec {
                dataset: self,
                code: "SK",
                name: "Skitter",
                paper: PaperStats {
                    num_vertices: 1_600_000,
                    num_edges: 11_000_000,
                    avg_degree: 13.08,
                    diameter: 31,
                    effective_diameter_90: 5.85,
                },
                topology: TopologyClass::PowerLaw { gamma: 2.25 },
                base_vertices: 5_000,
                target_avg_degree: 9.0,
                k_range: (5, 9),
                seed: seeds::SK,
            },
            Dataset::WikiTalk => DatasetSpec {
                dataset: self,
                code: "WT",
                name: "WikiTalk",
                paper: PaperStats {
                    num_vertices: 2_000_000,
                    num_edges: 5_000_000,
                    avg_degree: 4.2,
                    diameter: 9,
                    effective_diameter_90: 4.0,
                },
                topology: TopologyClass::PowerLaw { gamma: 2.0 },
                base_vertices: 5_000,
                target_avg_degree: 4.0,
                k_range: (3, 6),
                seed: seeds::WT,
            },
            Dataset::LiveJournal => DatasetSpec {
                dataset: self,
                code: "LJ",
                name: "LiveJournal",
                paper: PaperStats {
                    num_vertices: 4_000_000,
                    num_edges: 68_000_000,
                    avg_degree: 28.4,
                    diameter: 16,
                    effective_diameter_90: 6.5,
                },
                topology: TopologyClass::PowerLaw { gamma: 2.3 },
                base_vertices: 6_000,
                target_avg_degree: 14.0,
                k_range: (3, 6),
                seed: seeds::LJ,
            },
            Dataset::DBpedia => DatasetSpec {
                dataset: self,
                code: "DP",
                name: "DBpedia",
                paper: PaperStats {
                    num_vertices: 18_000_000,
                    num_edges: 172_000_000,
                    avg_degree: 18.85,
                    diameter: 12,
                    effective_diameter_90: 4.98,
                },
                topology: TopologyClass::Web { beta: 0.3 },
                base_vertices: 7_000,
                target_avg_degree: 10.0,
                k_range: (3, 6),
                seed: seeds::DP,
            },
        }
    }

    /// Generates the synthetic stand-in graph for this dataset at `profile`.
    pub fn generate(self, profile: ScaleProfile) -> DiGraph {
        self.spec().generate(profile)
    }
}

impl DatasetSpec {
    /// Number of vertices the stand-in uses at `profile`.
    pub fn vertices_at(&self, profile: ScaleProfile) -> usize {
        profile.vertex_budget(self.base_vertices)
    }

    /// Generates the stand-in graph at the requested scale.
    pub fn generate(&self, profile: ScaleProfile) -> DiGraph {
        let n = self.vertices_at(profile);
        let d = self.target_avg_degree;
        let mut g = match self.topology {
            TopologyClass::PowerLaw { gamma } => generators::chung_lu(n, d, gamma, self.seed),
            TopologyClass::Web { beta } => {
                generators::copying_model(n, d.round().max(2.0) as usize, beta, self.seed)
            }
            TopologyClass::SmallWorld { rewire } => {
                let k_half = ((d / 2.0).round() as usize).max(1);
                generators::small_world(n, k_half, rewire, self.seed)
            }
            TopologyClass::HighDiameter => {
                // Ring lattice with almost no rewiring: low degree, long shortest paths.
                let k_half = ((d / 2.0).round() as usize).max(1);
                generators::small_world(n, k_half, 0.02, self.seed)
            }
        };
        g.dedup_edges();
        g
    }

    /// Computes the measured statistics of the stand-in (for the Table II
    /// reproduction) using `samples` BFS sources.
    pub fn measured_stats(&self, profile: ScaleProfile, samples: usize) -> GraphStats {
        GraphStats::compute(&self.generate(profile).to_csr(), samples)
    }
}

// Seeds spelled as the ASCII codes of the dataset abbreviations so each
// dataset gets a distinct, stable random stream.
mod seeds {
    pub const RT: u64 = 0x5254;
    pub const SE: u64 = 0x5345;
    pub const SD: u64 = 0x5344;
    pub const AM: u64 = 0x414d;
    pub const TS: u64 = 0x5453;
    pub const BD: u64 = 0x4244;
    pub const BS: u64 = 0x4253;
    pub const WG: u64 = 0x5747;
    pub const SK: u64 = 0x534b;
    pub const WT: u64 = 0x5754;
    pub const LJ: u64 = 0x4c4a;
    pub const DP: u64 = 0x4450;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_twelve_unique_datasets() {
        let all = Dataset::all();
        assert_eq!(all.len(), 12);
        let codes: std::collections::HashSet<_> = all.iter().map(|d| d.code()).collect();
        assert_eq!(codes.len(), 12);
    }

    #[test]
    fn codes_round_trip() {
        for d in Dataset::all() {
            assert_eq!(Dataset::from_code(d.code()), Some(d));
            assert_eq!(Dataset::from_code(&d.code().to_lowercase()), Some(d));
        }
        assert_eq!(Dataset::from_code("XX"), None);
    }

    #[test]
    fn tiny_standins_generate_quickly_and_nonempty() {
        for d in Dataset::all() {
            let g = d.generate(ScaleProfile::Tiny);
            assert!(g.num_vertices() >= 100, "{}: too few vertices", d.code());
            assert!(g.num_edges() > g.num_vertices() / 2, "{}: too few edges", d.code());
        }
    }

    #[test]
    fn scale_profiles_are_ordered() {
        let spec = Dataset::Skitter.spec();
        assert!(spec.vertices_at(ScaleProfile::Tiny) < spec.vertices_at(ScaleProfile::Small));
        assert!(spec.vertices_at(ScaleProfile::Small) < spec.vertices_at(ScaleProfile::Medium));
    }

    #[test]
    fn amazon_standin_has_higher_diameter_than_twitter_standin() {
        let am = Dataset::Amazon.spec().measured_stats(ScaleProfile::Tiny, 12);
        let ts = Dataset::TwitterSocial.spec().measured_stats(ScaleProfile::Tiny, 12);
        assert!(
            am.effective_diameter_90 > ts.effective_diameter_90,
            "AM D90 {} should exceed TS D90 {}",
            am.effective_diameter_90,
            ts.effective_diameter_90
        );
    }

    #[test]
    fn k_ranges_match_the_paper_figures() {
        assert_eq!(Dataset::Amazon.spec().k_range, (8, 13));
        assert_eq!(Dataset::WikiTalk.spec().k_range, (3, 6));
        assert_eq!(Dataset::Skitter.spec().k_range, (5, 9));
        assert_eq!(Dataset::TwitterSocial.spec().k_range, (5, 8));
    }

    #[test]
    fn generation_is_deterministic_per_dataset() {
        let a = Dataset::Baidu.generate(ScaleProfile::Tiny).to_csr();
        let b = Dataset::Baidu.generate(ScaleProfile::Tiny).to_csr();
        assert_eq!(a, b);
    }
}
