//! Epoch-versioned graph snapshots with copy-on-write delta overlays.
//!
//! The paper's §I motivation — fraud-cycle detection over a sliding
//! transaction window — needs enumeration over a graph that *changes*: new
//! transactions insert edges and window expiry removes them. CSR itself is
//! immutable by design (that is what ships to device DRAM), so this module
//! layers mutability on top without giving up the immutable shares:
//!
//! * [`GraphDelta`] — one batch of edge inserts and removals.
//! * [`GraphSnapshot`] — an immutable view of the graph at one **epoch**: a
//!   shared base CSR (both directions) plus per-vertex *replacement* adjacency
//!   rows for the vertices the deltas since the base touched. Snapshots are
//!   handed out behind `Arc`s, so in-flight queries keep a consistent view of
//!   their admission epoch while later updates land.
//! * [`VersionedGraph`] — the mutable head: applying a delta produces the next
//!   epoch's snapshot by copying only the affected rows (everything else is
//!   shared), and once the overlay grows past a threshold the snapshot is
//!   compacted into a fresh base CSR.
//!
//! Replacement rows are kept sorted and deduplicated — the same invariant
//! [`CsrGraph`] maintains — so a traversal over a snapshot visits successors
//! in exactly the order it would over a from-scratch CSR rebuild of the same
//! edge set. That equivalence is what the differential test suite pins down.

use crate::csr::{CsrBuilder, CsrGraph};
use crate::ids::VertexId;
use crate::view::GraphView;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Monotone version counter for [`GraphSnapshot`]s. Epoch 0 is the graph as
/// loaded; every applied [`GraphDelta`] advances it by one.
pub type Epoch = u64;

/// Number of overlay rows a snapshot may accumulate before
/// [`VersionedGraph::apply`] compacts it into a fresh base CSR.
pub const DEFAULT_COMPACT_OVERLAY_ROWS: usize = 1024;

/// One batch of graph mutations: edge inserts (new transactions) and edge
/// removals (window expiry).
///
/// Within one batch, removals apply before inserts, so a batch that removes
/// and re-inserts the same edge leaves it present. Inserting an edge that
/// already exists and removing one that does not are both no-ops — adjacency
/// stays a *set*, exactly as [`CsrGraph`] deduplicates at build time.
#[derive(Debug, Clone, Default)]
pub struct GraphDelta {
    inserts: Vec<(VertexId, VertexId)>,
    removals: Vec<(VertexId, VertexId)>,
}

impl GraphDelta {
    /// An empty batch.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Queues the directed edge `from -> to` for insertion. Endpoints beyond
    /// the current vertex count grow the graph.
    pub fn insert_edge(&mut self, from: VertexId, to: VertexId) -> &mut Self {
        self.inserts.push((from, to));
        self
    }

    /// Queues the directed edge `from -> to` for removal.
    pub fn remove_edge(&mut self, from: VertexId, to: VertexId) -> &mut Self {
        self.removals.push((from, to));
        self
    }

    /// The queued insertions, in queue order.
    pub fn inserts(&self) -> &[(VertexId, VertexId)] {
        &self.inserts
    }

    /// The queued removals, in queue order.
    pub fn removals(&self) -> &[(VertexId, VertexId)] {
        &self.removals
    }

    /// Whether the batch queues no mutation at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.removals.is_empty()
    }

    /// Total number of queued operations (inserts + removals).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.removals.len()
    }

    /// Every vertex incident to a queued mutation, sorted ascending and
    /// deduplicated — the key the host runtime uses for touched-vertex cache
    /// invalidation.
    pub fn touched_vertices(&self) -> Vec<VertexId> {
        let mut touched = Vec::with_capacity(2 * self.len());
        for &(u, v) in self.inserts.iter().chain(self.removals.iter()) {
            touched.push(u);
            touched.push(v);
        }
        touched.sort_unstable();
        touched.dedup();
        touched
    }
}

/// Shared replacement adjacency rows: vertex id → full successor list at this
/// epoch. Rows are `Arc`-shared between consecutive snapshots, so applying a
/// delta copies only the rows it rewrites.
type OverlayRows = HashMap<u32, Arc<Vec<VertexId>>>;

/// An immutable view of the graph at one epoch.
///
/// Traversals run through [`GraphSnapshot::forward`] / [`GraphSnapshot::reverse`],
/// which implement [`GraphView`]; [`GraphSnapshot::full_csr`] materialises (and
/// caches) a plain CSR when a caller genuinely needs the whole graph in one
/// array (the no-Pre-BFS ablation, device payload of a trivial query).
#[derive(Debug)]
pub struct GraphSnapshot {
    epoch: Epoch,
    num_vertices: usize,
    num_edges: usize,
    base: Arc<CsrGraph>,
    base_reverse: Arc<CsrGraph>,
    forward_rows: OverlayRows,
    reverse_rows: OverlayRows,
    compacted: OnceLock<(Arc<CsrGraph>, Arc<CsrGraph>)>,
}

impl GraphSnapshot {
    /// Epoch-0 snapshot over an already-built CSR pair.
    pub fn initial(base: Arc<CsrGraph>, reverse: Arc<CsrGraph>) -> Self {
        debug_assert_eq!(base.num_vertices(), reverse.num_vertices());
        GraphSnapshot {
            epoch: 0,
            num_vertices: base.num_vertices(),
            num_edges: base.num_edges(),
            base,
            base_reverse: reverse,
            forward_rows: OverlayRows::new(),
            reverse_rows: OverlayRows::new(),
            compacted: OnceLock::new(),
        }
    }

    /// This snapshot's epoch.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Number of vertices at this epoch (inserts may have grown it past the
    /// base CSR's count).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges at this epoch.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of replacement adjacency rows carried over the base (forward
    /// direction; the reverse overlay has the mirrored rows).
    pub fn overlay_rows(&self) -> usize {
        self.forward_rows.len()
    }

    /// Whether this snapshot *is* its base CSR — no overlay rows and no
    /// vertex growth — so base-keyed caches (e.g. a prebuilt reverse CSR)
    /// still apply.
    pub fn is_compact(&self) -> bool {
        self.forward_rows.is_empty()
            && self.reverse_rows.is_empty()
            && self.num_vertices == self.base.num_vertices()
    }

    /// The shared base CSR this snapshot overlays.
    pub fn base(&self) -> &Arc<CsrGraph> {
        &self.base
    }

    /// The shared reverse of the base CSR.
    pub fn base_reverse(&self) -> &Arc<CsrGraph> {
        &self.base_reverse
    }

    /// Forward-direction [`GraphView`] (successors).
    pub fn forward(&self) -> SnapshotView<'_> {
        SnapshotView { n: self.num_vertices, base: &self.base, rows: &self.forward_rows }
    }

    /// Reverse-direction [`GraphView`] (predecessors, i.e. the successors of
    /// the reversed graph).
    pub fn reverse(&self) -> SnapshotView<'_> {
        SnapshotView { n: self.num_vertices, base: &self.base_reverse, rows: &self.reverse_rows }
    }

    /// Whether the directed edge `from -> to` exists at this epoch.
    pub fn has_edge(&self, from: VertexId, to: VertexId) -> bool {
        from.index() < self.num_vertices && self.forward().has_edge(from, to)
    }

    /// Materialises this epoch's edge set as a fresh forward CSR. Equivalent
    /// to rebuilding from scratch: identical offsets and targets arrays.
    pub fn to_csr(&self) -> CsrGraph {
        let mut b = CsrBuilder::with_edge_capacity(self.num_vertices, self.num_edges);
        let view = self.forward();
        for u in 0..self.num_vertices as u32 {
            let u = VertexId(u);
            for &v in view.successors(u) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// The whole graph at this epoch as a shared CSR: the base itself when the
    /// snapshot is compact, otherwise a lazily materialised (and cached) copy.
    pub fn full_csr(&self) -> Arc<CsrGraph> {
        if self.is_compact() {
            return Arc::clone(&self.base);
        }
        Arc::clone(&self.compacted_pair().0)
    }

    /// Reverse companion of [`GraphSnapshot::full_csr`].
    pub fn full_reverse(&self) -> Arc<CsrGraph> {
        if self.is_compact() {
            return Arc::clone(&self.base_reverse);
        }
        Arc::clone(&self.compacted_pair().1)
    }

    fn compacted_pair(&self) -> &(Arc<CsrGraph>, Arc<CsrGraph>) {
        self.compacted.get_or_init(|| {
            let forward = self.to_csr();
            let reverse = Arc::new(forward.reverse());
            (Arc::new(forward), reverse)
        })
    }
}

/// One direction of a [`GraphSnapshot`], usable anywhere a [`GraphView`] is.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    n: usize,
    base: &'a CsrGraph,
    rows: &'a OverlayRows,
}

impl GraphView for SnapshotView<'_> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn successors(&self, v: VertexId) -> &[VertexId] {
        if let Some(row) = self.rows.get(&v.0) {
            row
        } else if v.index() < self.base.num_vertices() {
            self.base.successors(v)
        } else {
            &[]
        }
    }
}

/// The mutable head of a snapshot chain: holds the current epoch's
/// [`GraphSnapshot`] and produces the next one per applied [`GraphDelta`].
#[derive(Debug)]
pub struct VersionedGraph {
    current: Arc<GraphSnapshot>,
    compact_rows: usize,
}

impl VersionedGraph {
    /// Starts a version chain at epoch 0 over an already-built CSR pair (the
    /// host loader provides both directions).
    pub fn new(base: Arc<CsrGraph>, reverse: Arc<CsrGraph>) -> Self {
        VersionedGraph {
            current: Arc::new(GraphSnapshot::initial(base, reverse)),
            compact_rows: DEFAULT_COMPACT_OVERLAY_ROWS,
        }
    }

    /// Starts a version chain from a forward CSR, building the reverse here.
    pub fn from_csr(base: impl Into<Arc<CsrGraph>>) -> Self {
        let base = base.into();
        let reverse = Arc::new(base.reverse());
        VersionedGraph::new(base, reverse)
    }

    /// Overrides the overlay-row count past which [`VersionedGraph::apply`]
    /// compacts into a fresh base CSR. `0` compacts after every delta.
    pub fn with_compaction_threshold(mut self, rows: usize) -> Self {
        self.compact_rows = rows;
        self
    }

    /// The current epoch's snapshot.
    pub fn current(&self) -> &Arc<GraphSnapshot> {
        &self.current
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.current.epoch
    }

    /// Applies one mutation batch, advancing the epoch by one, and returns
    /// the new snapshot. Only the adjacency rows the delta touches are
    /// copied; untouched rows (and the base arrays) stay shared with every
    /// older snapshot still alive. An empty delta still advances the epoch —
    /// callers use the returned epoch as a fence.
    pub fn apply(&mut self, delta: &GraphDelta) -> Arc<GraphSnapshot> {
        let cur = &self.current;
        let mut n = cur.num_vertices;
        for &(u, v) in delta.inserts() {
            n = n.max(u.index() + 1).max(v.index() + 1);
        }

        // Group the batch per affected row: forward keyed by source, reverse
        // keyed by target. (removals, inserts) per vertex.
        let mut fwd: HashMap<u32, (Vec<VertexId>, Vec<VertexId>)> = HashMap::new();
        let mut rev: HashMap<u32, (Vec<VertexId>, Vec<VertexId>)> = HashMap::new();
        for &(u, v) in delta.removals() {
            fwd.entry(u.0).or_default().0.push(v);
            rev.entry(v.0).or_default().0.push(u);
        }
        for &(u, v) in delta.inserts() {
            fwd.entry(u.0).or_default().1.push(v);
            rev.entry(v.0).or_default().1.push(u);
        }

        let mut forward_rows = cur.forward_rows.clone();
        let mut reverse_rows = cur.reverse_rows.clone();
        let mut num_edges = cur.num_edges;
        for (vertex, (dels, adds)) in fwd {
            let delta_len = rewrite_row(&mut forward_rows, &cur.base, n, vertex, &dels, &adds);
            num_edges = num_edges.checked_add_signed(delta_len).expect("edge count overflow");
        }
        for (vertex, (dels, adds)) in rev {
            rewrite_row(&mut reverse_rows, &cur.base_reverse, n, vertex, &dels, &adds);
        }

        let next = GraphSnapshot {
            epoch: cur.epoch + 1,
            num_vertices: n,
            num_edges,
            base: Arc::clone(&cur.base),
            base_reverse: Arc::clone(&cur.base_reverse),
            forward_rows,
            reverse_rows,
            compacted: OnceLock::new(),
        };
        let next = if next.forward_rows.len() > self.compact_rows
            || next.reverse_rows.len() > self.compact_rows
        {
            Arc::new(compact(next))
        } else {
            Arc::new(next)
        };
        self.current = Arc::clone(&next);
        next
    }
}

/// Rewrites one overlay row: starts from the row effective at the previous
/// epoch, drops `dels`, adds `adds`, and re-normalises (sorted, deduplicated).
/// Returns the signed change in row length. A row that ends up identical to
/// its base slice is dropped from the overlay instead of stored.
fn rewrite_row(
    rows: &mut OverlayRows,
    base: &CsrGraph,
    n: usize,
    vertex: u32,
    dels: &[VertexId],
    adds: &[VertexId],
) -> isize {
    let base_row: &[VertexId] = if (vertex as usize) < base.num_vertices() {
        base.successors(VertexId(vertex))
    } else {
        &[]
    };
    let old: &[VertexId] = match rows.get(&vertex) {
        Some(row) => row,
        None => base_row,
    };
    let old_len = old.len();
    let mut row: Vec<VertexId> = old.to_vec();
    if !dels.is_empty() {
        row.retain(|v| !dels.contains(v));
    }
    row.extend_from_slice(adds);
    row.sort_unstable();
    row.dedup();
    debug_assert!(
        row.iter().all(|v| v.index() < n),
        "snapshot row for {vertex} references a vertex beyond the grown bound {n}"
    );
    let delta_len = row.len() as isize - old_len as isize;
    if row.as_slice() == base_row {
        rows.remove(&vertex);
    } else {
        rows.insert(vertex, Arc::new(row));
    }
    delta_len
}

/// Collapses a snapshot's overlay into a fresh base CSR pair, keeping its
/// epoch and edge set.
fn compact(snapshot: GraphSnapshot) -> GraphSnapshot {
    let forward = Arc::new(snapshot.to_csr());
    let reverse = Arc::new(forward.reverse());
    debug_assert_eq!(forward.num_edges(), snapshot.num_edges);
    GraphSnapshot {
        epoch: snapshot.epoch,
        num_vertices: snapshot.num_vertices,
        num_edges: snapshot.num_edges,
        base: forward,
        base_reverse: reverse,
        forward_rows: OverlayRows::new(),
        reverse_rows: OverlayRows::new(),
        compacted: OnceLock::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::khop_bfs;

    fn diamond() -> VersionedGraph {
        VersionedGraph::from_csr(CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]))
    }

    #[test]
    fn epoch_zero_matches_the_base() {
        let vg = diamond();
        let snap = vg.current();
        assert_eq!(snap.epoch(), 0);
        assert!(snap.is_compact());
        assert_eq!(snap.num_vertices(), 4);
        assert_eq!(snap.num_edges(), 4);
        assert!(Arc::ptr_eq(&snap.full_csr(), snap.base()));
        assert_eq!(snap.to_csr(), **snap.base());
    }

    #[test]
    fn inserts_and_removals_apply_with_cow_rows() {
        let mut vg = diamond();
        let before = Arc::clone(vg.current());
        let mut delta = GraphDelta::new();
        delta.insert_edge(VertexId(3), VertexId(0)).remove_edge(VertexId(0), VertexId(2));
        let snap = vg.apply(&delta);
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.num_edges(), 4);
        assert!(snap.has_edge(VertexId(3), VertexId(0)));
        assert!(!snap.has_edge(VertexId(0), VertexId(2)));
        // The admission-epoch snapshot is untouched.
        assert!(before.has_edge(VertexId(0), VertexId(2)));
        assert!(!before.has_edge(VertexId(3), VertexId(0)));
        // Reverse direction mirrors the overlay.
        assert_eq!(snap.reverse().successors(VertexId(0)), &[VertexId(3)]);
        assert_eq!(snap.reverse().successors(VertexId(3)), &[VertexId(1), VertexId(2)]);
    }

    #[test]
    fn overlay_matches_a_from_scratch_rebuild() {
        let mut vg = diamond();
        let mut delta = GraphDelta::new();
        delta
            .insert_edge(VertexId(3), VertexId(0))
            .insert_edge(VertexId(1), VertexId(2))
            .remove_edge(VertexId(1), VertexId(3));
        let snap = vg.apply(&delta);
        let rebuilt = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (2, 3), (3, 0), (1, 2)]);
        assert_eq!(snap.to_csr(), rebuilt);
        assert_eq!(snap.to_csr().reverse(), *snap.full_reverse());
        // BFS over the view agrees with BFS over the rebuilt CSR.
        assert_eq!(khop_bfs(&rebuilt, VertexId(3), 5), {
            let mut scratch = crate::bfs::BfsScratch::new();
            scratch.run(&snap.forward(), VertexId(3), 5);
            scratch.to_dense(snap.num_vertices())
        });
    }

    #[test]
    fn duplicate_insert_and_missing_removal_are_noops() {
        let mut vg = diamond();
        let mut delta = GraphDelta::new();
        delta.insert_edge(VertexId(0), VertexId(1)).remove_edge(VertexId(2), VertexId(0));
        let snap = vg.apply(&delta);
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.num_edges(), 4);
        assert_eq!(snap.to_csr(), vg.current().base().as_ref().clone());
        // Rows identical to base are not stored as overlay rows.
        assert_eq!(snap.overlay_rows(), 0);
    }

    #[test]
    fn removal_before_insert_within_one_batch() {
        let mut vg = diamond();
        let mut delta = GraphDelta::new();
        delta.remove_edge(VertexId(0), VertexId(1)).insert_edge(VertexId(0), VertexId(1));
        let snap = vg.apply(&delta);
        assert!(snap.has_edge(VertexId(0), VertexId(1)));
        assert_eq!(snap.num_edges(), 4);
    }

    #[test]
    fn inserts_grow_the_vertex_set() {
        let mut vg = diamond();
        let mut delta = GraphDelta::new();
        delta.insert_edge(VertexId(3), VertexId(6));
        let snap = vg.apply(&delta);
        assert_eq!(snap.num_vertices(), 7);
        assert_eq!(snap.forward().successors(VertexId(6)), &[]);
        assert_eq!(snap.reverse().successors(VertexId(6)), &[VertexId(3)]);
        assert!(snap.has_edge(VertexId(3), VertexId(6)));
        let csr = snap.to_csr();
        assert_eq!(csr.num_vertices(), 7);
        assert_eq!(csr.num_edges(), 5);
    }

    #[test]
    fn compaction_collapses_the_overlay_and_keeps_the_epoch() {
        let mut vg = diamond().with_compaction_threshold(1);
        let mut a = GraphDelta::new();
        a.insert_edge(VertexId(3), VertexId(0));
        vg.apply(&a); // 1 overlay row per direction: below threshold? equal -> kept
        let mut b = GraphDelta::new();
        b.insert_edge(VertexId(2), VertexId(1));
        let snap = vg.apply(&b); // 2 rows > 1: compacts
        assert_eq!(snap.epoch(), 2);
        assert!(snap.is_compact());
        assert_eq!(snap.overlay_rows(), 0);
        assert_eq!(snap.num_edges(), 6);
        assert!(snap.has_edge(VertexId(3), VertexId(0)));
        assert!(snap.has_edge(VertexId(2), VertexId(1)));
        assert_eq!(**snap.base(), snap.to_csr());
    }

    #[test]
    fn touched_vertices_are_sorted_and_deduplicated() {
        let mut delta = GraphDelta::new();
        delta
            .insert_edge(VertexId(5), VertexId(2))
            .remove_edge(VertexId(2), VertexId(7))
            .insert_edge(VertexId(5), VertexId(0));
        assert_eq!(
            delta.touched_vertices(),
            vec![VertexId(0), VertexId(2), VertexId(5), VertexId(7)]
        );
        assert_eq!(delta.len(), 3);
        assert!(!delta.is_empty());
        assert!(GraphDelta::new().is_empty());
    }

    #[test]
    fn full_csr_is_cached_per_snapshot() {
        let mut vg = diamond();
        let mut delta = GraphDelta::new();
        delta.insert_edge(VertexId(3), VertexId(0));
        let snap = vg.apply(&delta);
        assert!(!snap.is_compact());
        let a = snap.full_csr();
        let b = snap.full_csr();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, snap.to_csr());
        assert_eq!(*snap.full_reverse(), a.reverse());
    }
}
