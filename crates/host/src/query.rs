//! Query parsing and validation.
//!
//! Step 2 of the paper's workflow (Fig. 2): "when a new query comes in, the
//! host parses the query to extract `s`, `t` and `k`". The reproduction
//! accepts a small text protocol — either `QUERY <s> <t> <k>` or just
//! `<s> <t> <k>` — and validates the request against the loaded graph before
//! any preprocessing starts.

use crate::error::HostError;
use pefp_core::MAX_K;
use pefp_graph::{CsrGraph, VertexId};
use serde::{Deserialize, Serialize};

/// A parsed s-t k-path enumeration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryRequest {
    /// Source vertex.
    pub s: VertexId,
    /// Target vertex.
    pub t: VertexId,
    /// Hop constraint.
    pub k: u32,
}

impl QueryRequest {
    /// Builds a request from raw ids.
    pub fn new(s: u32, t: u32, k: u32) -> Self {
        QueryRequest { s: VertexId(s), t: VertexId(t), k }
    }

    /// Parses `QUERY <s> <t> <k>` or `<s> <t> <k>` (case-insensitive keyword,
    /// any whitespace separation).
    pub fn parse(text: &str) -> Result<QueryRequest, HostError> {
        let mut tokens: Vec<&str> = text.split_whitespace().collect();
        if tokens.first().is_some_and(|t| t.eq_ignore_ascii_case("query")) {
            tokens.remove(0);
        }
        if tokens.len() != 3 {
            return Err(HostError::QueryParse(format!(
                "expected `QUERY <s> <t> <k>` or `<s> <t> <k>`, got {text:?}"
            )));
        }
        let parse_u32 = |tok: &str, name: &str| -> Result<u32, HostError> {
            tok.parse::<u32>().map_err(|_| {
                HostError::QueryParse(format!("{name} must be a non-negative integer, got {tok:?}"))
            })
        };
        let s = parse_u32(tokens[0], "s")?;
        let t = parse_u32(tokens[1], "t")?;
        let k = parse_u32(tokens[2], "k")?;
        Ok(QueryRequest::new(s, t, k))
    }

    /// Validates the request against a loaded graph.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), HostError> {
        self.validate_for(g.num_vertices())
    }

    /// Validates the request against a graph of `n` vertices. Runtimes serving
    /// a versioned graph validate against the *current snapshot's* vertex
    /// count, which can exceed the base CSR's after edge inserts grew the
    /// vertex set.
    pub fn validate_for(&self, n: usize) -> Result<(), HostError> {
        if self.s.index() >= n {
            return Err(HostError::QueryInvalid(format!(
                "source {} out of range (graph has {n} vertices)",
                self.s
            )));
        }
        if self.t.index() >= n {
            return Err(HostError::QueryInvalid(format!(
                "target {} out of range (graph has {n} vertices)",
                self.t
            )));
        }
        if self.s == self.t {
            return Err(HostError::QueryInvalid(
                "source and target must differ (a path with zero hops is trivial)".to_string(),
            ));
        }
        if self.k == 0 {
            return Err(HostError::QueryInvalid("hop constraint k must be at least 1".to_string()));
        }
        if self.k as usize > MAX_K {
            return Err(HostError::QueryInvalid(format!(
                "hop constraint {} exceeds the engine's maximum of {MAX_K}",
                self.k
            )));
        }
        Ok(())
    }

    /// Formats the request back into the wire representation.
    pub fn to_wire(&self) -> String {
        format!("QUERY {} {} {}", self.s.0, self.t.0, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)])
    }

    #[test]
    fn parses_with_and_without_the_keyword() {
        let a = QueryRequest::parse("QUERY 0 4 5").unwrap();
        let b = QueryRequest::parse("0 4 5").unwrap();
        let c = QueryRequest::parse("  query\t0   4  5 ").unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, QueryRequest::new(0, 4, 5));
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in ["", "QUERY", "1 2", "1 2 3 4", "a b c", "QUERY 1 -2 3", "1 2 x"] {
            assert!(
                matches!(QueryRequest::parse(bad), Err(HostError::QueryParse(_))),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn validation_accepts_in_range_queries() {
        let g = graph();
        assert!(QueryRequest::new(0, 4, 4).validate(&g).is_ok());
        assert!(QueryRequest::new(4, 0, 1).validate(&g).is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_and_degenerate_queries() {
        let g = graph();
        assert!(matches!(
            QueryRequest::new(9, 0, 3).validate(&g),
            Err(HostError::QueryInvalid(msg)) if msg.contains("source")
        ));
        assert!(matches!(
            QueryRequest::new(0, 9, 3).validate(&g),
            Err(HostError::QueryInvalid(msg)) if msg.contains("target")
        ));
        assert!(matches!(
            QueryRequest::new(2, 2, 3).validate(&g),
            Err(HostError::QueryInvalid(msg)) if msg.contains("differ")
        ));
        assert!(matches!(
            QueryRequest::new(0, 1, 0).validate(&g),
            Err(HostError::QueryInvalid(msg)) if msg.contains("at least 1")
        ));
        assert!(matches!(
            QueryRequest::new(0, 1, MAX_K as u32 + 1).validate(&g),
            Err(HostError::QueryInvalid(msg)) if msg.contains("maximum")
        ));
    }

    #[test]
    fn wire_round_trip_is_lossless() {
        let q = QueryRequest::new(13, 7, 6);
        let wire = q.to_wire();
        assert_eq!(QueryRequest::parse(&wire).unwrap(), q);
    }
}
