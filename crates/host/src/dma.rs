//! DMA framing of payloads over the PCIe model.
//!
//! The paper transfers prepared data "through PCIe bus in DMA mode" and
//! reports that shipping 1,000 queries and their subgraphs at once takes
//! 100–300 ms, i.e. ~0.1–0.3 ms per query (Section VII-A). A DMA engine does
//! not move a payload as one blob: the host driver splits it into bounded
//! descriptors (scatter/gather entries), each of which carries its own setup
//! overhead. This module models that framing so transfer-time estimates react
//! to payload size *and* fragmentation, and so the scheduler can demonstrate
//! why batching many small query payloads into one transfer is cheaper than
//! sending them one by one.

use pefp_fpga::Pcie;
use serde::{Deserialize, Serialize};

/// One scatter/gather descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaDescriptor {
    /// Offset of the chunk inside the source payload.
    pub offset: usize,
    /// Chunk length in bytes.
    pub len: usize,
}

/// Report of one DMA transfer (one payload, possibly many descriptors).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaTransferReport {
    /// Payload size in bytes.
    pub bytes: usize,
    /// Number of descriptors the payload was split into.
    pub descriptors: usize,
    /// Pure wire time (bandwidth-limited component) in milliseconds.
    pub wire_millis: f64,
    /// Per-descriptor setup overhead in milliseconds.
    pub setup_millis: f64,
    /// Total transfer time in milliseconds.
    pub total_millis: f64,
}

impl DmaTransferReport {
    /// The report of a job that never crossed the PCIe link (a CPU-routed
    /// query): zero bytes, zero descriptors, zero time.
    pub fn none() -> DmaTransferReport {
        DmaTransferReport {
            bytes: 0,
            descriptors: 0,
            wire_millis: 0.0,
            setup_millis: 0.0,
            total_millis: 0.0,
        }
    }
}

/// A DMA engine with a fixed maximum descriptor size and per-descriptor setup
/// cost, transferring over a [`Pcie`] link.
#[derive(Debug, Clone)]
pub struct DmaEngine {
    pcie: Pcie,
    max_descriptor_bytes: usize,
    per_descriptor_setup_us: f64,
    transfers: u64,
    bytes_moved: u64,
}

impl DmaEngine {
    /// Creates an engine over `pcie` with the given descriptor size limit and
    /// per-descriptor setup cost in microseconds.
    pub fn new(pcie: Pcie, max_descriptor_bytes: usize, per_descriptor_setup_us: f64) -> Self {
        assert!(max_descriptor_bytes > 0, "descriptor size must be positive");
        DmaEngine {
            pcie,
            max_descriptor_bytes,
            per_descriptor_setup_us,
            transfers: 0,
            bytes_moved: 0,
        }
    }

    /// The defaults used by the reproduction: 16 GB/s effective PCIe 3 x16
    /// bandwidth is configured by the caller through `pcie`; descriptors are
    /// capped at 4 MiB with 5 µs of setup each, typical of XDMA-style shells.
    pub fn with_defaults(pcie: Pcie) -> Self {
        DmaEngine::new(pcie, 4 << 20, 5.0)
    }

    /// Splits a payload of `bytes` bytes into descriptors.
    pub fn descriptors_for(&self, bytes: usize) -> Vec<DmaDescriptor> {
        if bytes == 0 {
            return Vec::new();
        }
        let mut descriptors = Vec::with_capacity(bytes.div_ceil(self.max_descriptor_bytes));
        let mut offset = 0;
        while offset < bytes {
            let len = (bytes - offset).min(self.max_descriptor_bytes);
            descriptors.push(DmaDescriptor { offset, len });
            offset += len;
        }
        descriptors
    }

    /// Estimates the transfer of a payload of `bytes` bytes and records it in
    /// the engine statistics.
    pub fn transfer(&mut self, bytes: usize) -> DmaTransferReport {
        let descriptors = self.descriptors_for(bytes).len();
        let wire_millis = self.pcie.transfer_millis(bytes);
        let setup_millis = descriptors as f64 * self.per_descriptor_setup_us / 1_000.0;
        self.transfers += 1;
        self.bytes_moved += bytes as u64;
        DmaTransferReport {
            bytes,
            descriptors,
            wire_millis,
            setup_millis,
            total_millis: wire_millis + setup_millis,
        }
    }

    /// Number of transfers performed so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        // 7.7 GB/s as quoted in the paper's Fig. 2, 10 µs setup per transfer.
        DmaEngine::new(Pcie::new(7.7, 10.0), 1 << 20, 5.0)
    }

    #[test]
    fn descriptors_cover_the_payload_without_overlap() {
        let eng = engine();
        let bytes = 3 * (1 << 20) + 123;
        let descs = eng.descriptors_for(bytes);
        assert_eq!(descs.len(), 4);
        let mut expected_offset = 0;
        let mut total = 0;
        for d in &descs {
            assert_eq!(d.offset, expected_offset);
            assert!(d.len <= 1 << 20);
            expected_offset += d.len;
            total += d.len;
        }
        assert_eq!(total, bytes);
    }

    #[test]
    fn empty_payload_has_no_descriptors_and_costs_only_setup() {
        let mut eng = engine();
        assert!(eng.descriptors_for(0).is_empty());
        let report = eng.transfer(0);
        assert_eq!(report.descriptors, 0);
        assert_eq!(report.setup_millis, 0.0);
    }

    #[test]
    fn transfer_time_grows_with_payload_size() {
        let mut eng = engine();
        let small = eng.transfer(64 * 1024);
        let large = eng.transfer(16 * 1024 * 1024);
        assert!(large.total_millis > small.total_millis);
        assert!(large.descriptors > small.descriptors);
    }

    #[test]
    fn one_batched_transfer_beats_many_small_ones() {
        // 1,000 payloads of 64 KiB each: batched = one transfer of 64 MB.
        let mut batched = engine();
        let mut unbatched = engine();
        let per_query = 64 * 1024;
        let batch_report = batched.transfer(1_000 * per_query);
        let mut unbatched_total = 0.0;
        for _ in 0..1_000 {
            unbatched_total += unbatched.transfer(per_query).total_millis;
        }
        assert!(batch_report.total_millis < unbatched_total);
        assert_eq!(unbatched.transfers(), 1_000);
        assert_eq!(batched.bytes_moved(), 1_000 * per_query as u64);
    }

    #[test]
    fn per_query_transfer_time_matches_the_papers_ballpark() {
        // The paper: 1,000 queries + subgraphs transferred at once in
        // 100-300 ms, i.e. 0.1-0.3 ms per query. With ~1 MB per prepared
        // query payload at 7.7 GB/s we should land in the same order.
        let mut eng = DmaEngine::with_defaults(Pcie::new(7.7, 100.0));
        let report = eng.transfer(1_000 * 1_000_000);
        let per_query = report.total_millis / 1_000.0;
        assert!(per_query > 0.01 && per_query < 1.0, "per query {per_query} ms");
    }

    #[test]
    #[should_panic(expected = "descriptor size must be positive")]
    fn zero_descriptor_size_is_rejected() {
        DmaEngine::new(Pcie::new(7.7, 1.0), 0, 1.0);
    }
}
