//! Length-prefixed binary wire protocol of the network front door.
//!
//! The line protocol ([`crate::server`]) is scriptable but pays text
//! formatting and parsing on every reply; a production client driving the
//! accelerator at thousands of queries per second wants fixed-layout frames.
//! This module defines them. Every frame — request or reply — is:
//!
//! ```text
//! offset  size  field
//! 0       1     magic 0xB1 (non-ASCII on purpose: the TCP front door
//!               sniffs the first byte of a connection to pick the
//!               protocol, and no text command starts with it)
//! 1       1     opcode
//! 2       2     flags (little-endian; opcode-specific, 0 when unused)
//! 4       4     payload length in bytes (little-endian)
//! 8       4     FNV-1a checksum of the payload (little-endian,
//!               the same hash the DRAM payload format uses)
//! 12      ...   payload
//! ```
//!
//! All payload integers are little-endian, matching [`crate::binfmt`]. The
//! payload is capped at [`MAX_FRAME_PAYLOAD`]: a peer declaring more is a
//! framing attack (or a desynchronised stream) and the connection is closed
//! rather than buffered.
//!
//! Request opcodes mirror the text commands: `QUERY`/`COUNT`/`STREAM`/
//! `BATCH`/`EXPLAIN`/`UPDATE`/`STATS`/`QUIT`. Replies are typed:
//! [`Reply::Summary`] for query outcomes, incremental [`Reply::Paths`]
//! chunks plus a final [`Reply::End`] for streams, [`Reply::Busy`] when the
//! admission queue rejects a submission ([`crate::HostError::QueueFull`]
//! becomes backpressure the client can retry on, not a dropped connection),
//! and [`Reply::Error`] with a stable [`ErrCode`] otherwise.

use crate::binfmt::fnv1a;
use bytes::BufMut;
use std::io::{Read, Write};

/// First byte of every frame. Deliberately non-ASCII so a binary client can
/// never be mistaken for a text-protocol client (whose commands all start
/// with an ASCII letter).
pub const FRAME_MAGIC: u8 = 0xB1;

/// Size of the fixed frame header in bytes.
pub const FRAME_HEADER_BYTES: usize = 12;

/// Hard cap on one frame's payload size (1 MiB). A declared length beyond it
/// is rejected without reading the payload.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Paths per incremental [`Reply::Paths`] frame written by a streaming
/// reply before it is flushed to the socket.
pub const STREAM_FRAME_PATHS: usize = 32;

/// Flag bit on an [`Request::Update`] frame: remove the listed edges
/// (`EXPIRE`) instead of inserting them.
pub const FLAG_UPDATE_REMOVE: u16 = 1;

/// Stable error codes carried by [`Reply::Error`] frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrCode {
    /// The frame's payload did not decode (truncated, trailing bytes,
    /// out-of-range counts).
    Malformed = 1,
    /// The opcode byte names no known request.
    UnknownOpcode = 2,
    /// The payload checksum did not match the header.
    BadChecksum = 3,
    /// The declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversized = 4,
    /// The query inside the frame was invalid (bad endpoints, k, limits).
    BadQuery = 5,
    /// The runtime failed the request (fault, deadline, shutdown, ...).
    Host = 6,
    /// The server is at its concurrent-connection cap.
    AtCapacity = 7,
}

impl ErrCode {
    /// Decodes a wire value back into a code.
    pub fn from_u16(v: u16) -> Option<ErrCode> {
        match v {
            1 => Some(ErrCode::Malformed),
            2 => Some(ErrCode::UnknownOpcode),
            3 => Some(ErrCode::BadChecksum),
            4 => Some(ErrCode::Oversized),
            5 => Some(ErrCode::BadQuery),
            6 => Some(ErrCode::Host),
            7 => Some(ErrCode::AtCapacity),
            _ => None,
        }
    }
}

/// What went wrong while reading or decoding a frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (or hit end-of-input mid-frame).
    Io(std::io::Error),
    /// The first byte of the frame was not [`FRAME_MAGIC`] — the stream is
    /// desynchronised and the connection cannot be trusted further.
    BadMagic(u8),
    /// The header declared a payload larger than [`MAX_FRAME_PAYLOAD`].
    Oversized(u32),
    /// The payload arrived but its checksum did not match the header.
    Checksum {
        /// Checksum stored in the frame header.
        stored: u32,
        /// Checksum computed over the received payload.
        computed: u32,
    },
    /// The opcode byte names no known frame type.
    UnknownOpcode(u8),
    /// The payload did not decode as the opcode's layout.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport error: {e}"),
            WireError::BadMagic(b) => write!(f, "bad frame magic {b:#04x}"),
            WireError::Oversized(len) => {
                write!(f, "declared payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD} cap")
            }
            WireError::Checksum { stored, computed } => {
                write!(
                    f,
                    "payload checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            WireError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// The [`ErrCode`] a server reports for this decode failure.
    pub fn err_code(&self) -> ErrCode {
        match self {
            WireError::Io(_) => ErrCode::Host,
            WireError::BadMagic(_) => ErrCode::Malformed,
            WireError::Oversized(_) => ErrCode::Oversized,
            WireError::Checksum { .. } => ErrCode::BadChecksum,
            WireError::UnknownOpcode(_) => ErrCode::UnknownOpcode,
            WireError::Malformed(_) => ErrCode::Malformed,
        }
    }
}

// Request opcodes.
const OP_QUERY: u8 = 0x01;
const OP_COUNT: u8 = 0x02;
const OP_STREAM: u8 = 0x03;
const OP_BATCH: u8 = 0x04;
const OP_EXPLAIN: u8 = 0x05;
const OP_UPDATE: u8 = 0x06;
const OP_STATS: u8 = 0x07;
const OP_QUIT: u8 = 0x08;

// Reply opcodes (high bit set).
const OP_SUMMARY: u8 = 0x81;
const OP_PATHS: u8 = 0x82;
const OP_END: u8 = 0x83;
const OP_BATCH_OK: u8 = 0x84;
const OP_JSON: u8 = 0x85;
const OP_UPDATE_OK: u8 = 0x86;
const OP_BYE: u8 = 0x8F;
const OP_ERR: u8 = 0xE0;
const OP_BUSY: u8 = 0xE1;

/// One frame as it crossed the wire: opcode, flags and the verified payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// The opcode byte.
    pub opcode: u8,
    /// The flags word.
    pub flags: u16,
    /// The checksum-verified payload.
    pub payload: Vec<u8>,
}

/// Writes one frame (header + payload) to `w` without flushing.
pub fn write_frame<W: Write + ?Sized>(
    w: &mut W,
    opcode: u8,
    flags: u16,
    payload: &[u8],
) -> std::io::Result<()> {
    let mut header = Vec::with_capacity(FRAME_HEADER_BYTES);
    header.put_u8(FRAME_MAGIC);
    header.put_u8(opcode);
    header.put_u16_le(flags);
    header.put_u32_le(payload.len() as u32);
    header.put_u32_le(fnv1a(payload));
    w.write_all(&header)?;
    w.write_all(payload)
}

/// Reads one frame from `r`, verifying magic, length cap and checksum.
///
/// Returns `Ok(None)` on a clean end-of-stream **at a frame boundary**; an
/// EOF inside a frame is an [`WireError::Io`] error. On
/// [`WireError::Checksum`] the payload has been consumed, so the stream is
/// still framed and the caller may keep the connection; on
/// [`WireError::BadMagic`] / [`WireError::Oversized`] it is not.
pub fn read_frame<R: Read + ?Sized>(r: &mut R) -> Result<Option<RawFrame>, WireError> {
    let mut first = [0u8; 1];
    match r.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(WireError::Io(e)),
    }
    if first[0] != FRAME_MAGIC {
        return Err(WireError::BadMagic(first[0]));
    }
    let mut rest = [0u8; FRAME_HEADER_BYTES - 1];
    r.read_exact(&mut rest)?;
    let opcode = rest[0];
    let flags = u16::from_le_bytes([rest[1], rest[2]]);
    let len = u32::from_le_bytes([rest[3], rest[4], rest[5], rest[6]]);
    let stored = u32::from_le_bytes([rest[7], rest[8], rest[9], rest[10]]);
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let computed = fnv1a(&payload);
    if computed != stored {
        return Err(WireError::Checksum { stored, computed });
    }
    Ok(Some(RawFrame { opcode, flags, payload }))
}

/// Bounds-checked little-endian payload cursor (the `bytes` shim panics on
/// short reads; untrusted payloads must error instead).
struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn u8(&mut self) -> Result<u8, WireError> {
        let b = self.bytes(1)?;
        Ok(b[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn bytes(&mut self, n: usize) -> Result<&[u8], WireError> {
        if self.0.len() < n {
            return Err(WireError::Malformed(format!(
                "payload truncated: wanted {n} more byte(s), have {}",
                self.0.len()
            )));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    /// Guards a length-prefixed repetition: `count` items of `item_bytes`
    /// each must fit in the remaining payload before anything is allocated.
    fn guard_count(&self, count: u32, item_bytes: usize) -> Result<(), WireError> {
        let need = (count as usize).checked_mul(item_bytes);
        match need {
            Some(need) if need <= self.0.len() => Ok(()),
            _ => Err(WireError::Malformed(format!(
                "count {count} x {item_bytes} B items exceeds the {} remaining payload byte(s)",
                self.0.len()
            ))),
        }
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!("{} trailing payload byte(s)", self.0.len())))
        }
    }
}

fn put_paths(buf: &mut Vec<u8>, paths: &[Vec<u32>]) {
    buf.put_u32_le(paths.len() as u32);
    for path in paths {
        buf.put_u32_le(path.len() as u32);
        for &v in path {
            buf.put_u32_le(v);
        }
    }
}

fn get_paths(r: &mut Reader<'_>) -> Result<Vec<Vec<u32>>, WireError> {
    let count = r.u32()?;
    // Each path costs at least its 4-byte length word.
    r.guard_count(count, 4)?;
    let mut paths = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let len = r.u32()?;
        r.guard_count(len, 4)?;
        let mut path = Vec::with_capacity(len as usize);
        for _ in 0..len {
            path.push(r.u32()?);
        }
        paths.push(path);
    }
    Ok(paths)
}

/// A client request frame. Opcodes mirror the text commands of
/// [`crate::server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enumerate paths, reply with a [`Reply::Summary`] (count, timing and a
    /// bounded sample of paths).
    Query {
        /// Source vertex.
        s: u32,
        /// Target vertex.
        t: u32,
        /// Hop constraint.
        k: u32,
    },
    /// Count paths without materialising or sampling any.
    Count {
        /// Source vertex.
        s: u32,
        /// Target vertex.
        t: u32,
        /// Hop constraint.
        k: u32,
    },
    /// Stream up to `limit` paths as incremental [`Reply::Paths`] frames,
    /// then a final [`Reply::End`].
    Stream {
        /// Source vertex.
        s: u32,
        /// Target vertex.
        t: u32,
        /// Hop constraint.
        k: u32,
        /// Cap on the number of streamed paths (server-clamped to
        /// [`crate::server::MAX_STREAM_LIMIT`]).
        limit: u64,
    },
    /// Run a batch of `(s, t, k)` queries as one admission-queue unit.
    Batch {
        /// The query triples, in submission order.
        queries: Vec<(u32, u32, u32)>,
    },
    /// Ask the adaptive router for its placement decision without running.
    Explain {
        /// Source vertex.
        s: u32,
        /// Target vertex.
        t: u32,
        /// Hop constraint.
        k: u32,
    },
    /// Apply edge updates as one graph delta (one new epoch).
    Update {
        /// Remove the edges (`EXPIRE`) instead of inserting them.
        remove: bool,
        /// The `(u, v)` edge list.
        edges: Vec<(u32, u32)>,
    },
    /// Session + runtime statistics as one JSON document.
    Stats,
    /// Close the connection after a [`Reply::Bye`].
    Quit,
}

impl Request {
    /// Serialises the request into one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let (opcode, flags, payload) = self.parts();
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        // write_frame on a Vec cannot fail.
        write_frame(&mut frame, opcode, flags, &payload).expect("vec write");
        frame
    }

    /// Writes the request to `w` and flushes.
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> std::io::Result<()> {
        let (opcode, flags, payload) = self.parts();
        write_frame(w, opcode, flags, &payload)?;
        w.flush()
    }

    fn parts(&self) -> (u8, u16, Vec<u8>) {
        let mut p = Vec::new();
        match self {
            Request::Query { s, t, k } => {
                p.put_u32_le(*s);
                p.put_u32_le(*t);
                p.put_u32_le(*k);
                (OP_QUERY, 0, p)
            }
            Request::Count { s, t, k } => {
                p.put_u32_le(*s);
                p.put_u32_le(*t);
                p.put_u32_le(*k);
                (OP_COUNT, 0, p)
            }
            Request::Stream { s, t, k, limit } => {
                p.put_u32_le(*s);
                p.put_u32_le(*t);
                p.put_u32_le(*k);
                p.put_u64_le(*limit);
                (OP_STREAM, 0, p)
            }
            Request::Batch { queries } => {
                p.put_u32_le(queries.len() as u32);
                for &(s, t, k) in queries {
                    p.put_u32_le(s);
                    p.put_u32_le(t);
                    p.put_u32_le(k);
                }
                (OP_BATCH, 0, p)
            }
            Request::Explain { s, t, k } => {
                p.put_u32_le(*s);
                p.put_u32_le(*t);
                p.put_u32_le(*k);
                (OP_EXPLAIN, 0, p)
            }
            Request::Update { remove, edges } => {
                p.put_u32_le(edges.len() as u32);
                for &(u, v) in edges {
                    p.put_u32_le(u);
                    p.put_u32_le(v);
                }
                (OP_UPDATE, if *remove { FLAG_UPDATE_REMOVE } else { 0 }, p)
            }
            Request::Stats => (OP_STATS, 0, p),
            Request::Quit => (OP_QUIT, 0, p),
        }
    }

    /// Decodes a verified [`RawFrame`] into a request.
    pub fn decode(frame: &RawFrame) -> Result<Request, WireError> {
        let mut r = Reader(&frame.payload);
        let request = match frame.opcode {
            OP_QUERY => Request::Query { s: r.u32()?, t: r.u32()?, k: r.u32()? },
            OP_COUNT => Request::Count { s: r.u32()?, t: r.u32()?, k: r.u32()? },
            OP_STREAM => Request::Stream { s: r.u32()?, t: r.u32()?, k: r.u32()?, limit: r.u64()? },
            OP_BATCH => {
                let count = r.u32()?;
                r.guard_count(count, 12)?;
                let mut queries = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    queries.push((r.u32()?, r.u32()?, r.u32()?));
                }
                Request::Batch { queries }
            }
            OP_EXPLAIN => Request::Explain { s: r.u32()?, t: r.u32()?, k: r.u32()? },
            OP_UPDATE => {
                let count = r.u32()?;
                r.guard_count(count, 8)?;
                let mut edges = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    edges.push((r.u32()?, r.u32()?));
                }
                Request::Update { remove: frame.flags & FLAG_UPDATE_REMOVE != 0, edges }
            }
            OP_STATS => Request::Stats,
            OP_QUIT => Request::Quit,
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(request)
    }

    /// Reads and decodes one request from `r`; `Ok(None)` on clean EOF.
    pub fn read_from<R: Read + ?Sized>(r: &mut R) -> Result<Option<Request>, WireError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(frame) => Request::decode(&frame).map(Some),
        }
    }
}

/// A server reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Outcome of a `QUERY`/`COUNT`: the count, the paper's T1/transfer/T2
    /// timing in nanoseconds and (for `QUERY`) a bounded path sample.
    Summary {
        /// Total result paths.
        num_paths: u64,
        /// Host preprocessing time (T1) in nanoseconds.
        preprocess_ns: u64,
        /// PCIe/DMA transfer time in nanoseconds.
        transfer_ns: u64,
        /// Simulated device time (T2) in nanoseconds.
        device_ns: u64,
        /// Whether preprocessing came from the shared prepared-query cache.
        cache_hit: bool,
        /// At most [`crate::server::MAX_INLINE_PATHS`] sample paths.
        sample: Vec<Vec<u32>>,
    },
    /// One incremental chunk of streamed paths.
    Paths(Vec<Vec<u32>>),
    /// End of a stream: how many paths were emitted under which limit.
    End {
        /// Paths streamed before the enumeration finished or hit the limit.
        streamed: u64,
        /// The (clamped) limit the stream ran under.
        limit: u64,
    },
    /// Outcome of a `BATCH`.
    BatchOk {
        /// Distinct queries after in-batch deduplication.
        unique: u32,
        /// Prepared-cache hits across the batch.
        cache_hits: u64,
        /// Summed preprocessing nanoseconds.
        preprocess_ns: u64,
        /// Summed transfer nanoseconds.
        transfer_ns: u64,
        /// Summed device nanoseconds.
        device_ns: u64,
        /// Per-slot path counts, in submission order.
        paths_per_query: Vec<u64>,
    },
    /// A JSON document (`EXPLAIN` decisions, `STATS` reports).
    Json(String),
    /// Outcome of an `UPDATE`: the epoch the delta produced.
    UpdateOk {
        /// The new graph epoch.
        epoch: u64,
        /// Edges applied in the delta.
        edges: u32,
    },
    /// Farewell to a `QUIT`; the server closes after sending it.
    Bye,
    /// The admission queue is full — typed backpressure, retry later.
    Busy,
    /// The request failed; carries a stable code and a human message.
    Error {
        /// Stable error class.
        code: ErrCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Reply {
    /// Serialises the reply into one complete frame.
    pub fn encode(&self) -> Vec<u8> {
        let (opcode, flags, payload) = self.parts();
        let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
        write_frame(&mut frame, opcode, flags, &payload).expect("vec write");
        frame
    }

    /// Writes the reply to `w` without flushing (streamed replies flush per
    /// chunk at the transport layer).
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> std::io::Result<()> {
        let (opcode, flags, payload) = self.parts();
        write_frame(w, opcode, flags, &payload)
    }

    fn parts(&self) -> (u8, u16, Vec<u8>) {
        let mut p = Vec::new();
        match self {
            Reply::Summary {
                num_paths,
                preprocess_ns,
                transfer_ns,
                device_ns,
                cache_hit,
                sample,
            } => {
                p.put_u64_le(*num_paths);
                p.put_u64_le(*preprocess_ns);
                p.put_u64_le(*transfer_ns);
                p.put_u64_le(*device_ns);
                p.put_u8(u8::from(*cache_hit));
                put_paths(&mut p, sample);
                (OP_SUMMARY, 0, p)
            }
            Reply::Paths(paths) => {
                put_paths(&mut p, paths);
                (OP_PATHS, 0, p)
            }
            Reply::End { streamed, limit } => {
                p.put_u64_le(*streamed);
                p.put_u64_le(*limit);
                (OP_END, 0, p)
            }
            Reply::BatchOk {
                unique,
                cache_hits,
                preprocess_ns,
                transfer_ns,
                device_ns,
                paths_per_query,
            } => {
                p.put_u32_le(*unique);
                p.put_u64_le(*cache_hits);
                p.put_u64_le(*preprocess_ns);
                p.put_u64_le(*transfer_ns);
                p.put_u64_le(*device_ns);
                p.put_u32_le(paths_per_query.len() as u32);
                for &n in paths_per_query {
                    p.put_u64_le(n);
                }
                (OP_BATCH_OK, 0, p)
            }
            Reply::Json(doc) => {
                p.put_slice(doc.as_bytes());
                (OP_JSON, 0, p)
            }
            Reply::UpdateOk { epoch, edges } => {
                p.put_u64_le(*epoch);
                p.put_u32_le(*edges);
                (OP_UPDATE_OK, 0, p)
            }
            Reply::Bye => (OP_BYE, 0, p),
            Reply::Busy => (OP_BUSY, 0, p),
            Reply::Error { code, message } => {
                p.put_u16_le(*code as u16);
                p.put_slice(message.as_bytes());
                (OP_ERR, 0, p)
            }
        }
    }

    /// Decodes a verified [`RawFrame`] into a reply.
    pub fn decode(frame: &RawFrame) -> Result<Reply, WireError> {
        let mut r = Reader(&frame.payload);
        let reply = match frame.opcode {
            OP_SUMMARY => {
                let num_paths = r.u64()?;
                let preprocess_ns = r.u64()?;
                let transfer_ns = r.u64()?;
                let device_ns = r.u64()?;
                let cache_hit = r.u8()? != 0;
                let sample = get_paths(&mut r)?;
                Reply::Summary {
                    num_paths,
                    preprocess_ns,
                    transfer_ns,
                    device_ns,
                    cache_hit,
                    sample,
                }
            }
            OP_PATHS => Reply::Paths(get_paths(&mut r)?),
            OP_END => Reply::End { streamed: r.u64()?, limit: r.u64()? },
            OP_BATCH_OK => {
                let unique = r.u32()?;
                let cache_hits = r.u64()?;
                let preprocess_ns = r.u64()?;
                let transfer_ns = r.u64()?;
                let device_ns = r.u64()?;
                let count = r.u32()?;
                r.guard_count(count, 8)?;
                let mut paths_per_query = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    paths_per_query.push(r.u64()?);
                }
                Reply::BatchOk {
                    unique,
                    cache_hits,
                    preprocess_ns,
                    transfer_ns,
                    device_ns,
                    paths_per_query,
                }
            }
            OP_JSON => {
                let doc = String::from_utf8(frame.payload.clone())
                    .map_err(|_| WireError::Malformed("JSON payload is not UTF-8".into()))?;
                return Ok(Reply::Json(doc));
            }
            OP_UPDATE_OK => Reply::UpdateOk { epoch: r.u64()?, edges: r.u32()? },
            OP_BYE => Reply::Bye,
            OP_BUSY => Reply::Busy,
            OP_ERR => {
                let raw = r.u16()?;
                let code = ErrCode::from_u16(raw)
                    .ok_or_else(|| WireError::Malformed(format!("unknown error code {raw}")))?;
                let message = String::from_utf8(r.0.to_vec())
                    .map_err(|_| WireError::Malformed("error message is not UTF-8".into()))?;
                return Ok(Reply::Error { code, message });
            }
            other => return Err(WireError::UnknownOpcode(other)),
        };
        r.finish()?;
        Ok(reply)
    }

    /// Reads and decodes one reply from `r`; `Ok(None)` on clean EOF.
    pub fn read_from<R: Read + ?Sized>(r: &mut R) -> Result<Option<Reply>, WireError> {
        match read_frame(r)? {
            None => Ok(None),
            Some(frame) => Reply::decode(&frame).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let bytes = req.encode();
        let mut cursor: &[u8] = &bytes;
        let decoded = Request::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(decoded, req);
        assert!(cursor.is_empty(), "the whole frame was consumed");
        assert_eq!(decoded.encode(), bytes, "re-encoding is byte-identical");
    }

    fn round_trip_reply(reply: Reply) {
        let bytes = reply.encode();
        let mut cursor: &[u8] = &bytes;
        let decoded = Reply::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(decoded, reply);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn every_request_round_trips() {
        round_trip_request(Request::Query { s: 0, t: 42, k: 5 });
        round_trip_request(Request::Count { s: 7, t: 9, k: 3 });
        round_trip_request(Request::Stream { s: 1, t: 2, k: 6, limit: 10_000 });
        round_trip_request(Request::Batch { queries: vec![(0, 3, 3), (1, 3, 2)] });
        round_trip_request(Request::Batch { queries: vec![] });
        round_trip_request(Request::Explain { s: 0, t: 3, k: 3 });
        round_trip_request(Request::Update { remove: false, edges: vec![(0, 1), (2, 3)] });
        round_trip_request(Request::Update { remove: true, edges: vec![(5, 6)] });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Quit);
    }

    #[test]
    fn every_reply_round_trips() {
        round_trip_reply(Reply::Summary {
            num_paths: 7776,
            preprocess_ns: 12_345,
            transfer_ns: 678,
            device_ns: 90_000,
            cache_hit: true,
            sample: vec![vec![0, 1, 3], vec![0, 2, 3]],
        });
        round_trip_reply(Reply::Paths(vec![vec![1, 2], vec![3]]));
        round_trip_reply(Reply::Paths(vec![]));
        round_trip_reply(Reply::End { streamed: 100, limit: 100 });
        round_trip_reply(Reply::BatchOk {
            unique: 2,
            cache_hits: 1,
            preprocess_ns: 1,
            transfer_ns: 2,
            device_ns: 3,
            paths_per_query: vec![4, 4, 1],
        });
        round_trip_reply(Reply::Json("{\"engine\":\"device\"}".into()));
        round_trip_reply(Reply::UpdateOk { epoch: 3, edges: 2 });
        round_trip_reply(Reply::Bye);
        round_trip_reply(Reply::Busy);
        round_trip_reply(Reply::Error { code: ErrCode::BadQuery, message: "nope".into() });
    }

    #[test]
    fn truncated_frames_are_io_errors_not_panics() {
        let bytes = Request::Stream { s: 1, t: 2, k: 3, limit: 4 }.encode();
        for cut in 1..bytes.len() {
            let mut cursor = &bytes[..cut];
            let err = Request::read_from(&mut cursor).unwrap_err();
            assert!(matches!(err, WireError::Io(_)), "cut at {cut}: {err}");
        }
        let mut empty: &[u8] = &[];
        assert!(Request::read_from(&mut empty).unwrap().is_none());
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut bytes = Request::Query { s: 1, t: 2, k: 3 }.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let mut cursor: &[u8] = &bytes;
        assert!(matches!(read_frame(&mut cursor).unwrap_err(), WireError::Checksum { .. }));
    }

    #[test]
    fn bad_magic_and_oversized_lengths_are_rejected() {
        let mut bytes = Request::Stats.encode();
        bytes[0] = b'Q';
        let mut cursor: &[u8] = &bytes;
        assert!(matches!(read_frame(&mut cursor).unwrap_err(), WireError::BadMagic(b'Q')));

        let mut oversized = Request::Stats.encode();
        oversized[4..8].copy_from_slice(&(MAX_FRAME_PAYLOAD as u32 + 1).to_le_bytes());
        let mut cursor: &[u8] = &oversized;
        assert!(matches!(read_frame(&mut cursor).unwrap_err(), WireError::Oversized(_)));
    }

    #[test]
    fn absurd_counts_do_not_allocate() {
        // A BATCH frame claiming u32::MAX queries in a 16-byte payload must
        // fail the count guard, not attempt a 48 GiB Vec.
        let mut payload = Vec::new();
        payload.put_u32_le(u32::MAX);
        payload.put_u32_le(0);
        payload.put_u32_le(0);
        payload.put_u32_le(0);
        let frame = RawFrame { opcode: super::OP_BATCH, flags: 0, payload };
        assert!(matches!(Request::decode(&frame).unwrap_err(), WireError::Malformed(_)));
    }

    #[test]
    fn unknown_opcodes_and_trailing_bytes_are_malformed() {
        let frame = RawFrame { opcode: 0x7F, flags: 0, payload: Vec::new() };
        assert!(matches!(Request::decode(&frame).unwrap_err(), WireError::UnknownOpcode(0x7F)));
        let mut payload = Vec::new();
        payload.put_u32_le(1);
        payload.put_u32_le(2);
        payload.put_u32_le(3);
        payload.put_u8(0xEE);
        let frame = RawFrame { opcode: super::OP_QUERY, flags: 0, payload };
        assert!(matches!(Request::decode(&frame).unwrap_err(), WireError::Malformed(_)));
    }

    #[test]
    fn the_magic_byte_is_not_ascii() {
        // The front door's protocol sniff depends on this: no text command
        // can start with the frame magic.
        assert!(!FRAME_MAGIC.is_ascii());
    }
}
