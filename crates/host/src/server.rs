//! Line-oriented query server.
//!
//! The paper's system is interactive: a user submits path queries against a
//! loaded graph and expects answers with low latency (Fig. 2). This module
//! wraps a [`HostSession`] in a small text protocol so the session can be
//! driven from a terminal, a pipe or a test harness:
//!
//! ```text
//! > QUERY 0 42 5          enumerate 0 -> 42 paths with at most 5 hops
//! > COUNT 0 42 5          same, but only report the number of paths
//! > STREAM 0 42 5 [n]     stream up to n paths (default 100), chunk-wise
//! > BATCH 0 42 5 1 9 4 CUS=4   run a batch of (s t k) triples on 4 CUs
//! > EXPLAIN 0 42 5         routing decision, costs and rationale, as JSON
//! > STATS                  session + runtime statistics, as one-line JSON
//! > GRAPH                  one-line summary of the loaded graph
//! > HELP                   list the commands
//! > QUIT                   stop serving
//! ```
//!
//! Every reply line starts with `OK` or `ERR`, so the protocol is trivially
//! scriptable; `STREAM` is the one command whose reply spans several lines
//! (one per chunk of paths, then a final `OK end` line).
//!
//! Since the result pipeline went streaming, the server never materialises a
//! query's full result set: `QUERY` keeps only the first
//! [`MAX_INLINE_PATHS`] paths for its sample line while counting the rest,
//! and `STREAM` formats paths chunk-by-chunk through a bounded sink.
//!
//! The server is **multi-client**: [`serve`] drives one reader/writer pair
//! through one session, and [`serve_shared`] spawns a reader thread per
//! connection, every one of them a [`HostSession::attach`] handle funnelling
//! into one shared [`HostRuntime`] — many tenants, one admission queue, one
//! CU cluster. `STATS` then reports the runtime's queue depth, per-CU
//! utilisation and shared-cache hit rate (real JSON via
//! [`pefp_workload::ToJson`]) next to the per-session counters.

use crate::error::HostError;
use crate::query::QueryRequest;
use crate::runtime::HostRuntime;
use crate::scheduler::{BatchScheduler, SchedulerConfig};
use crate::session::HostSession;
use pefp_fpga::MultiCuConfig;
use pefp_graph::sink::{FirstN, PathSink};
use pefp_graph::{GraphDelta, VertexId};
use pefp_workload::{JsonValue, ToJson};
use std::io::{BufRead, Write};
use std::ops::ControlFlow;
use std::sync::Arc;

/// Maximum number of paths printed inline on an `OK` reply; the rest are
/// summarised by their count. Also the chunk size of `STREAM` reply lines.
pub const MAX_INLINE_PATHS: usize = 5;

/// Default cap on the number of paths a `STREAM` command emits.
pub const DEFAULT_STREAM_LIMIT: u64 = 100;

/// Hard ceiling on a `STREAM` command's limit. The reply is assembled before
/// it is written, so the formatted chunks live in memory until the command
/// finishes; the ceiling keeps that bounded regardless of what the client
/// asks for.
pub const MAX_STREAM_LIMIT: u64 = 10_000;

/// The reply to one protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Successful command with a human/machine readable payload.
    Ok(String),
    /// Failed command with an error message.
    Err(String),
    /// A successful `STREAM` command: one payload per chunk of paths, each
    /// rendered as its own `OK` line.
    Stream(Vec<String>),
    /// The client asked to stop (`QUIT`); contains the farewell payload.
    Quit(String),
}

impl Reply {
    /// Renders the reply as the protocol line(s) sent to the client. Only
    /// [`Reply::Stream`] spans multiple lines; every line carries its own
    /// `OK`/`ERR` prefix.
    pub fn render(&self) -> String {
        match self {
            Reply::Ok(msg) => format!("OK {msg}"),
            Reply::Err(msg) => format!("ERR {msg}"),
            Reply::Stream(chunks) => {
                chunks.iter().map(|c| format!("OK {c}")).collect::<Vec<_>>().join("\n")
            }
            Reply::Quit(msg) => format!("OK {msg}"),
        }
    }
}

fn format_path(path: &[VertexId]) -> String {
    path.iter().map(|v| v.0.to_string()).collect::<Vec<_>>().join("->")
}

fn format_paths(paths: &[Vec<VertexId>]) -> String {
    paths.iter().take(MAX_INLINE_PATHS).map(|p| format_path(p)).collect::<Vec<_>>().join(" ")
}

/// Keeps the first [`MAX_INLINE_PATHS`] paths for the `QUERY` sample line and
/// counts the rest — the whole result set is never materialised.
#[derive(Debug, Default)]
struct SampleSink {
    first: Vec<Vec<VertexId>>,
}

impl PathSink for SampleSink {
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        if self.first.len() < MAX_INLINE_PATHS {
            self.first.push(path.to_vec());
        }
        ControlFlow::Continue(())
    }
}

/// Formats streamed paths into reply chunks of [`MAX_INLINE_PATHS`] paths
/// each; memory stays O(emitted / chunk) formatted text, with no path vector
/// retained.
#[derive(Debug, Default)]
struct ChunkSink {
    chunks: Vec<String>,
    current: Vec<String>,
}

impl ChunkSink {
    fn finish(mut self) -> Vec<String> {
        if !self.current.is_empty() {
            self.chunks.push(format!("paths {}", self.current.join(" ")));
        }
        self.chunks
    }
}

impl PathSink for ChunkSink {
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        self.current.push(format_path(path));
        if self.current.len() >= MAX_INLINE_PATHS {
            self.chunks.push(format!("paths {}", self.current.join(" ")));
            self.current.clear();
        }
        ControlFlow::Continue(())
    }
}

/// Executes one protocol line against `session` and returns the reply.
pub fn handle_line(session: &mut HostSession, line: &str) -> Reply {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Reply::Err("empty command; try HELP".to_string());
    }
    let mut parts = trimmed.split_whitespace();
    let command = parts.next().unwrap_or_default().to_ascii_uppercase();
    let rest: Vec<&str> = parts.collect();

    match command.as_str() {
        "HELP" => Reply::Ok(
            "commands: QUERY <s> <t> <k> | COUNT <s> <t> <k> | STREAM <s> <t> <k> [limit] | \
             BATCH <s> <t> <k> [<s> <t> <k> ...] [CUS=<n>] (no CUS: fair shared-runtime batch; \
             CUS=n: measured dispatch on n CUs) | EXPLAIN <s> <t> <k> (routing decision, \
             per-engine costs, features and rationale as JSON, without running) | \
             UPDATE <u> <v> [<u> <v> ...] (insert edges, \
             advances the graph epoch) | EXPIRE <u> <v> [<u> <v> ...] (remove edges) | \
             GRAPH | STATS | HELP | QUIT"
                .to_string(),
        ),
        "QUIT" | "EXIT" => Reply::Quit("bye".to_string()),
        "GRAPH" => match session.graph() {
            Some(handle) => Reply::Ok(handle.summary()),
            None => Reply::Err(HostError::NoGraphLoaded.to_string()),
        },
        "STATS" => {
            // Real JSON (hand-rolled, the serde shims cannot): the session's
            // counters plus — when a graph is loaded — the runtime's queue
            // depth, per-CU utilisation and shared-cache hit rate.
            let mut pairs = vec![("session", session.stats().to_json())];
            if let Some(runtime) = session.runtime() {
                pairs.push(("runtime", runtime.stats().to_json()));
            }
            Reply::Ok(format!("stats {}", JsonValue::object(pairs).render()))
        }
        "QUERY" | "COUNT" => {
            let spec = rest.join(" ");
            let request = match QueryRequest::parse(&spec) {
                Ok(r) => r,
                Err(e) => return Reply::Err(e.to_string()),
            };
            // COUNT runs a counting job — the result set is tallied on the
            // worker, no path ever crosses a thread. QUERY streams through a
            // sink that keeps only the sample paths. Either way the full
            // result set is never held by the server.
            let (outcome, sample) = if command == "COUNT" {
                (session.run_query_counting(request), Vec::new())
            } else {
                let mut sink = SampleSink::default();
                let outcome = session.run_query_streaming(request, &mut sink);
                (outcome, sink.first)
            };
            match outcome {
                Ok(outcome) => {
                    let timing = format!(
                        "t1_ms={:.3} transfer_ms={:.3} t2_ms={:.3}",
                        outcome.preprocess_millis,
                        outcome.transfer.total_millis,
                        outcome.device_millis
                    );
                    if sample.is_empty() {
                        Reply::Ok(format!("paths={} {timing}", outcome.num_paths))
                    } else {
                        Reply::Ok(format!(
                            "paths={} {timing} sample: {}",
                            outcome.num_paths,
                            format_paths(&sample)
                        ))
                    }
                }
                Err(e) => Reply::Err(e.to_string()),
            }
        }
        "STREAM" => {
            let (spec, limit) = match rest.len() {
                4 => match rest[3].parse::<u64>() {
                    Ok(limit) => (rest[..3].join(" "), limit),
                    Err(_) => {
                        return Reply::Err(format!("invalid stream limit {:?}", rest[3]));
                    }
                },
                _ => (rest.join(" "), DEFAULT_STREAM_LIMIT),
            };
            let request = match QueryRequest::parse(&spec) {
                Ok(r) => r,
                Err(e) => return Reply::Err(e.to_string()),
            };
            let limit = limit.min(MAX_STREAM_LIMIT);
            if limit == 0 {
                // A saturated FirstN would refuse the first path after the
                // engine already found it; skip the run entirely instead.
                return Reply::Stream(vec!["end streamed=0 limit=0".to_string()]);
            }
            let mut sink = FirstN::new(limit, ChunkSink::default());
            match session.run_query_streaming(request, &mut sink) {
                Ok(outcome) => {
                    let mut chunks = sink.into_inner().finish();
                    chunks.push(format!("end streamed={} limit={limit}", outcome.num_paths));
                    Reply::Stream(chunks)
                }
                Err(e) => Reply::Err(e.to_string()),
            }
        }
        "EXPLAIN" => {
            // The adaptive router's decision for this query — engine, the
            // modelled per-engine costs, the feature vector and one rationale
            // line per decision step, as real JSON. Nothing is executed.
            let spec = rest.join(" ");
            let request = match QueryRequest::parse(&spec) {
                Ok(r) => r,
                Err(e) => return Reply::Err(e.to_string()),
            };
            let Some(runtime) = session.runtime() else {
                return Reply::Err(HostError::NoGraphLoaded.to_string());
            };
            match runtime.explain(request) {
                Ok(decision) => Reply::Ok(format!("explain {}", decision.to_json().render())),
                Err(e) => Reply::Err(e.to_string()),
            }
        }
        "BATCH" => handle_batch(session, &rest),
        "UPDATE" => handle_update(session, UpdateMode::Insert, &rest),
        "EXPIRE" => handle_update(session, UpdateMode::Remove, &rest),
        other => Reply::Err(format!("unknown command {other:?}; try HELP")),
    }
}

/// Hard ceiling on the number of `(u v)` edge pairs one `UPDATE`/`EXPIRE`
/// line may carry, bounding the delta one command can stage.
pub const MAX_UPDATE_EDGES: usize = 4096;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UpdateMode {
    Insert,
    Remove,
}

/// `UPDATE u v [u v ...]` inserts the listed edges; `EXPIRE u v [u v ...]`
/// removes them. Either way the whole line is applied as **one**
/// [`GraphDelta`] batch — one new epoch, one cache-invalidation sweep — and
/// the reply reports the epoch it produced. In-flight queries keep answering
/// on the snapshot they were admitted under.
fn handle_update(session: &mut HostSession, mode: UpdateMode, args: &[&str]) -> Reply {
    let verb = match mode {
        UpdateMode::Insert => "UPDATE",
        UpdateMode::Remove => "EXPIRE",
    };
    if args.is_empty() || !args.len().is_multiple_of(2) {
        return Reply::Err(format!(
            "{verb} expects (u v) edge pairs, got {} argument(s); try HELP",
            args.len()
        ));
    }
    if args.len() / 2 > MAX_UPDATE_EDGES {
        return Reply::Err(format!(
            "{verb} accepts at most {MAX_UPDATE_EDGES} edges, got {}",
            args.len() / 2
        ));
    }
    let mut delta = GraphDelta::new();
    for pair in args.chunks_exact(2) {
        let parse = |tok: &str| {
            tok.parse::<u32>()
                .map_err(|_| format!("vertex must be a non-negative integer, got {tok:?}"))
        };
        let (u, v) = match (parse(pair[0]), parse(pair[1])) {
            (Ok(u), Ok(v)) => (VertexId(u), VertexId(v)),
            (Err(e), _) | (_, Err(e)) => return Reply::Err(e),
        };
        match mode {
            UpdateMode::Insert => delta.insert_edge(u, v),
            UpdateMode::Remove => delta.remove_edge(u, v),
        };
    }
    match session.apply_updates(&delta) {
        Ok(epoch) => Reply::Ok(format!("epoch={epoch} edges={}", delta.len())),
        Err(e) => Reply::Err(e.to_string()),
    }
}

/// Hard ceiling on a `BATCH` command's `CUS=` value. Dispatch mode spawns
/// one OS thread per CU, so an unbounded client-supplied count would let a
/// single protocol line exhaust the process's thread budget.
pub const MAX_BATCH_CUS: usize = 64;

/// Hard ceiling on the number of `(s t k)` triples one `BATCH` line may
/// carry, bounding the host-side staging work a single command can demand.
pub const MAX_BATCH_QUERIES: usize = 4096;

/// `BATCH s t k [s t k ...] [CUS=n]`: counts the result paths of every triple
/// in one batch.
///
/// Without `CUS=`, the batch is submitted through the session's shared
/// [`HostRuntime`] (`HostSession::run_batch`): it enters the admission queue
/// as one fairness unit, shares the prepared-query cache and CU pool with
/// every other tenant, and is subject to `QueueFull` backpressure — the
/// multi-tenant production path.
///
/// With `CUS=n` (capped at [`MAX_BATCH_CUS`]), the batch instead runs the
/// *measured* dispatch mode on a private [`BatchScheduler`] cluster of `n`
/// CUs — an explicit benchmarking request whose reply reports the measured
/// makespan, speedup and model error of the discrete-event execution; it
/// bypasses the session's per-query bookkeeping.
fn handle_batch(session: &mut HostSession, args: &[&str]) -> Reply {
    if session.graph().is_none() {
        return Reply::Err(HostError::NoGraphLoaded.to_string());
    }
    let (cus, triples) = match args.last() {
        Some(last) => match last.strip_prefix("CUS=") {
            Some(n) => match n.parse::<usize>() {
                // Clamp like STREAM clamps its limit; the reply's `cus=`
                // field reports the clamped value, so the cap is visible.
                Ok(n) if n >= 1 => (Some(n.min(MAX_BATCH_CUS)), &args[..args.len() - 1]),
                _ => {
                    return Reply::Err(format!("invalid CUS value {n:?} (want a positive integer)"))
                }
            },
            None => (None, args),
        },
        None => (None, args),
    };
    if triples.is_empty() || triples.len() % 3 != 0 {
        return Reply::Err(format!(
            "BATCH expects (s t k) triples, got {} argument(s); try HELP",
            triples.len()
        ));
    }
    if triples.len() / 3 > MAX_BATCH_QUERIES {
        return Reply::Err(format!(
            "BATCH accepts at most {MAX_BATCH_QUERIES} queries, got {}",
            triples.len() / 3
        ));
    }
    let mut requests = Vec::with_capacity(triples.len() / 3);
    for triple in triples.chunks_exact(3) {
        match QueryRequest::parse(&triple.join(" ")) {
            Ok(request) => requests.push(request),
            Err(e) => return Reply::Err(e.to_string()),
        }
    }

    // Default path: the multi-tenant runtime batch.
    let Some(cus) = cus else {
        return match session.run_batch(&requests) {
            Ok(outcome) => Reply::Ok(format!(
                "queries={} unique={} paths={} cache_hits={} queue=runtime \
                 t1_ms={:.3} transfer_ms={:.3} t2_ms={:.3}",
                outcome.results.len(),
                outcome.results.len() - outcome.deduplicated,
                outcome.total_paths(),
                outcome.cache_hits,
                outcome.preprocess_millis,
                outcome.transfer_millis,
                outcome.device_millis,
            )),
            Err(e) => Reply::Err(e.to_string()),
        };
    };

    // Explicit CUS=n: the measured discrete-event dispatch mode on a
    // private cluster.
    let handle = session.graph().expect("graph checked above").clone();
    let scheduler = BatchScheduler::new(SchedulerConfig {
        device: session.config().device.clone(),
        variant: session.config().variant,
        dispatch: true,
        multi_cu: MultiCuConfig { compute_units: cus, ..MultiCuConfig::default() },
        ..SchedulerConfig::default()
    });
    match scheduler.run_batch(&handle, &requests) {
        Ok(outcome) => {
            let measured = outcome.measured.as_ref().expect("dispatch batches are measured");
            Reply::Ok(format!(
                "queries={} unique={} paths={} cus={} makespan_cycles={} serial_cycles={} \
                 measured_speedup={:.2}x predicted_makespan_cycles={} model_err={:.1}% \
                 t1_ms={:.3} transfer_ms={:.3} wall_ms={:.3}",
                outcome.results.len(),
                outcome.results.len() - outcome.deduplicated,
                outcome.total_paths(),
                measured.compute_units,
                measured.makespan_cycles,
                measured.serial_cycles,
                measured.speedup(),
                measured.predicted.makespan_cycles,
                measured.model_error() * 100.0,
                outcome.preprocess_millis,
                outcome.transfer.total_millis,
                measured.wall_millis,
            ))
        }
        Err(e) => Reply::Err(e.to_string()),
    }
}

/// Hard cap on one protocol line's length in bytes. A peer pushing an
/// unterminated megabyte "line" must not make the server buffer it: past the
/// cap the rest of the line is drained and discarded, and the client gets a
/// single `ERR` reply.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Outcome of reading one protocol line under [`MAX_LINE_BYTES`].
enum LineRead {
    /// Input exhausted.
    Eof,
    /// One complete, valid UTF-8 line (without the newline).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; the remainder was drained.
    TooLong,
    /// The line was not valid UTF-8.
    NonUtf8,
}

/// Consumes input up to and including the next newline without buffering it.
fn drain_line<R: BufRead>(reader: &mut R) -> std::io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(i) => {
                reader.consume(i + 1);
                return Ok(());
            }
            None => {
                let len = available.len();
                reader.consume(len);
            }
        }
    }
}

/// Reads one line as raw bytes, enforcing the length cap *before* any UTF-8
/// interpretation — untrusted input never reaches `String` unvalidated and
/// never grows an unbounded buffer.
fn read_line_capped<R: BufRead>(reader: &mut R) -> std::io::Result<LineRead> {
    use std::io::Read;
    let mut buf = Vec::new();
    let n = reader.by_ref().take(MAX_LINE_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if buf.len() > MAX_LINE_BYTES {
        drain_line(reader)?;
        return Ok(LineRead::TooLong);
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(LineRead::Line(line)),
        Err(_) => Ok(LineRead::NonUtf8),
    }
}

/// Formats streamed paths into chunk lines written to the client *as they are
/// produced* (unlike [`ChunkSink`], which assembles the reply first). A write
/// failure — the client hung up mid-`STREAM` — breaks the sink, which makes
/// the session cancel the running job's ticket; the engine stops at its next
/// boundary and the CU goes back to the pool.
struct WriterChunkSink<'w, W: Write> {
    writer: &'w mut W,
    current: Vec<String>,
    error: Option<std::io::Error>,
}

impl<W: Write> WriterChunkSink<'_, W> {
    fn write_chunk(&mut self) -> ControlFlow<()> {
        let line = format!("OK paths {}", self.current.join(" "));
        self.current.clear();
        match writeln!(self.writer, "{line}").and_then(|()| self.writer.flush()) {
            Ok(()) => ControlFlow::Continue(()),
            Err(e) => {
                self.error = Some(e);
                ControlFlow::Break(())
            }
        }
    }
}

impl<W: Write> PathSink for WriterChunkSink<'_, W> {
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        self.current.push(format_path(path));
        if self.current.len() >= MAX_INLINE_PATHS {
            self.write_chunk()
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// Handles one `STREAM` line incrementally against `writer`. Parse errors
/// become `ERR` replies; an I/O error (client gone) aborts the connection and
/// cancels the in-flight job through the sink-break → ticket-cancel path.
fn stream_to_writer<W: Write>(
    session: &mut HostSession,
    rest: &[&str],
    writer: &mut W,
) -> std::io::Result<()> {
    let (spec, limit) = match rest.len() {
        4 => match rest[3].parse::<u64>() {
            Ok(limit) => (rest[..3].join(" "), limit),
            Err(_) => {
                return writeln!(writer, "ERR invalid stream limit {:?}", rest[3]);
            }
        },
        _ => (rest.join(" "), DEFAULT_STREAM_LIMIT),
    };
    let request = match QueryRequest::parse(&spec) {
        Ok(r) => r,
        Err(e) => return writeln!(writer, "ERR {e}"),
    };
    let limit = limit.min(MAX_STREAM_LIMIT);
    if limit == 0 {
        return writeln!(writer, "OK end streamed=0 limit=0");
    }
    let mut sink = FirstN::new(limit, WriterChunkSink { writer, current: Vec::new(), error: None });
    let outcome = session.run_query_streaming(request, &mut sink);
    let inner = sink.into_inner();
    if let Some(e) = inner.error {
        return Err(e);
    }
    let tail = inner.current;
    match outcome {
        Ok(outcome) => {
            if !tail.is_empty() {
                writeln!(writer, "OK paths {}", tail.join(" "))?;
            }
            writeln!(writer, "OK end streamed={} limit={limit}", outcome.num_paths)
        }
        Err(e) => writeln!(writer, "ERR {e}"),
    }
}

/// Serves the protocol over a reader/writer pair until `QUIT` or end of
/// input. Returns the number of lines processed.
///
/// Untrusted-input guarantees: lines are read as raw bytes under
/// [`MAX_LINE_BYTES`] (overlong lines are drained and answered with one
/// `ERR`), non-UTF-8 lines get an `ERR` reply instead of killing the
/// connection, and no command can panic the serving thread. `STREAM` replies
/// are written chunk-by-chunk, so a client that disconnects mid-stream
/// cancels the running job instead of leaving it to fill a dead buffer.
pub fn serve<R: BufRead, W: Write>(
    session: &mut HostSession,
    mut reader: R,
    mut writer: W,
) -> std::io::Result<usize> {
    let mut served = 0usize;
    loop {
        let line = match read_line_capped(&mut reader)? {
            LineRead::Eof => break,
            LineRead::TooLong => {
                served += 1;
                writeln!(writer, "ERR line exceeds {MAX_LINE_BYTES} bytes")?;
                continue;
            }
            LineRead::NonUtf8 => {
                served += 1;
                writeln!(writer, "ERR line is not valid UTF-8")?;
                continue;
            }
            LineRead::Line(line) => line,
        };
        served += 1;
        let mut parts = line.split_whitespace();
        if parts.next().is_some_and(|cmd| cmd.eq_ignore_ascii_case("STREAM")) {
            let rest: Vec<&str> = parts.collect();
            stream_to_writer(session, &rest, &mut writer)?;
            continue;
        }
        let reply = handle_line(session, &line);
        writeln!(writer, "{}", reply.render())?;
        if matches!(reply, Reply::Quit(_)) {
            break;
        }
    }
    Ok(served)
}

/// Serves many clients concurrently against one shared [`HostRuntime`]: one
/// reader thread per connection, each running the [`serve`] loop over its own
/// [`HostSession::attach`] handle, all funnelling into the runtime's
/// admission queue. Returns the number of lines processed per connection (in
/// input order); the first I/O error aborts only its own connection and is
/// reported after every other client finished.
pub fn serve_shared<R, W>(
    runtime: &Arc<HostRuntime>,
    connections: Vec<(R, W)>,
) -> std::io::Result<Vec<usize>>
where
    R: BufRead + Send,
    W: Write + Send,
{
    let outcomes: Vec<std::io::Result<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = connections
            .into_iter()
            .map(|(reader, writer)| {
                let runtime = Arc::clone(runtime);
                scope.spawn(move || {
                    let mut session = HostSession::attach(runtime);
                    serve(&mut session, reader, writer)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    });
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use pefp_graph::CsrGraph;
    use std::io::Cursor;

    fn session() -> HostSession {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        HostSession::with_graph(g, SessionConfig::default())
    }

    #[test]
    fn query_command_reports_paths_and_timing() {
        let mut s = session();
        let reply = handle_line(&mut s, "QUERY 0 3 3");
        match reply {
            Reply::Ok(msg) => {
                assert!(msg.contains("paths=2"), "{msg}");
                assert!(msg.contains("t2_ms="));
                assert!(msg.contains("sample:"));
                assert!(msg.contains("0->1->3") || msg.contains("0->2->3"));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn count_command_omits_the_sample() {
        let mut s = session();
        match handle_line(&mut s, "count 0 3 3") {
            Reply::Ok(msg) => {
                assert!(msg.contains("paths=2"));
                assert!(!msg.contains("sample:"));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut s = session();
        assert!(matches!(handle_line(&mut s, ""), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "FROBNICATE 1 2 3"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "QUERY 0 99 3"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "QUERY a b c"), Reply::Err(_)));
        // The session is still usable afterwards.
        assert!(matches!(handle_line(&mut s, "QUERY 0 3 3"), Reply::Ok(_)));
    }

    #[test]
    fn stats_command_emits_parseable_json_for_session_and_runtime() {
        let mut s = session();
        handle_line(&mut s, "QUERY 0 3 3");
        match handle_line(&mut s, "STATS") {
            Reply::Ok(msg) => {
                let json = msg.strip_prefix("stats ").expect("stats payload");
                let doc = JsonValue::parse(json).expect("STATS must be real JSON");
                let session_stats = doc.get("session").expect("session section");
                assert_eq!(session_stats.get("queries").and_then(JsonValue::as_number), Some(1.0));
                assert_eq!(
                    session_stats.get("total_paths").and_then(JsonValue::as_number),
                    Some(2.0)
                );
                let runtime = doc.get("runtime").expect("runtime section");
                assert_eq!(runtime.get("queue_depth").and_then(JsonValue::as_number), Some(0.0));
                assert_eq!(runtime.get("completed").and_then(JsonValue::as_number), Some(1.0));
                assert!(runtime.get("per_cu_utilisation").is_some());
                assert!(runtime.get("cache_hit_rate").is_some());
            }
            other => panic!("unexpected reply {other:?}"),
        }
        match handle_line(&mut s, "GRAPH") {
            Reply::Ok(msg) => assert!(msg.contains("4 vertices")),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn explain_command_emits_the_routing_decision_as_json() {
        let mut s = session();
        match handle_line(&mut s, "EXPLAIN 0 3 3") {
            Reply::Ok(msg) => {
                let json = msg.strip_prefix("explain ").expect("explain payload");
                let doc = JsonValue::parse(json).expect("EXPLAIN must be real JSON");
                assert!(doc.get("engine").and_then(JsonValue::as_str).is_some());
                let features = doc.get("features").expect("feature vector");
                assert_eq!(features.get("k").and_then(JsonValue::as_number), Some(3.0));
                assert_eq!(features.get("feasible"), Some(&JsonValue::Bool(true)));
                let costs = doc.get("costs_us").expect("per-engine costs");
                for engine in ["bc_dfs", "join", "device", "device_multi_cu"] {
                    assert!(costs.get(engine).is_some(), "missing cost for {engine}");
                }
                let rationale = doc.get("rationale").and_then(JsonValue::as_array).unwrap();
                assert!(!rationale.is_empty(), "rationale must explain the decision");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // EXPLAIN runs nothing: the session served no query.
        assert_eq!(s.stats().queries, 0);
        // Malformed and out-of-range requests fail like QUERY's do.
        assert!(matches!(handle_line(&mut s, "EXPLAIN 0 3"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "EXPLAIN 0 99 3"), Reply::Err(_)));
    }

    #[test]
    fn serve_shared_funnels_many_clients_into_one_runtime() {
        use crate::loader::GraphHandle;
        use crate::runtime::{HostRuntime, RuntimeConfig};
        use pefp_graph::CsrGraph;

        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let runtime = HostRuntime::launch(
            GraphHandle::from_csr("shared", g),
            RuntimeConfig { compute_units: 2, ..RuntimeConfig::default() },
        );
        let connections: Vec<(Cursor<String>, Vec<u8>)> = (0..3)
            .map(|_| (Cursor::new("QUERY 0 3 3\nCOUNT 0 3 2\nQUIT\n".to_string()), Vec::new()))
            .collect();
        let served = serve_shared(&runtime, connections).unwrap();
        assert_eq!(served, vec![3, 3, 3]);
        let stats = runtime.stats();
        assert_eq!(stats.completed, 6, "3 clients x 2 queries each");
        // The tenants share one prepared-query cache: (0,3,3) and (0,3,2)
        // need preparing once each (plus any cold-key race between clients),
        // and the bulk of the repetition is served from the cache.
        assert_eq!(stats.cache_hits + stats.cache_misses, 6);
        assert!(stats.cache_misses >= 2);
        assert!(stats.cache_hits >= 2, "shared cache must absorb cross-tenant repeats");
        assert_eq!(stats.per_cu_jobs.iter().sum::<u64>(), 6);
    }

    #[test]
    fn stream_command_chunks_paths_and_honours_the_limit() {
        let mut s = session();
        match handle_line(&mut s, "STREAM 0 3 3") {
            Reply::Stream(chunks) => {
                assert_eq!(chunks.len(), 2, "one path chunk + the end line: {chunks:?}");
                assert!(chunks[0].starts_with("paths "));
                assert!(chunks[0].contains("0->1->3") && chunks[0].contains("0->2->3"));
                assert_eq!(chunks[1], "end streamed=2 limit=100");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // An explicit limit terminates the enumeration early.
        match handle_line(&mut s, "STREAM 0 3 3 1") {
            Reply::Stream(chunks) => {
                assert_eq!(chunks.len(), 2);
                assert_eq!(chunks[0].matches("->").count(), 2, "exactly one 3-vertex path");
                assert_eq!(chunks[1], "end streamed=1 limit=1");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // Every rendered line is prefixed, including stream chunks.
        let rendered = handle_line(&mut s, "STREAM 0 3 3").render();
        assert!(rendered.lines().count() > 1);
        assert!(rendered.lines().all(|l| l.starts_with("OK ")));
        // Bad limits and bad specs are single-line errors.
        assert!(matches!(handle_line(&mut s, "STREAM 0 3 3 x"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "STREAM 0 3"), Reply::Err(_)));
        // A zero limit streams nothing and never runs the engine.
        match handle_line(&mut s, "STREAM 0 3 3 0") {
            Reply::Stream(chunks) => assert_eq!(chunks, vec!["end streamed=0 limit=0"]),
            other => panic!("unexpected reply {other:?}"),
        }
        // The server never materialised a result set for any of the above.
        assert_eq!(s.stats().materialised_paths, 0);
        assert!(s.stats().emitted_paths >= 5);
    }

    #[test]
    fn batch_command_runs_triples_on_the_requested_cus() {
        let mut s = session();
        match handle_line(&mut s, "BATCH 0 3 3 0 3 2 1 3 2 CUS=2") {
            Reply::Ok(msg) => {
                assert!(msg.contains("queries=3"), "{msg}");
                assert!(msg.contains("paths=5"), "2 + 2 + 1 paths: {msg}");
                assert!(msg.contains("cus=2"), "{msg}");
                assert!(msg.contains("makespan_cycles="), "{msg}");
                assert!(msg.contains("measured_speedup="), "{msg}");
                assert!(msg.contains("model_err="), "{msg}");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // Without CUS= the batch runs through the shared runtime (fair
        // admission queue, shared cache); duplicates are deduplicated.
        match handle_line(&mut s, "BATCH 0 3 3 0 3 3") {
            Reply::Ok(msg) => {
                assert!(msg.contains("queries=2"), "{msg}");
                assert!(msg.contains("unique=1"), "{msg}");
                assert!(msg.contains("queue=runtime"), "{msg}");
                assert!(msg.contains("paths=4"), "both slots answered: {msg}");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // The runtime batch shows up in the session's own statistics (the
        // dispatch-mode batches above bypassed them).
        assert_eq!(s.stats().queries, 2);
        assert_eq!(s.stats().total_paths, 4);
    }

    #[test]
    fn batch_cus_is_clamped_to_the_thread_budget() {
        let mut s = session();
        // An absurd CUS value must not spawn an absurd number of threads;
        // the reply reports the clamped width.
        match handle_line(&mut s, "BATCH 0 3 3 CUS=1000000") {
            Reply::Ok(msg) => {
                assert!(msg.contains(&format!("cus={MAX_BATCH_CUS}")), "{msg}");
                assert!(msg.contains("paths=2"), "{msg}");
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn batch_command_rejects_malformed_input() {
        let mut s = session();
        assert!(matches!(handle_line(&mut s, "BATCH"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "BATCH 0 3"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "BATCH 0 3 3 CUS=0"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "BATCH 0 3 3 CUS=x"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "BATCH 0 99 3"), Reply::Err(_)));
        let mut empty = HostSession::new(SessionConfig::default());
        assert!(matches!(handle_line(&mut empty, "BATCH 0 3 3"), Reply::Err(_)));
        // The session is still usable afterwards.
        assert!(matches!(handle_line(&mut s, "BATCH 0 3 3"), Reply::Ok(_)));
    }

    #[test]
    fn update_and_expire_advance_the_epoch_and_change_answers() {
        let mut s = session();
        match handle_line(&mut s, "COUNT 0 3 3") {
            Reply::Ok(msg) => assert!(msg.contains("paths=2"), "{msg}"),
            other => panic!("unexpected reply {other:?}"),
        }
        match handle_line(&mut s, "UPDATE 0 3") {
            Reply::Ok(msg) => assert_eq!(msg, "epoch=1 edges=1"),
            other => panic!("unexpected reply {other:?}"),
        }
        match handle_line(&mut s, "COUNT 0 3 3") {
            Reply::Ok(msg) => assert!(msg.contains("paths=3"), "new direct edge: {msg}"),
            other => panic!("unexpected reply {other:?}"),
        }
        match handle_line(&mut s, "EXPIRE 0 3") {
            Reply::Ok(msg) => assert_eq!(msg, "epoch=2 edges=1"),
            other => panic!("unexpected reply {other:?}"),
        }
        match handle_line(&mut s, "COUNT 0 3 3") {
            Reply::Ok(msg) => assert!(msg.contains("paths=2"), "removal undone: {msg}"),
            other => panic!("unexpected reply {other:?}"),
        }
        // STATS reports the live epoch and the update counters.
        match handle_line(&mut s, "STATS") {
            Reply::Ok(msg) => {
                let json = msg.strip_prefix("stats ").expect("stats payload");
                let doc = JsonValue::parse(json).expect("STATS must be real JSON");
                let runtime = doc.get("runtime").expect("runtime section");
                assert_eq!(runtime.get("epoch").and_then(JsonValue::as_number), Some(2.0));
                assert_eq!(runtime.get("graph_updates").and_then(JsonValue::as_number), Some(2.0));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn update_command_rejects_malformed_input() {
        let mut s = session();
        assert!(matches!(handle_line(&mut s, "UPDATE"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "UPDATE 0"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "UPDATE 0 1 2"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "EXPIRE 0 x"), Reply::Err(_)));
        let mut empty = HostSession::new(SessionConfig::default());
        assert!(matches!(handle_line(&mut empty, "UPDATE 0 1"), Reply::Err(_)));
        // The session is still usable afterwards.
        assert!(matches!(handle_line(&mut s, "UPDATE 0 3 1 2"), Reply::Ok(_)));
    }

    #[test]
    fn serve_processes_a_script_and_stops_at_quit() {
        let mut s = session();
        let script = "HELP\nQUERY 0 3 3\nSTATS\nQUIT\nQUERY 0 3 3\n";
        let mut output = Vec::new();
        let served = serve(&mut s, Cursor::new(script), &mut output).unwrap();
        assert_eq!(served, 4, "the line after QUIT is not processed");
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with("OK") || l.starts_with("ERR")));
        assert!(lines[1].contains("paths=2"));
        assert!(lines[3].contains("bye"));
    }

    #[test]
    fn serve_handles_end_of_input_without_quit() {
        let mut s = session();
        let mut output = Vec::new();
        let served = serve(&mut s, Cursor::new("GRAPH\n"), &mut output).unwrap();
        assert_eq!(served, 1);
    }

    #[test]
    fn reply_rendering_prefixes_ok_and_err() {
        assert_eq!(Reply::Ok("x".into()).render(), "OK x");
        assert_eq!(Reply::Err("y".into()).render(), "ERR y");
        assert_eq!(Reply::Quit("bye".into()).render(), "OK bye");
    }

    #[test]
    fn query_without_a_loaded_graph_is_an_error_reply() {
        let mut s = HostSession::new(SessionConfig::default());
        assert!(matches!(handle_line(&mut s, "QUERY 0 1 2"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "GRAPH"), Reply::Err(_)));
    }

    #[test]
    fn overlong_lines_are_drained_and_answered_with_one_err() {
        let mut s = session();
        let mut script = Vec::new();
        script.extend_from_slice(vec![b'A'; MAX_LINE_BYTES + 5000].as_slice());
        script.extend_from_slice(b"\nQUERY 0 3 3\n");
        let mut output = Vec::new();
        let served = serve(&mut s, Cursor::new(script), &mut output).unwrap();
        assert_eq!(served, 2, "the flooded line counts once, then serving resumes");
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("ERR line exceeds"), "{}", lines[0]);
        assert!(lines[1].contains("paths=2"), "the connection survived: {}", lines[1]);
    }

    #[test]
    fn non_utf8_lines_get_an_err_reply_not_a_dead_connection() {
        let mut s = session();
        let mut script: Vec<u8> = Vec::new();
        script.extend_from_slice(b"QUERY \xff\xfe 3\n");
        script.extend_from_slice(b"COUNT 0 3 3\n");
        let mut output = Vec::new();
        let served = serve(&mut s, Cursor::new(script), &mut output).unwrap();
        assert_eq!(served, 2);
        let text = String::from_utf8(output).unwrap();
        assert!(text.lines().next().unwrap().starts_with("ERR line is not valid UTF-8"));
        assert!(text.contains("paths=2"));
    }

    #[test]
    fn fuzzed_command_bytes_never_panic_or_break_framing() {
        // Deterministic splitmix-style byte fuzz: random lines (garbage
        // bytes, truncated commands, huge numbers, control characters) must
        // all produce prefixed single-line replies and leave the session
        // serving. QUIT/EXIT opcodes are excluded so the whole script runs.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut script: Vec<u8> = Vec::new();
        let mut fed = 0usize;
        for _ in 0..400 {
            let len = (next() % 48) as usize;
            let mut line: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
            // Bias half the lines towards almost-valid commands so the parse
            // paths get exercised, not just the unknown-command arm.
            if next() % 2 == 0 {
                let stems: [&[u8]; 9] = [
                    b"QUERY ",
                    b"COUNT ",
                    b"STREAM ",
                    b"BATCH ",
                    b"UPDATE ",
                    b"EXPIRE ",
                    b"STATS ",
                    b"GRAPH ",
                    b"EXPLAIN ",
                ];
                let mut biased = stems[(next() % 9) as usize].to_vec();
                biased.extend_from_slice(&line);
                line = biased;
            }
            line.retain(|&b| b != b'\n');
            let upper: Vec<u8> = line.iter().map(|b| b.to_ascii_uppercase()).collect();
            if upper.starts_with(b"QUIT") || upper.starts_with(b"EXIT") {
                continue;
            }
            script.extend_from_slice(&line);
            script.push(b'\n');
            fed += 1;
        }
        let mut s = session();
        let mut output = Vec::new();
        let served = serve(&mut s, Cursor::new(script), &mut output).unwrap();
        assert_eq!(served, fed, "every fuzzed line got exactly one turn");
        let text = String::from_utf8(output).unwrap();
        for line in text.lines() {
            assert!(
                line.starts_with("OK ") || line.starts_with("ERR "),
                "unprefixed reply line: {line:?}"
            );
        }
        // The session still serves real queries afterwards.
        assert!(matches!(handle_line(&mut s, "QUERY 0 3 3"), Reply::Ok(_)));
    }

    /// A writer that accepts a bounded number of bytes and then fails every
    /// write — a client that hung up mid-reply.
    struct DroppingWriter {
        budget: usize,
        written: Vec<u8>,
    }

    impl Write for DroppingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written.len() + buf.len() > self.budget {
                return Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "client gone"));
            }
            self.written.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn client_dropping_mid_stream_cancels_the_running_job_and_frees_the_cu() {
        use crate::loader::GraphHandle;
        use crate::runtime::{HostRuntime, RuntimeConfig};
        use pefp_graph::generators::{layered_dag, layered_sink, layered_source};

        // 6^5 = 7776 paths: far beyond the 256-path stream channel, so the
        // engine is still enumerating when the client's writer dies on the
        // first chunk. The sink break cancels the ticket; the engine stops at
        // its next boundary (the runtime counts it in `cancelled_jobs`, the
        // aggregate of per-run `EngineStats::cancelled`) and the CU lease is
        // released back to the pool.
        let g = layered_dag(5, 6, 6, 1).to_csr();
        let query = format!("STREAM {} {} 6 10000\n", layered_source().0, layered_sink(5, 6).0);
        let runtime = HostRuntime::launch(
            GraphHandle::from_csr("layered", g),
            RuntimeConfig { compute_units: 1, ..RuntimeConfig::default() },
        );
        let writer = DroppingWriter { budget: 10, written: Vec::new() };
        let err = serve_shared(&runtime, vec![(Cursor::new(query), writer)])
            .expect_err("the dead client aborts its own connection");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        let stats = runtime.stats();
        assert_eq!(stats.cancelled_jobs, 1, "the running stream was cancelled");
        assert_eq!(runtime.leased_cus(), 0, "the CU lease was released");
        // The fleet is healthy: the next client's query runs normally.
        let session = runtime.register_session();
        let outcome = runtime
            .submit_query(session, QueryRequest::new(0, 1, 2), false)
            .unwrap()
            .wait()
            .unwrap();
        assert!(outcome.num_paths >= 1);
    }

    #[test]
    fn dropping_a_job_ticket_cancels_a_running_engine() {
        use crate::loader::GraphHandle;
        use crate::runtime::{HostRuntime, RuntimeConfig};
        use pefp_graph::generators::{layered_dag, layered_sink, layered_source};
        use std::time::{Duration, Instant};

        let g = layered_dag(5, 6, 6, 1).to_csr();
        let runtime = HostRuntime::launch(
            GraphHandle::from_csr("layered", g),
            RuntimeConfig { compute_units: 1, ..RuntimeConfig::default() },
        );
        let session = runtime.register_session();
        let request = QueryRequest::new(layered_source().0, layered_sink(5, 6).0, 6);
        let (ticket, rx) = runtime.submit_query_streaming(session, request, 1).unwrap();
        // The first received path proves the engine is running mid-stream.
        let first = rx.recv().expect("engine delivers at least one path");
        assert!(!first.is_empty());
        drop(ticket);
        drop(rx);
        let deadline = Instant::now() + Duration::from_secs(10);
        while runtime.stats().cancelled_jobs == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(runtime.stats().cancelled_jobs, 1, "ticket drop cancelled the engine");
        assert_eq!(runtime.leased_cus(), 0);
    }
}
