//! Line-oriented query server.
//!
//! The paper's system is interactive: a user submits path queries against a
//! loaded graph and expects answers with low latency (Fig. 2). This module
//! wraps a [`HostSession`] in a small text protocol so the session can be
//! driven from a terminal, a pipe or a test harness:
//!
//! ```text
//! > QUERY 0 42 5          enumerate 0 -> 42 paths with at most 5 hops
//! > COUNT 0 42 5          same, but only report the number of paths
//! > STATS                  session statistics so far
//! > GRAPH                  one-line summary of the loaded graph
//! > HELP                   list the commands
//! > QUIT                   stop serving
//! ```
//!
//! Every request produces exactly one reply line starting with `OK` or `ERR`,
//! so the protocol is trivially scriptable.

use crate::error::HostError;
use crate::query::QueryRequest;
use crate::session::HostSession;
use std::io::{BufRead, Write};

/// Maximum number of paths printed inline on an `OK` reply; the rest are
/// summarised by their count.
pub const MAX_INLINE_PATHS: usize = 5;

/// The reply to one protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Successful command with a human/machine readable payload.
    Ok(String),
    /// Failed command with an error message.
    Err(String),
    /// The client asked to stop (`QUIT`); contains the farewell payload.
    Quit(String),
}

impl Reply {
    /// Renders the reply as the single protocol line sent to the client.
    pub fn render(&self) -> String {
        match self {
            Reply::Ok(msg) => format!("OK {msg}"),
            Reply::Err(msg) => format!("ERR {msg}"),
            Reply::Quit(msg) => format!("OK {msg}"),
        }
    }
}

fn format_paths(paths: &[Vec<pefp_graph::VertexId>]) -> String {
    paths
        .iter()
        .take(MAX_INLINE_PATHS)
        .map(|p| p.iter().map(|v| v.0.to_string()).collect::<Vec<_>>().join("->"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Executes one protocol line against `session` and returns the reply.
pub fn handle_line(session: &mut HostSession, line: &str) -> Reply {
    let trimmed = line.trim();
    if trimmed.is_empty() {
        return Reply::Err("empty command; try HELP".to_string());
    }
    let mut parts = trimmed.split_whitespace();
    let command = parts.next().unwrap_or_default().to_ascii_uppercase();
    let rest: Vec<&str> = parts.collect();

    match command.as_str() {
        "HELP" => Reply::Ok(
            "commands: QUERY <s> <t> <k> | COUNT <s> <t> <k> | GRAPH | STATS | HELP | QUIT"
                .to_string(),
        ),
        "QUIT" | "EXIT" => Reply::Quit("bye".to_string()),
        "GRAPH" => match session.graph() {
            Some(handle) => Reply::Ok(handle.summary()),
            None => Reply::Err(HostError::NoGraphLoaded.to_string()),
        },
        "STATS" => {
            let stats = session.stats();
            Reply::Ok(format!(
                "queries={} rejected={} paths={} avg_total_ms={:.3}",
                stats.queries,
                stats.rejected,
                stats.total_paths,
                stats.avg_total_millis()
            ))
        }
        "QUERY" | "COUNT" => {
            let spec = rest.join(" ");
            let request = match QueryRequest::parse(&spec) {
                Ok(r) => r,
                Err(e) => return Reply::Err(e.to_string()),
            };
            match session.run_query(request) {
                Ok(outcome) => {
                    let timing = format!(
                        "t1_ms={:.3} transfer_ms={:.3} t2_ms={:.3}",
                        outcome.preprocess_millis,
                        outcome.transfer.total_millis,
                        outcome.device_millis
                    );
                    if command == "COUNT" || outcome.paths.is_empty() {
                        Reply::Ok(format!("paths={} {timing}", outcome.num_paths))
                    } else {
                        Reply::Ok(format!(
                            "paths={} {timing} sample: {}",
                            outcome.num_paths,
                            format_paths(&outcome.paths)
                        ))
                    }
                }
                Err(e) => Reply::Err(e.to_string()),
            }
        }
        other => Reply::Err(format!("unknown command {other:?}; try HELP")),
    }
}

/// Serves the protocol over a reader/writer pair until `QUIT` or end of
/// input. Returns the number of lines processed.
pub fn serve<R: BufRead, W: Write>(
    session: &mut HostSession,
    reader: R,
    mut writer: W,
) -> std::io::Result<usize> {
    let mut served = 0usize;
    for line in reader.lines() {
        let line = line?;
        let reply = handle_line(session, &line);
        writeln!(writer, "{}", reply.render())?;
        served += 1;
        if matches!(reply, Reply::Quit(_)) {
            break;
        }
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionConfig;
    use pefp_graph::CsrGraph;
    use std::io::Cursor;

    fn session() -> HostSession {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        HostSession::with_graph(g, SessionConfig::default())
    }

    #[test]
    fn query_command_reports_paths_and_timing() {
        let mut s = session();
        let reply = handle_line(&mut s, "QUERY 0 3 3");
        match reply {
            Reply::Ok(msg) => {
                assert!(msg.contains("paths=2"), "{msg}");
                assert!(msg.contains("t2_ms="));
                assert!(msg.contains("sample:"));
                assert!(msg.contains("0->1->3") || msg.contains("0->2->3"));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn count_command_omits_the_sample() {
        let mut s = session();
        match handle_line(&mut s, "count 0 3 3") {
            Reply::Ok(msg) => {
                assert!(msg.contains("paths=2"));
                assert!(!msg.contains("sample:"));
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut s = session();
        assert!(matches!(handle_line(&mut s, ""), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "FROBNICATE 1 2 3"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "QUERY 0 99 3"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "QUERY a b c"), Reply::Err(_)));
        // The session is still usable afterwards.
        assert!(matches!(handle_line(&mut s, "QUERY 0 3 3"), Reply::Ok(_)));
    }

    #[test]
    fn stats_and_graph_commands_summarise_the_session() {
        let mut s = session();
        handle_line(&mut s, "QUERY 0 3 3");
        match handle_line(&mut s, "STATS") {
            Reply::Ok(msg) => {
                assert!(msg.contains("queries=1"));
                assert!(msg.contains("paths=2"));
            }
            other => panic!("unexpected reply {other:?}"),
        }
        match handle_line(&mut s, "GRAPH") {
            Reply::Ok(msg) => assert!(msg.contains("4 vertices")),
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn serve_processes_a_script_and_stops_at_quit() {
        let mut s = session();
        let script = "HELP\nQUERY 0 3 3\nSTATS\nQUIT\nQUERY 0 3 3\n";
        let mut output = Vec::new();
        let served = serve(&mut s, Cursor::new(script), &mut output).unwrap();
        assert_eq!(served, 4, "the line after QUIT is not processed");
        let text = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.starts_with("OK") || l.starts_with("ERR")));
        assert!(lines[1].contains("paths=2"));
        assert!(lines[3].contains("bye"));
    }

    #[test]
    fn serve_handles_end_of_input_without_quit() {
        let mut s = session();
        let mut output = Vec::new();
        let served = serve(&mut s, Cursor::new("GRAPH\n"), &mut output).unwrap();
        assert_eq!(served, 1);
    }

    #[test]
    fn reply_rendering_prefixes_ok_and_err() {
        assert_eq!(Reply::Ok("x".into()).render(), "OK x");
        assert_eq!(Reply::Err("y".into()).render(), "ERR y");
        assert_eq!(Reply::Quit("bye".into()).render(), "OK bye");
    }

    #[test]
    fn query_without_a_loaded_graph_is_an_error_reply() {
        let mut s = HostSession::new(SessionConfig::default());
        assert!(matches!(handle_line(&mut s, "QUERY 0 1 2"), Reply::Err(_)));
        assert!(matches!(handle_line(&mut s, "GRAPH"), Reply::Err(_)));
    }
}
