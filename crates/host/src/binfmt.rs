//! Binary layout of the prepared query payload written to device DRAM.
//!
//! Step 4 of the paper's workflow (Fig. 2) transfers "the prepared data" —
//! the CSR arrays of the induced subgraph, the barrier array and the query
//! parameters — from host main memory to FPGA DRAM over PCIe in DMA mode.
//! A real deployment needs an agreed byte layout on both sides of the bus;
//! this module defines a small, versioned, checksummed format:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "PEFP"
//! 4       2     format version (currently 1)
//! 6       2     flags (reserved, 0)
//! 8       4     s (u32, vertex id in the pruned graph)
//! 12      4     t (u32)
//! 16      4     k (u32)
//! 20      4     num_vertices (u32)
//! 24      4     num_edges (u32)
//! 28      4     FNV-1a checksum of the body
//! 32      ...   body: offsets[num_vertices + 1] ++ targets[num_edges]
//!               ++ barrier[num_vertices], all little-endian u32
//! ```
//!
//! Everything is 32-bit little-endian, matching the word width the device
//! model charges memory traffic in.

use crate::error::HostError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use pefp_core::PreparedQuery;
use pefp_graph::{CsrGraph, VertexId};

/// Magic bytes at the start of every payload.
pub const MAGIC: [u8; 4] = *b"PEFP";
/// Current format version.
pub const FORMAT_VERSION: u16 = 1;
/// Size of the fixed header in bytes.
pub const HEADER_BYTES: usize = 32;

/// Parsed header of a device payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadHeader {
    /// Format version.
    pub version: u16,
    /// Source vertex (in the pruned graph's id space).
    pub s: u32,
    /// Target vertex.
    pub t: u32,
    /// Hop constraint.
    pub k: u32,
    /// Number of vertices of the pruned graph.
    pub num_vertices: u32,
    /// Number of edges of the pruned graph.
    pub num_edges: u32,
    /// FNV-1a checksum of the body.
    pub checksum: u32,
}

/// A fully serialised query payload plus its decoded form.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePayload {
    /// The header fields.
    pub header: PayloadHeader,
    /// The pruned graph shipped to the device.
    pub graph: CsrGraph,
    /// The barrier array (`bar[u] = sd(u, t)` on the pruned graph).
    pub barrier: Vec<u32>,
}

/// Incremental FNV-1a over a byte stream; cheap enough to recompute on both
/// ends of a bus and sensitive to byte reordering. The DRAM payload hashes
/// its body words through it, and the network wire format
/// ([`crate::wire`]) reuses it for per-frame payload checksums.
#[derive(Debug, Clone)]
pub struct Fnv1a(u32);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(0x811c_9dc5)
    }

    /// Folds `bytes` into the hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u32;
            self.0 = self.0.wrapping_mul(0x0100_0193);
        }
    }

    /// The hash of everything folded in so far.
    pub fn finish(&self) -> u32 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

/// FNV-1a over a little-endian u32 stream.
fn fnv1a_words(words: impl Iterator<Item = u32>) -> u32 {
    let mut hash = Fnv1a::new();
    for w in words {
        hash.update(&w.to_le_bytes());
    }
    hash.finish()
}

fn body_checksum(graph: &CsrGraph, barrier: &[u32]) -> u32 {
    let (offsets, targets) = graph.raw_parts();
    fnv1a_words(
        offsets.iter().copied().chain(targets.iter().map(|v| v.0)).chain(barrier.iter().copied()),
    )
}

/// Serialises a prepared query into the device DRAM byte layout.
pub fn encode_payload(prepared: &PreparedQuery) -> Bytes {
    let graph = &prepared.graph;
    let (offsets, targets) = graph.raw_parts();
    let barrier = &prepared.barrier;
    let body_words = offsets.len() + targets.len() + barrier.len();
    let mut buf = BytesMut::with_capacity(HEADER_BYTES + body_words * 4);

    buf.put_slice(&MAGIC);
    buf.put_u16_le(FORMAT_VERSION);
    buf.put_u16_le(0); // flags
    buf.put_u32_le(prepared.s.0);
    buf.put_u32_le(prepared.t.0);
    buf.put_u32_le(prepared.k);
    buf.put_u32_le(graph.num_vertices() as u32);
    buf.put_u32_le(graph.num_edges() as u32);
    buf.put_u32_le(body_checksum(graph, barrier));

    for &o in offsets {
        buf.put_u32_le(o);
    }
    for &t in targets {
        buf.put_u32_le(t.0);
    }
    for &b in barrier {
        buf.put_u32_le(b);
    }
    buf.freeze()
}

/// Total payload size in bytes for a prepared query, without serialising it.
pub fn payload_bytes(prepared: &PreparedQuery) -> usize {
    let (offsets, targets) = prepared.graph.raw_parts();
    HEADER_BYTES + (offsets.len() + targets.len() + prepared.barrier.len()) * 4
}

/// Parses and validates a payload produced by [`encode_payload`].
pub fn decode_payload(bytes: &[u8]) -> Result<DevicePayload, HostError> {
    if bytes.len() < HEADER_BYTES {
        return Err(HostError::PayloadCorrupt(format!(
            "payload is {} bytes, smaller than the {HEADER_BYTES}-byte header",
            bytes.len()
        )));
    }
    let mut cur = bytes;
    let mut magic = [0u8; 4];
    cur.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(HostError::PayloadCorrupt("bad magic".to_string()));
    }
    let version = cur.get_u16_le();
    if version != FORMAT_VERSION {
        return Err(HostError::PayloadCorrupt(format!("unsupported format version {version}")));
    }
    let _flags = cur.get_u16_le();
    let s = cur.get_u32_le();
    let t = cur.get_u32_le();
    let k = cur.get_u32_le();
    let num_vertices = cur.get_u32_le();
    let num_edges = cur.get_u32_le();
    let checksum = cur.get_u32_le();

    let body_words = num_vertices as usize + 1 + num_edges as usize + num_vertices as usize;
    let expected = HEADER_BYTES + body_words * 4;
    if bytes.len() != expected {
        return Err(HostError::PayloadCorrupt(format!(
            "payload is {} bytes, expected {expected}",
            bytes.len()
        )));
    }

    let mut offsets = Vec::with_capacity(num_vertices as usize + 1);
    for _ in 0..num_vertices + 1 {
        offsets.push(cur.get_u32_le());
    }
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(num_edges as usize);
    // Rebuild the edge list from CSR: offsets[v]..offsets[v+1] are v's targets.
    let mut targets = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        targets.push(cur.get_u32_le());
    }
    let mut barrier = Vec::with_capacity(num_vertices as usize);
    for _ in 0..num_vertices {
        barrier.push(cur.get_u32_le());
    }

    // Checksum over the body as transmitted.
    let actual = fnv1a_words(
        offsets.iter().copied().chain(targets.iter().copied()).chain(barrier.iter().copied()),
    );
    if actual != checksum {
        return Err(HostError::PayloadCorrupt(format!(
            "checksum mismatch: stored {checksum:#010x}, computed {actual:#010x}"
        )));
    }

    // Validate the CSR structure before rebuilding the graph.
    if offsets.first() != Some(&0) || offsets.last() != Some(&num_edges) {
        return Err(HostError::PayloadCorrupt(
            "CSR offsets do not start at 0 / end at num_edges".to_string(),
        ));
    }
    for w in offsets.windows(2) {
        if w[0] > w[1] {
            return Err(HostError::PayloadCorrupt("CSR offsets are not monotone".to_string()));
        }
    }
    for v in 0..num_vertices as usize {
        for e in offsets[v]..offsets[v + 1] {
            let target = targets[e as usize];
            if target >= num_vertices {
                return Err(HostError::PayloadCorrupt(format!(
                    "edge target {target} out of range (num_vertices = {num_vertices})"
                )));
            }
            edges.push((v as u32, target));
        }
    }
    if s >= num_vertices || t >= num_vertices {
        return Err(HostError::PayloadCorrupt(format!("query endpoints ({s}, {t}) out of range")));
    }

    let graph = CsrGraph::from_edges(num_vertices as usize, &edges);
    Ok(DevicePayload {
        header: PayloadHeader { version, s, t, k, num_vertices, num_edges, checksum },
        graph,
        barrier,
    })
}

impl DevicePayload {
    /// The query source as a [`VertexId`].
    pub fn source(&self) -> VertexId {
        VertexId(self.header.s)
    }

    /// The query target as a [`VertexId`].
    pub fn target(&self) -> VertexId {
        VertexId(self.header.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_core::pre_bfs;
    use pefp_graph::generators::chung_lu;

    fn prepared() -> PreparedQuery {
        let g = chung_lu(200, 5.0, 2.2, 19).to_csr();
        pre_bfs(&g, VertexId(0), VertexId(100), 5)
    }

    #[test]
    fn round_trip_preserves_graph_barrier_and_query() {
        let p = prepared();
        let bytes = encode_payload(&p);
        assert_eq!(bytes.len(), payload_bytes(&p));
        let decoded = decode_payload(&bytes).unwrap();
        assert_eq!(decoded.graph, *p.graph);
        assert_eq!(decoded.barrier, p.barrier);
        assert_eq!(decoded.source(), p.s);
        assert_eq!(decoded.target(), p.t);
        assert_eq!(decoded.header.k, p.k);
        assert_eq!(decoded.header.version, FORMAT_VERSION);
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let p = prepared();
        let bytes = encode_payload(&p);
        let err = decode_payload(&bytes[..HEADER_BYTES - 1]).unwrap_err();
        assert!(matches!(err, HostError::PayloadCorrupt(_)));
        let err = decode_payload(&bytes[..bytes.len() - 4]).unwrap_err();
        assert!(matches!(err, HostError::PayloadCorrupt(_)));
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let p = prepared();
        let bytes = encode_payload(&p);
        let mut corrupted = bytes.to_vec();
        corrupted[0] = b'X';
        assert!(matches!(
            decode_payload(&corrupted).unwrap_err(),
            HostError::PayloadCorrupt(msg) if msg.contains("magic")
        ));
        let mut corrupted = bytes.to_vec();
        corrupted[4] = 0xFF;
        assert!(matches!(
            decode_payload(&corrupted).unwrap_err(),
            HostError::PayloadCorrupt(msg) if msg.contains("version")
        ));
    }

    #[test]
    fn flipped_body_bit_fails_the_checksum() {
        let p = prepared();
        let bytes = encode_payload(&p);
        let mut corrupted = bytes.to_vec();
        let idx = HEADER_BYTES + 8;
        corrupted[idx] ^= 0x01;
        let err = decode_payload(&corrupted).unwrap_err();
        assert!(matches!(err, HostError::PayloadCorrupt(msg) if msg.contains("checksum")));
    }

    #[test]
    fn empty_prepared_query_round_trips() {
        // An infeasible query produces an empty pruned graph.
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let p = pre_bfs(&g, VertexId(0), VertexId(2), 2);
        let bytes = encode_payload(&p);
        let decoded = decode_payload(&bytes);
        // Either the pruned graph is empty (endpoints out of range is also a
        // legal rejection) or it decodes consistently.
        if let Ok(d) = decoded {
            assert_eq!(d.graph, *p.graph);
        }
    }

    #[test]
    fn payload_size_matches_formula() {
        let p = prepared();
        let (offsets, targets) = p.graph.raw_parts();
        let expected = HEADER_BYTES + (offsets.len() + targets.len() + p.barrier.len()) * 4;
        assert_eq!(payload_bytes(&p), expected);
    }

    #[test]
    fn checksum_depends_on_word_order() {
        let a = fnv1a_words([1u32, 2, 3].into_iter());
        let b = fnv1a_words([3u32, 2, 1].into_iter());
        assert_ne!(a, b);
        assert_eq!(a, fnv1a_words([1u32, 2, 3].into_iter()));
    }
}
