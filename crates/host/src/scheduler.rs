//! Batch scheduling of many queries into one transfer.
//!
//! The paper's evaluation methodology (Section VII-A) transfers "the 1,000
//! queries and their corresponding data graphs (after preprocessing) from the
//! host to FPGA DRAM at once", which amortises the PCIe setup cost to
//! 0.1–0.3 ms per query. This module reproduces that batching: it runs the
//! host-side Pre-BFS for a whole query set (optionally across host threads —
//! preprocessing is embarrassingly parallel across queries), deduplicates
//! identical requests, ships the concatenated payloads as a single DMA
//! transfer and then runs the queries back to back on the device.

use crate::dma::{DmaEngine, DmaTransferReport};
use crate::error::HostError;
use crate::loader::GraphHandle;
use crate::query::QueryRequest;
use pefp_core::{prepare_with, run_prepared_with_sink, PefpVariant, PrepareContext, PreparedQuery};
use pefp_fpga::{schedule_batch, DeviceConfig, MultiCuConfig, MultiCuSchedule, Pcie};
use pefp_graph::sink::FnSink;
use pefp_graph::VertexId;
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Device profile.
    pub device: DeviceConfig,
    /// PEFP variant used for every query.
    pub variant: PefpVariant,
    /// Number of host threads used for preprocessing (1 = sequential).
    pub preprocess_threads: usize,
    /// Collapse duplicate `(s, t, k)` requests into one execution.
    pub dedup: bool,
    /// Multi-compute-unit deployment modelled for the batch: per-query kernel
    /// times are LPT-scheduled onto the CUs (with the DRAM bandwidth-sharing
    /// correction of [`pefp_fpga::multi_cu`]) and the predicted makespan is
    /// reported next to the single-CU total in [`BatchOutcome::multi_cu`].
    pub multi_cu: MultiCuConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            device: DeviceConfig::alveo_u200(),
            variant: PefpVariant::Full,
            preprocess_threads: 1,
            dedup: true,
            multi_cu: MultiCuConfig::default(),
        }
    }
}

/// Per-query result row of a batch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchQueryResult {
    /// The request.
    pub request: QueryRequest,
    /// Number of result paths.
    pub num_paths: u64,
    /// Simulated device time for this query in milliseconds.
    pub device_millis: f64,
}

/// The outcome of scheduling one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query results, in the order the requests were submitted
    /// (duplicates resolved to the same numbers when deduplication is on).
    pub results: Vec<BatchQueryResult>,
    /// Host wall-clock spent in preprocessing for the whole batch (ms).
    pub preprocess_millis: f64,
    /// The single batched DMA transfer.
    pub transfer: DmaTransferReport,
    /// Total simulated device time (ms) on a single compute unit.
    pub device_millis: f64,
    /// Number of requests that were served from a duplicate's result.
    pub deduplicated: usize,
    /// Predicted multi-CU execution of the batch: the unique queries'
    /// kernel-cycle counts scheduled onto [`SchedulerConfig::multi_cu`]. With
    /// the default single-CU config the makespan equals the serial total.
    pub multi_cu: MultiCuSchedule,
}

impl BatchOutcome {
    /// Total batch time in milliseconds (preprocess + transfer + device).
    pub fn total_millis(&self) -> f64 {
        self.preprocess_millis + self.transfer.total_millis + self.device_millis
    }

    /// Predicted device time of the batch on the configured multi-CU card, in
    /// milliseconds: the single-CU total scaled by the modelled makespan.
    pub fn multi_cu_device_millis(&self) -> f64 {
        if self.multi_cu.serial_cycles == 0 {
            return self.device_millis;
        }
        self.device_millis * self.multi_cu.makespan_cycles as f64
            / self.multi_cu.serial_cycles as f64
    }

    /// Predicted speedup of the configured multi-CU card over one CU.
    pub fn multi_cu_speedup(&self) -> f64 {
        self.multi_cu.speedup()
    }

    /// Average per-query total time in milliseconds.
    pub fn avg_query_millis(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.total_millis() / self.results.len() as f64
        }
    }

    /// Total number of result paths across the batch.
    pub fn total_paths(&self) -> u64 {
        self.results.iter().map(|r| r.num_paths).sum()
    }
}

/// Runs batches of queries against one graph.
#[derive(Debug)]
pub struct BatchScheduler {
    config: SchedulerConfig,
}

impl BatchScheduler {
    /// Creates a scheduler with `config`.
    pub fn new(config: SchedulerConfig) -> Self {
        BatchScheduler { config }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Preprocesses the unique queries, possibly across several host threads.
    /// Each thread owns one [`PrepareContext`] seeded with the graph's
    /// prebuilt reverse CSR, so scratch allocations amortise across the batch
    /// and no worker ever recomputes `g.reverse()`.
    fn preprocess_all(&self, graph: &GraphHandle, unique: &[QueryRequest]) -> Vec<PreparedQuery> {
        let threads = self.config.preprocess_threads.max(1).min(unique.len().max(1));
        if threads <= 1 || unique.len() <= 1 {
            let mut ctx = PrepareContext::with_reverse(&graph.csr, Arc::clone(&graph.reverse));
            return unique
                .iter()
                .map(|q| prepare_with(&mut ctx, &graph.csr, q.s, q.t, q.k, self.config.variant))
                .collect();
        }
        // Static round-robin split across scoped threads; order is restored
        // by index so the output lines up with `unique`.
        let mut prepared: Vec<Option<PreparedQuery>> = vec![None; unique.len()];
        let chunks: Vec<Vec<(usize, QueryRequest)>> = {
            let mut chunks = vec![Vec::new(); threads];
            for (i, q) in unique.iter().enumerate() {
                chunks[i % threads].push((i, *q));
            }
            chunks
        };
        let csr = &graph.csr;
        let reverse = &graph.reverse;
        let variant = self.config.variant;
        let results: Vec<Vec<(usize, PreparedQuery)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut ctx = PrepareContext::with_reverse(csr, Arc::clone(reverse));
                        chunk
                            .into_iter()
                            .map(|(i, q)| (i, prepare_with(&mut ctx, csr, q.s, q.t, q.k, variant)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("preprocess thread panicked")).collect()
        });
        for chunk in results {
            for (i, p) in chunk {
                prepared[i] = Some(p);
            }
        }
        prepared.into_iter().map(|p| p.expect("every query preprocessed")).collect()
    }

    /// Runs a batch of queries against `graph` and returns the batch outcome.
    ///
    /// Every request is validated first; the whole batch is rejected if any
    /// request is invalid (matching the all-or-nothing transfer). Results are
    /// counted, never materialised — this is [`Self::run_batch_streaming`]
    /// with a discard-everything callback.
    pub fn run_batch(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
    ) -> Result<BatchOutcome, HostError> {
        self.run_batch_streaming(graph, requests, |_, _| ControlFlow::Continue(()))
    }

    /// Streaming form of [`Self::run_batch`]: every result path (original
    /// graph vertex ids) is pushed to `on_path` together with the request
    /// that produced it, so the host never materialises a result set.
    ///
    /// Returning [`ControlFlow::Break`] from the callback terminates *that
    /// request's* enumeration early; the rest of the batch still runs. With
    /// deduplication on, a duplicated request's paths are streamed once, for
    /// the first occurrence; its [`BatchQueryResult`] rows still cover every
    /// slot.
    pub fn run_batch_streaming<F>(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
        mut on_path: F,
    ) -> Result<BatchOutcome, HostError>
    where
        F: FnMut(&QueryRequest, &[VertexId]) -> ControlFlow<()>,
    {
        let staged = self.stage_batch(graph, requests)?;

        let options = self.config.variant.engine_options();
        let mut unique_results = Vec::with_capacity(staged.unique.len());
        let mut unique_cycles = Vec::with_capacity(staged.unique.len());
        let mut device_millis = 0.0;
        for (q, prep) in staged.unique.iter().zip(&staged.prepared) {
            let mut sink = FnSink(|path: &[VertexId]| on_path(q, path));
            let result =
                run_prepared_with_sink(prep, options.clone(), &self.config.device, &mut sink);
            device_millis += result.query_millis;
            unique_cycles.push(result.device.cycles);
            unique_results.push(BatchQueryResult {
                request: *q,
                num_paths: result.num_paths,
                device_millis: result.query_millis,
            });
        }

        Ok(staged.into_outcome(unique_results, unique_cycles, device_millis, &self.config.multi_cu))
    }

    /// The host-side work shared by the counting and streaming batch runs:
    /// validation, deduplication, (parallel) preprocessing and the single
    /// batched DMA transfer.
    fn stage_batch(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
    ) -> Result<StagedBatch, HostError> {
        for q in requests {
            q.validate(&graph.csr)?;
        }

        // Deduplicate while remembering each request's slot.
        let mut unique: Vec<QueryRequest> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(requests.len());
        if self.config.dedup {
            let mut index: HashMap<QueryRequest, usize> = HashMap::new();
            for q in requests {
                let slot = *index.entry(*q).or_insert_with(|| {
                    unique.push(*q);
                    unique.len() - 1
                });
                slot_of.push(slot);
            }
        } else {
            unique = requests.to_vec();
            slot_of = (0..requests.len()).collect();
        }
        let deduplicated = requests.len() - unique.len();

        // Host preprocessing (timed as a whole, like the paper's T1).
        let started = Instant::now();
        let prepared = self.preprocess_all(graph, &unique);
        let preprocess_millis = started.elapsed().as_secs_f64() * 1e3;

        // One batched transfer of all payloads.
        let total_bytes: usize = prepared.iter().map(crate::binfmt::payload_bytes).sum();
        if total_bytes > self.config.device.dram_bytes {
            return Err(HostError::DeviceCapacity(format!(
                "batched payload is {total_bytes} bytes but device DRAM holds {}",
                self.config.device.dram_bytes
            )));
        }
        let pcie = Pcie::new(self.config.device.pcie_gbps, self.config.device.pcie_setup_us);
        let mut dma = DmaEngine::with_defaults(pcie);
        let transfer = dma.transfer(total_bytes);

        Ok(StagedBatch { unique, slot_of, prepared, preprocess_millis, transfer, deduplicated })
    }
}

/// A validated, deduplicated, preprocessed and transferred batch, ready for
/// device execution.
struct StagedBatch {
    unique: Vec<QueryRequest>,
    slot_of: Vec<usize>,
    prepared: Vec<PreparedQuery>,
    preprocess_millis: f64,
    transfer: DmaTransferReport,
    deduplicated: usize,
}

impl StagedBatch {
    /// Assembles the outcome: per-slot result rows plus the multi-CU schedule
    /// of the unique queries' kernel cycles.
    fn into_outcome(
        self,
        unique_results: Vec<BatchQueryResult>,
        unique_cycles: Vec<u64>,
        device_millis: f64,
        multi_cu: &MultiCuConfig,
    ) -> BatchOutcome {
        let results = self.slot_of.iter().map(|&slot| unique_results[slot]).collect();
        let multi_cu = schedule_batch(&unique_cycles, multi_cu);
        BatchOutcome {
            results,
            preprocess_millis: self.preprocess_millis,
            transfer: self.transfer,
            device_millis,
            deduplicated: self.deduplicated,
            multi_cu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::sampling::sample_reachable_pairs;
    use pefp_graph::CsrGraph;

    fn handle() -> GraphHandle {
        GraphHandle::from_csr("test", chung_lu(250, 5.0, 2.2, 61).to_csr())
    }

    fn requests(handle: &GraphHandle, k: u32, count: usize) -> Vec<QueryRequest> {
        sample_reachable_pairs(&handle.csr, k, count, 99)
            .into_iter()
            .map(|(s, t)| QueryRequest { s, t, k })
            .collect()
    }

    #[test]
    fn batch_results_match_the_naive_oracle() {
        let handle = handle();
        let reqs = requests(&handle, 3, 10);
        assert!(!reqs.is_empty());
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.results.len(), reqs.len());
        for (req, res) in reqs.iter().zip(&outcome.results) {
            let oracle = naive_dfs_enumerate(&handle.csr, req.s, req.t, req.k).len() as u64;
            assert_eq!(res.num_paths, oracle, "query {req:?}");
        }
        assert!(outcome.transfer.bytes > 0);
        assert!(outcome.total_millis() > 0.0);
    }

    #[test]
    fn duplicates_are_collapsed_but_answered_for_every_slot() {
        let handle = handle();
        let base = requests(&handle, 3, 3);
        assert!(base.len() >= 2);
        let mut reqs = base.clone();
        reqs.extend_from_slice(&base); // every query twice
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.deduplicated, base.len());
        assert_eq!(outcome.results.len(), reqs.len());
        for i in 0..base.len() {
            assert_eq!(outcome.results[i].num_paths, outcome.results[i + base.len()].num_paths);
        }
    }

    #[test]
    fn dedup_can_be_disabled() {
        let handle = handle();
        let base = requests(&handle, 3, 2);
        let mut reqs = base.clone();
        reqs.extend_from_slice(&base);
        let scheduler = BatchScheduler::new(SchedulerConfig { dedup: false, ..Default::default() });
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.deduplicated, 0);
        assert_eq!(outcome.results.len(), reqs.len());
    }

    #[test]
    fn parallel_preprocessing_gives_identical_results() {
        let handle = handle();
        let reqs = requests(&handle, 4, 12);
        let sequential =
            BatchScheduler::new(SchedulerConfig { preprocess_threads: 1, ..Default::default() })
                .run_batch(&handle, &reqs)
                .unwrap();
        let parallel =
            BatchScheduler::new(SchedulerConfig { preprocess_threads: 4, ..Default::default() })
                .run_batch(&handle, &reqs)
                .unwrap();
        let seq_counts: Vec<u64> = sequential.results.iter().map(|r| r.num_paths).collect();
        let par_counts: Vec<u64> = parallel.results.iter().map(|r| r.num_paths).collect();
        assert_eq!(seq_counts, par_counts);
    }

    #[test]
    fn batch_reports_a_multi_cu_schedule_next_to_the_serial_total() {
        let handle = handle();
        let reqs = requests(&handle, 4, 8);
        assert!(reqs.len() >= 4, "need a few queries to schedule");

        // Default config: one CU, makespan == serial total, speedup 1.
        let single =
            BatchScheduler::new(SchedulerConfig::default()).run_batch(&handle, &reqs).unwrap();
        assert_eq!(single.multi_cu.compute_units, 1);
        assert_eq!(single.multi_cu.makespan_cycles, single.multi_cu.serial_cycles);
        assert!((single.multi_cu_speedup() - 1.0).abs() < 1e-12);
        assert!((single.multi_cu_device_millis() - single.device_millis).abs() < 1e-9);

        // Four contention-free CUs: strictly faster on a multi-query batch.
        let multi = BatchScheduler::new(SchedulerConfig {
            multi_cu: MultiCuConfig { compute_units: 4, per_cu_bandwidth_share: 0.0 },
            ..SchedulerConfig::default()
        })
        .run_batch(&handle, &reqs)
        .unwrap();
        assert_eq!(multi.multi_cu.compute_units, 4);
        assert_eq!(multi.multi_cu.serial_cycles, single.multi_cu.serial_cycles);
        assert!(
            multi.multi_cu.makespan_cycles < multi.multi_cu.serial_cycles,
            "4 CUs must beat 1 on {} queries",
            reqs.len()
        );
        assert!(multi.multi_cu_speedup() > 1.0);
        assert!(multi.multi_cu_device_millis() < multi.device_millis);
        // The serial numbers are untouched by the model.
        assert_eq!(multi.total_paths(), single.total_paths());
    }

    #[test]
    fn streaming_batch_delivers_every_path_with_its_request() {
        use pefp_graph::paths::canonicalize;
        use std::collections::HashMap;

        let handle = handle();
        let reqs = requests(&handle, 3, 6);
        assert!(!reqs.is_empty());
        let scheduler = BatchScheduler::new(SchedulerConfig::default());

        let mut streamed: HashMap<QueryRequest, Vec<Vec<VertexId>>> = HashMap::new();
        let outcome = scheduler
            .run_batch_streaming(&handle, &reqs, |req, path| {
                streamed.entry(*req).or_default().push(path.to_vec());
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(outcome.results.len(), reqs.len());

        for req in &reqs {
            let oracle = naive_dfs_enumerate(&handle.csr, req.s, req.t, req.k);
            let got = streamed.remove(req).unwrap_or_default();
            assert_eq!(canonicalize(got), canonicalize(oracle), "query {req:?}");
        }

        // The counting and streaming paths agree on every aggregate.
        let counted = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.total_paths(), counted.total_paths());
        assert_eq!(outcome.multi_cu.serial_cycles, counted.multi_cu.serial_cycles);
    }

    #[test]
    fn streaming_batch_break_only_stops_one_request() {
        let handle = handle();
        let reqs = requests(&handle, 3, 4);
        assert!(reqs.len() >= 2);
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let full = scheduler.run_batch(&handle, &reqs).unwrap();
        let victim = full.results.iter().find(|r| r.num_paths > 1).map(|r| r.request);
        let Some(victim) = victim else { return };

        let outcome = scheduler
            .run_batch_streaming(&handle, &reqs, |req, _path| {
                if *req == victim {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        for (got, want) in outcome.results.iter().zip(&full.results) {
            if got.request == victim {
                assert_eq!(got.num_paths, 1, "the break lands after the first path");
            } else {
                assert_eq!(got.num_paths, want.num_paths, "other requests run to completion");
            }
        }
    }

    #[test]
    fn invalid_request_rejects_the_whole_batch() {
        let handle = handle();
        let mut reqs = requests(&handle, 3, 3);
        reqs.push(QueryRequest::new(0, 999_999, 3));
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        assert!(matches!(scheduler.run_batch(&handle, &reqs), Err(HostError::QueryInvalid(_))));
    }

    #[test]
    fn empty_batch_is_a_cheap_no_op() {
        let handle = handle();
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &[]).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.total_paths(), 0);
        assert_eq!(outcome.avg_query_millis(), 0.0);
        assert_eq!(outcome.deduplicated, 0);
    }

    #[test]
    fn batched_transfer_is_cheaper_than_per_query_transfers() {
        let handle = GraphHandle::from_csr(
            "dense",
            CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)]),
        );
        let reqs: Vec<QueryRequest> = (0..50).map(|_| QueryRequest::new(0, 5, 4)).collect();
        let scheduler = BatchScheduler::new(SchedulerConfig { dedup: false, ..Default::default() });
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        // One transfer for the whole batch, so the per-query share of the
        // setup cost is far below the standalone setup cost.
        assert!(outcome.transfer.descriptors >= 1);
        let per_query_transfer = outcome.transfer.total_millis / reqs.len() as f64;
        let single = {
            let pcie =
                Pcie::new(scheduler.config.device.pcie_gbps, scheduler.config.device.pcie_setup_us);
            let mut dma = DmaEngine::with_defaults(pcie);
            dma.transfer(outcome.transfer.bytes / reqs.len()).total_millis
        };
        assert!(per_query_transfer < single);
    }
}
