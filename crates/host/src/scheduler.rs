//! Batch scheduling of many queries into one transfer.
//!
//! The paper's evaluation methodology (Section VII-A) transfers "the 1,000
//! queries and their corresponding data graphs (after preprocessing) from the
//! host to FPGA DRAM at once", which amortises the PCIe setup cost to
//! 0.1–0.3 ms per query. This module reproduces that batching: it runs the
//! host-side Pre-BFS for a whole query set (optionally across host threads —
//! preprocessing is embarrassingly parallel across queries), deduplicates
//! identical requests, ships the concatenated payloads as a single DMA
//! transfer and then runs the queries back to back on the device.

use crate::dma::{DmaEngine, DmaTransferReport};
use crate::error::HostError;
use crate::loader::GraphHandle;
use crate::query::QueryRequest;
use pefp_core::{
    count_st_walks, prepare_with, run_prepared_on_device, run_prepared_with_sink, PefpVariant,
    PrepareContext, PreparedQuery,
};
use pefp_fpga::{
    predict_dispatch, schedule_batch, ArbiterStats, CuCluster, CuWorkload, DeviceConfig,
    MultiCuConfig, MultiCuSchedule, Pcie,
};
use pefp_graph::sink::FnSink;
use pefp_graph::VertexId;
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Device profile.
    pub device: DeviceConfig,
    /// PEFP variant used for every query.
    pub variant: PefpVariant,
    /// Number of host threads used for preprocessing (1 = sequential).
    pub preprocess_threads: usize,
    /// Collapse duplicate `(s, t, k)` requests into one execution.
    pub dedup: bool,
    /// Multi-compute-unit deployment for the batch: per-query kernel times
    /// are LPT-scheduled onto the CUs (with the DRAM bandwidth-sharing
    /// correction of [`pefp_fpga::multi_cu`]) and the predicted makespan is
    /// reported next to the single-CU total in [`BatchOutcome::multi_cu`].
    /// With [`SchedulerConfig::dispatch`] set, this is also the cluster the
    /// batch *executes* on.
    pub multi_cu: MultiCuConfig,
    /// Execute batches on a real [`CuCluster`] — one OS thread per compute
    /// unit pulling from an LPT-ordered work queue, contending for shared
    /// DRAM bandwidth — instead of back-to-back on a single device.
    /// [`BatchOutcome::measured`] then carries the measured per-CU busy
    /// cycles and makespan next to the modelled prediction.
    pub dispatch: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            device: DeviceConfig::alveo_u200(),
            variant: PefpVariant::Full,
            preprocess_threads: 1,
            dedup: true,
            multi_cu: MultiCuConfig::default(),
            dispatch: false,
        }
    }
}

/// Measured multi-CU execution of one batch (dispatch mode): what actually
/// happened when the unique queries ran concurrently on the cluster, next to
/// the traffic-aware prediction, so the model error is a first-class number.
#[derive(Debug, Clone)]
pub struct MeasuredMultiCu {
    /// Number of compute units the batch executed on.
    pub compute_units: usize,
    /// Simulated cycles each CU was busy (contention stalls included),
    /// indexed by CU.
    pub per_cu_busy_cycles: Vec<u64>,
    /// Number of queries each CU executed.
    pub per_cu_queries: Vec<usize>,
    /// Measured batch makespan: the busiest CU's cycles.
    pub makespan_cycles: u64,
    /// Sum of the queries' *uncontended* cycles — what one CU would need.
    pub serial_cycles: u64,
    /// Total contention stalls the shared-DRAM arbiter injected.
    pub contention_cycles: u64,
    /// Bank-conflict stall cycles each CU was *charged* (zero unless the
    /// cluster runs with banked charging on), indexed by CU.
    pub per_cu_bank_conflict_cycles: Vec<u64>,
    /// Read↔write turnaround stall cycles each CU was charged, indexed by CU.
    pub per_cu_turnaround_cycles: Vec<u64>,
    /// Aggregate refill traffic metered by the arbiter.
    pub arbiter: ArbiterStats,
    /// The traffic-aware prediction ([`pefp_fpga::predict_dispatch`]) from
    /// the same uncontended per-query costs, for model-error accounting.
    pub predicted: MultiCuSchedule,
    /// Host wall-clock spent in the dispatch phase (ms) — the time the real
    /// OS threads took, as opposed to the simulated cycle domain above.
    pub wall_millis: f64,
}

impl MeasuredMultiCu {
    /// Measured speedup over a single CU (uncontended serial cycles divided
    /// by the measured makespan).
    pub fn speedup(&self) -> f64 {
        if self.makespan_cycles == 0 {
            1.0
        } else {
            self.serial_cycles as f64 / self.makespan_cycles as f64
        }
    }

    /// Relative error of the predicted makespan against the measured one
    /// (0.0 = perfect model; 0.3 = off by 30%).
    pub fn model_error(&self) -> f64 {
        if self.makespan_cycles == 0 {
            return 0.0;
        }
        (self.predicted.makespan_cycles as f64 - self.makespan_cycles as f64).abs()
            / self.makespan_cycles as f64
    }
}

/// Per-query result row of a batch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchQueryResult {
    /// The request.
    pub request: QueryRequest,
    /// Number of result paths.
    pub num_paths: u64,
    /// Simulated device time for this query in milliseconds.
    pub device_millis: f64,
}

/// The outcome of scheduling one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query results, in the order the requests were submitted
    /// (duplicates resolved to the same numbers when deduplication is on).
    pub results: Vec<BatchQueryResult>,
    /// Host wall-clock spent in preprocessing for the whole batch (ms).
    pub preprocess_millis: f64,
    /// The single batched DMA transfer.
    pub transfer: DmaTransferReport,
    /// Total simulated device time (ms) summed over the queries — the
    /// single-CU serial total (in dispatch mode, contention stalls included).
    pub device_millis: f64,
    /// Number of requests that were served from a duplicate's result.
    pub deduplicated: usize,
    /// Predicted multi-CU execution of the batch: the unique queries'
    /// kernel-cycle counts scheduled onto [`SchedulerConfig::multi_cu`]. With
    /// the default single-CU config the makespan equals the serial total.
    pub multi_cu: MultiCuSchedule,
    /// Measured multi-CU execution, present when the batch ran in dispatch
    /// mode (real concurrent execution on a [`CuCluster`]).
    pub measured: Option<MeasuredMultiCu>,
}

impl BatchOutcome {
    /// Total batch time in milliseconds (preprocess + transfer + device).
    pub fn total_millis(&self) -> f64 {
        self.preprocess_millis + self.transfer.total_millis + self.device_millis
    }

    /// Predicted device time of the batch on the configured multi-CU card, in
    /// milliseconds: the single-CU total scaled by the modelled makespan.
    pub fn multi_cu_device_millis(&self) -> f64 {
        if self.multi_cu.serial_cycles == 0 {
            return self.device_millis;
        }
        self.device_millis * self.multi_cu.makespan_cycles as f64
            / self.multi_cu.serial_cycles as f64
    }

    /// Predicted speedup of the configured multi-CU card over one CU.
    pub fn multi_cu_speedup(&self) -> f64 {
        self.multi_cu.speedup()
    }

    /// Average per-query total time in milliseconds.
    pub fn avg_query_millis(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.total_millis() / self.results.len() as f64
        }
    }

    /// Total number of result paths across the batch.
    pub fn total_paths(&self) -> u64 {
        self.results.iter().map(|r| r.num_paths).sum()
    }
}

/// Runs batches of queries against one graph.
#[derive(Debug)]
pub struct BatchScheduler {
    config: SchedulerConfig,
}

impl BatchScheduler {
    /// Creates a scheduler with `config`.
    pub fn new(config: SchedulerConfig) -> Self {
        BatchScheduler { config }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Preprocesses the unique queries, possibly across several host threads.
    /// Each thread owns one [`PrepareContext`] seeded with the graph's
    /// prebuilt reverse CSR, so scratch allocations amortise across the batch
    /// and no worker ever recomputes `g.reverse()`.
    fn preprocess_all(&self, graph: &GraphHandle, unique: &[QueryRequest]) -> Vec<PreparedQuery> {
        let threads = self.config.preprocess_threads.max(1).min(unique.len().max(1));
        if threads <= 1 || unique.len() <= 1 {
            let mut ctx = PrepareContext::with_reverse(&graph.csr, Arc::clone(&graph.reverse));
            return unique
                .iter()
                .map(|q| prepare_with(&mut ctx, &graph.csr, q.s, q.t, q.k, self.config.variant))
                .collect();
        }
        // Static round-robin split across scoped threads; order is restored
        // by index so the output lines up with `unique`.
        let mut prepared: Vec<Option<PreparedQuery>> = vec![None; unique.len()];
        let chunks: Vec<Vec<(usize, QueryRequest)>> = {
            let mut chunks = vec![Vec::new(); threads];
            for (i, q) in unique.iter().enumerate() {
                chunks[i % threads].push((i, *q));
            }
            chunks
        };
        let csr = &graph.csr;
        let reverse = &graph.reverse;
        let variant = self.config.variant;
        let results: Vec<Vec<(usize, PreparedQuery)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut ctx = PrepareContext::with_reverse(csr, Arc::clone(reverse));
                        chunk
                            .into_iter()
                            .map(|(i, q)| (i, prepare_with(&mut ctx, csr, q.s, q.t, q.k, variant)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("preprocess thread panicked")).collect()
        });
        for chunk in results {
            for (i, p) in chunk {
                prepared[i] = Some(p);
            }
        }
        prepared.into_iter().map(|p| p.expect("every query preprocessed")).collect()
    }

    /// Runs a batch of queries against `graph` and returns the batch outcome.
    ///
    /// Every request is validated first; the whole batch is rejected if any
    /// request is invalid (matching the all-or-nothing transfer). Results are
    /// counted, never materialised — this is [`Self::run_batch_streaming`]
    /// (or its dispatch-mode sibling, when [`SchedulerConfig::dispatch`] is
    /// set) with a discard-everything callback.
    pub fn run_batch(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
    ) -> Result<BatchOutcome, HostError> {
        if self.config.dispatch {
            self.run_batch_dispatch_streaming(graph, requests, |_, _| ControlFlow::Continue(()))
        } else {
            self.run_batch_streaming(graph, requests, |_, _| ControlFlow::Continue(()))
        }
    }

    /// Serial streaming batch: every result path (original graph vertex ids)
    /// is pushed to `on_path` together with the request that produced it, so
    /// the host never materialises a result set.
    ///
    /// This entry point always runs serially on a single device and ignores
    /// [`SchedulerConfig::dispatch`] (the outcome's `measured` is `None`):
    /// its callback need not be [`Send`], so it cannot be handed to the CU
    /// worker threads. For dispatch-mode streaming use
    /// [`Self::run_batch_dispatch_streaming`], whose callback bound is the
    /// only difference. Only [`Self::run_batch`], with its trivially-`Send`
    /// discard callback, switches between the two on the config flag.
    ///
    /// Returning [`ControlFlow::Break`] from the callback terminates *that
    /// request's* enumeration early; the rest of the batch still runs. With
    /// deduplication on, a duplicated request's paths are streamed once, for
    /// the first occurrence; its [`BatchQueryResult`] rows still cover every
    /// slot.
    pub fn run_batch_streaming<F>(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
        mut on_path: F,
    ) -> Result<BatchOutcome, HostError>
    where
        F: FnMut(&QueryRequest, &[VertexId]) -> ControlFlow<()>,
    {
        let staged = self.stage_batch(graph, requests)?;

        let mut options = self.config.variant.engine_options();
        options.bank_placement = graph.placement;
        let mut unique_results = Vec::with_capacity(staged.unique.len());
        let mut unique_cycles = Vec::with_capacity(staged.unique.len());
        let mut device_millis = 0.0;
        for (q, prep) in staged.unique.iter().zip(&staged.prepared) {
            let mut sink = FnSink(|path: &[VertexId]| on_path(q, path));
            let result =
                run_prepared_with_sink(prep, options.clone(), &self.config.device, &mut sink);
            device_millis += result.query_millis;
            unique_cycles.push(result.device.cycles);
            unique_results.push(BatchQueryResult {
                request: *q,
                num_paths: result.num_paths,
                device_millis: result.query_millis,
            });
        }

        Ok(staged.into_outcome(
            unique_results,
            unique_cycles,
            device_millis,
            &self.config.multi_cu,
            None,
        ))
    }

    /// Dispatch-mode [`Self::run_batch`]: the unique queries execute
    /// concurrently on a real [`CuCluster`], and the outcome additionally
    /// carries [`BatchOutcome::measured`]. Results are counted, never
    /// materialised.
    pub fn run_batch_dispatch(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
    ) -> Result<BatchOutcome, HostError> {
        self.run_batch_dispatch_streaming(graph, requests, |_, _| ControlFlow::Continue(()))
    }

    /// Streaming dispatch: runs the batch's unique queries on
    /// [`SchedulerConfig::multi_cu`] compute units, one OS thread per CU.
    ///
    /// Each worker owns one CU of a [`CuCluster`] (its own simulated BRAM,
    /// counters and clock, behind the shared DRAM arbiter) and pulls the next
    /// query from a shared work queue ordered longest-estimated-first — the
    /// greedy LPT policy [`pefp_fpga::schedule_batch`] models, driven by the
    /// walk-count estimate on each prepared subgraph. Pops are gated on
    /// *simulated* CU load (see [`DispatchQueue`]), so the assignment tracks
    /// the device clocks being co-simulated rather than the host scheduler's
    /// whims, while the engine runs themselves still execute concurrently.
    /// Every result path is pushed to `on_path` (serialised through a mutex,
    /// so the callback sees one path at a time even though queries run
    /// concurrently); returning [`ControlFlow::Break`] terminates *that
    /// request's* enumeration, as in [`Self::run_batch_streaming`].
    pub fn run_batch_dispatch_streaming<F>(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
        on_path: F,
    ) -> Result<BatchOutcome, HostError>
    where
        F: FnMut(&QueryRequest, &[VertexId]) -> ControlFlow<()> + Send,
    {
        let staged = self.stage_batch(graph, requests)?;
        let cus = self.config.multi_cu.compute_units.max(1);
        let cluster = CuCluster::new(self.config.device.clone(), self.config.multi_cu);
        let mut options = self.config.variant.engine_options();
        options.bank_placement = graph.placement;

        // LPT work queue: longest estimated enumeration first. The estimate
        // is the k-hop s-t walk count on the prepared subgraph (an upper
        // bound on the result volume) plus its edge count, so heavyweight
        // queries start early and stragglers stay short.
        let mut order: Vec<usize> = (0..staged.unique.len()).collect();
        let estimates: Vec<u64> = staged
            .prepared
            .iter()
            .map(|prep| {
                if !prep.feasible {
                    return 0;
                }
                count_st_walks(&prep.graph, prep.s, prep.t, prep.k)
                    .saturating_add(prep.graph.num_edges() as u64)
            })
            .collect();
        order.sort_by(|&a, &b| estimates[b].cmp(&estimates[a]).then(a.cmp(&b)));

        let queue = DispatchQueue::new(order, estimates, cus);
        let emit = Mutex::new(on_path);
        let staged_ref = &staged;
        let cluster_ref = &cluster;
        let queue_ref = &queue;
        let emit_ref = &emit;
        let options_ref = &options;

        let wall_start = Instant::now();
        let per_worker: Vec<Vec<(usize, pefp_core::PefpRunResult)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cus)
                .map(|cu| {
                    scope.spawn(move || {
                        // The CU counts as bus-active until it drains
                        // the queue: a worker parked on the queue gate
                        // is *busy in simulated time* (its next job just
                        // has not been wall-executed yet), so dropping
                        // activation there would understate contention
                        // whenever the host has fewer cores than CUs.
                        let _active = cluster_ref.arbiter().activate();
                        let mut rows = Vec::new();
                        while let Some((job, estimate)) = queue_ref.pop(cu) {
                            let request = staged_ref.unique[job];
                            let prep = &staged_ref.prepared[job];
                            let mut sink = FnSink(|path: &[VertexId]| {
                                let mut cb = emit_ref.lock().expect("path callback poisoned");
                                (*cb)(&request, path)
                            });
                            let result = run_prepared_on_device(
                                prep,
                                options_ref.clone(),
                                cluster_ref.device_for_cu(cu),
                                &mut sink,
                            );
                            queue_ref.complete(cu, estimate, result.device.cycles);
                            rows.push((job, result));
                        }
                        rows
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("CU worker panicked")).collect()
        });
        let wall_millis = wall_start.elapsed().as_secs_f64() * 1e3;

        // Fold the per-worker rows back into per-unique-query order and the
        // measured per-CU accounting.
        let mut unique_results: Vec<Option<BatchQueryResult>> = vec![None; staged.unique.len()];
        let mut workloads: Vec<CuWorkload> = vec![CuWorkload::default(); staged.unique.len()];
        let mut per_cu_busy_cycles = vec![0u64; cus];
        let mut per_cu_queries = vec![0usize; cus];
        let mut per_cu_bank_conflict_cycles = vec![0u64; cus];
        let mut per_cu_turnaround_cycles = vec![0u64; cus];
        let mut device_millis = 0.0;
        let mut contention_cycles = 0u64;
        for (cu, rows) in per_worker.into_iter().enumerate() {
            for (job, result) in rows {
                per_cu_busy_cycles[cu] += result.device.cycles;
                per_cu_queries[cu] += 1;
                per_cu_bank_conflict_cycles[cu] += result.device.bank_conflict_cycles;
                per_cu_turnaround_cycles[cu] += result.device.turnaround_cycles;
                device_millis += result.query_millis;
                contention_cycles += result.device.contention_cycles;
                // Uncontended cost: strip what the shared bus (contention)
                // and the bank model (charged conflict + turnaround stalls)
                // injected; the predictor adds both back from its own terms.
                let bank_stall_cycles =
                    result.device.bank_conflict_cycles + result.device.turnaround_cycles;
                workloads[job] = CuWorkload {
                    cycles: result.device.cycles
                        - result.device.contention_cycles
                        - bank_stall_cycles,
                    dram_cycles: result.device.dram_cycles,
                    bank_stall_cycles,
                };
                unique_results[job] = Some(BatchQueryResult {
                    request: staged.unique[job],
                    num_paths: result.num_paths,
                    device_millis: result.query_millis,
                });
            }
        }
        let unique_results: Vec<BatchQueryResult> =
            unique_results.into_iter().map(|r| r.expect("every unique query executed")).collect();
        let unique_cycles: Vec<u64> = workloads.iter().map(|w| w.cycles).collect();

        let makespan_cycles = per_cu_busy_cycles.iter().copied().max().unwrap_or(0);
        let measured = MeasuredMultiCu {
            compute_units: cus,
            per_cu_busy_cycles,
            per_cu_queries,
            makespan_cycles,
            serial_cycles: unique_cycles.iter().sum(),
            contention_cycles,
            per_cu_bank_conflict_cycles,
            per_cu_turnaround_cycles,
            arbiter: cluster.arbiter().stats(),
            predicted: predict_dispatch(&workloads, &self.config.multi_cu),
            wall_millis,
        };

        Ok(staged.into_outcome(
            unique_results,
            unique_cycles,
            device_millis,
            &self.config.multi_cu,
            Some(measured),
        ))
    }

    /// The host-side work shared by the counting and streaming batch runs:
    /// validation, deduplication, (parallel) preprocessing and the single
    /// batched DMA transfer.
    fn stage_batch(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
    ) -> Result<StagedBatch, HostError> {
        for q in requests {
            q.validate(&graph.csr)?;
        }

        // Deduplicate while remembering each request's slot.
        let mut unique: Vec<QueryRequest> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(requests.len());
        if self.config.dedup {
            let mut index: HashMap<QueryRequest, usize> = HashMap::new();
            for q in requests {
                let slot = *index.entry(*q).or_insert_with(|| {
                    unique.push(*q);
                    unique.len() - 1
                });
                slot_of.push(slot);
            }
        } else {
            unique = requests.to_vec();
            slot_of = (0..requests.len()).collect();
        }
        let deduplicated = requests.len() - unique.len();

        // Host preprocessing (timed as a whole, like the paper's T1).
        let started = Instant::now();
        let prepared = self.preprocess_all(graph, &unique);
        let preprocess_millis = started.elapsed().as_secs_f64() * 1e3;

        // One batched transfer of all payloads.
        let total_bytes: usize = prepared.iter().map(crate::binfmt::payload_bytes).sum();
        if total_bytes > self.config.device.dram_bytes {
            return Err(HostError::DeviceCapacity(format!(
                "batched payload is {total_bytes} bytes but device DRAM holds {}",
                self.config.device.dram_bytes
            )));
        }
        let pcie = Pcie::new(self.config.device.pcie_gbps, self.config.device.pcie_setup_us);
        let mut dma = DmaEngine::with_defaults(pcie);
        let transfer = dma.transfer(total_bytes);

        Ok(StagedBatch { unique, slot_of, prepared, preprocess_millis, transfer, deduplicated })
    }
}

/// The dispatch work queue: LPT-ordered jobs, popped in *simulated-time*
/// order.
///
/// Real hardware hands the next queued query to whichever CU becomes free
/// first — free in *device* time. When N simulated device clocks are
/// co-simulated by N host threads, "whoever locks the queue first" instead
/// reflects the host scheduler (on a single-core runner one thread can drain
/// the entire queue), which would corrupt the measured makespan. This queue
/// therefore gates each pop on the poppers' simulated load: a CU may take
/// the next job only while it is the least-loaded CU, counting in-flight
/// jobs at their LPT estimate until their true cycle count replaces it on
/// completion. Engine execution itself happens outside the lock, fully
/// concurrently.
struct DispatchQueue {
    state: Mutex<DispatchState>,
    wakeup: Condvar,
    order: Vec<usize>,
    estimates: Vec<u64>,
}

struct DispatchState {
    /// Next position in `order` to hand out.
    next: usize,
    /// Per-CU simulated load: completed cycles plus in-flight estimates.
    load: Vec<u64>,
    /// Workers that observed queue exhaustion and exited.
    done: Vec<bool>,
}

impl DispatchQueue {
    fn new(order: Vec<usize>, estimates: Vec<u64>, cus: usize) -> Self {
        DispatchQueue {
            state: Mutex::new(DispatchState {
                next: 0,
                load: vec![0; cus],
                done: vec![false; cus],
            }),
            wakeup: Condvar::new(),
            order,
            estimates,
        }
    }

    /// Takes the next job for `cu`, blocking while a less-loaded CU should
    /// pop first. Returns the job index and the estimate charged to the CU's
    /// load (to be replaced by the true cycle count via [`Self::complete`]),
    /// or `None` once the queue is empty.
    fn pop(&self, cu: usize) -> Option<(usize, u64)> {
        let mut state = self.state.lock().expect("dispatch queue poisoned");
        loop {
            if state.next >= self.order.len() {
                state.done[cu] = true;
                self.wakeup.notify_all();
                return None;
            }
            let my_load = state.load[cu];
            let am_least_loaded = (0..state.load.len()).filter(|&w| w != cu).all(|w| {
                state.done[w] || state.load[w] > my_load || (state.load[w] == my_load && w > cu)
            });
            if am_least_loaded {
                let job = self.order[state.next];
                state.next += 1;
                // Charge the estimate so concurrent poppers see this CU as
                // busy; `complete` swaps in the measured cycles. At least 1,
                // so even a zero-estimate job marks the CU as loaded.
                let estimate = self.estimates[job].max(1);
                state.load[cu] += estimate;
                self.wakeup.notify_all();
                return Some((job, estimate));
            }
            state = self.wakeup.wait(state).expect("dispatch queue poisoned");
        }
    }

    /// Replaces `cu`'s in-flight estimate with the measured cycle count.
    fn complete(&self, cu: usize, estimate: u64, actual_cycles: u64) {
        let mut state = self.state.lock().expect("dispatch queue poisoned");
        state.load[cu] = state.load[cu] - estimate + actual_cycles;
        self.wakeup.notify_all();
    }
}

/// A validated, deduplicated, preprocessed and transferred batch, ready for
/// device execution.
struct StagedBatch {
    unique: Vec<QueryRequest>,
    slot_of: Vec<usize>,
    prepared: Vec<PreparedQuery>,
    preprocess_millis: f64,
    transfer: DmaTransferReport,
    deduplicated: usize,
}

impl StagedBatch {
    /// Assembles the outcome: per-slot result rows plus the multi-CU schedule
    /// of the unique queries' (uncontended) kernel cycles, and the measured
    /// execution when the batch ran in dispatch mode.
    fn into_outcome(
        self,
        unique_results: Vec<BatchQueryResult>,
        unique_cycles: Vec<u64>,
        device_millis: f64,
        multi_cu: &MultiCuConfig,
        measured: Option<MeasuredMultiCu>,
    ) -> BatchOutcome {
        let results = self.slot_of.iter().map(|&slot| unique_results[slot]).collect();
        let multi_cu = schedule_batch(&unique_cycles, multi_cu);
        BatchOutcome {
            results,
            preprocess_millis: self.preprocess_millis,
            transfer: self.transfer,
            device_millis,
            deduplicated: self.deduplicated,
            multi_cu,
            measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::sampling::sample_reachable_pairs;
    use pefp_graph::CsrGraph;

    fn handle() -> GraphHandle {
        GraphHandle::from_csr("test", chung_lu(250, 5.0, 2.2, 61).to_csr())
    }

    fn requests(handle: &GraphHandle, k: u32, count: usize) -> Vec<QueryRequest> {
        sample_reachable_pairs(&handle.csr, k, count, 99)
            .into_iter()
            .map(|(s, t)| QueryRequest { s, t, k })
            .collect()
    }

    #[test]
    fn batch_results_match_the_naive_oracle() {
        let handle = handle();
        let reqs = requests(&handle, 3, 10);
        assert!(!reqs.is_empty());
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.results.len(), reqs.len());
        for (req, res) in reqs.iter().zip(&outcome.results) {
            let oracle = naive_dfs_enumerate(&handle.csr, req.s, req.t, req.k).len() as u64;
            assert_eq!(res.num_paths, oracle, "query {req:?}");
        }
        assert!(outcome.transfer.bytes > 0);
        assert!(outcome.total_millis() > 0.0);
    }

    #[test]
    fn duplicates_are_collapsed_but_answered_for_every_slot() {
        let handle = handle();
        let base = requests(&handle, 3, 3);
        assert!(base.len() >= 2);
        let mut reqs = base.clone();
        reqs.extend_from_slice(&base); // every query twice
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.deduplicated, base.len());
        assert_eq!(outcome.results.len(), reqs.len());
        for i in 0..base.len() {
            assert_eq!(outcome.results[i].num_paths, outcome.results[i + base.len()].num_paths);
        }
    }

    #[test]
    fn dedup_can_be_disabled() {
        let handle = handle();
        let base = requests(&handle, 3, 2);
        let mut reqs = base.clone();
        reqs.extend_from_slice(&base);
        let scheduler = BatchScheduler::new(SchedulerConfig { dedup: false, ..Default::default() });
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.deduplicated, 0);
        assert_eq!(outcome.results.len(), reqs.len());
    }

    #[test]
    fn parallel_preprocessing_gives_identical_results() {
        let handle = handle();
        let reqs = requests(&handle, 4, 12);
        let sequential =
            BatchScheduler::new(SchedulerConfig { preprocess_threads: 1, ..Default::default() })
                .run_batch(&handle, &reqs)
                .unwrap();
        let parallel =
            BatchScheduler::new(SchedulerConfig { preprocess_threads: 4, ..Default::default() })
                .run_batch(&handle, &reqs)
                .unwrap();
        let seq_counts: Vec<u64> = sequential.results.iter().map(|r| r.num_paths).collect();
        let par_counts: Vec<u64> = parallel.results.iter().map(|r| r.num_paths).collect();
        assert_eq!(seq_counts, par_counts);
    }

    #[test]
    fn batch_reports_a_multi_cu_schedule_next_to_the_serial_total() {
        let handle = handle();
        let reqs = requests(&handle, 4, 8);
        assert!(reqs.len() >= 4, "need a few queries to schedule");

        // Default config: one CU, makespan == serial total, speedup 1.
        let single =
            BatchScheduler::new(SchedulerConfig::default()).run_batch(&handle, &reqs).unwrap();
        assert_eq!(single.multi_cu.compute_units, 1);
        assert_eq!(single.multi_cu.makespan_cycles, single.multi_cu.serial_cycles);
        assert!((single.multi_cu_speedup() - 1.0).abs() < 1e-12);
        assert!((single.multi_cu_device_millis() - single.device_millis).abs() < 1e-9);

        // Four contention-free CUs: strictly faster on a multi-query batch.
        let multi = BatchScheduler::new(SchedulerConfig {
            multi_cu: MultiCuConfig {
                compute_units: 4,
                per_cu_bandwidth_share: 0.0,
                charge_banked: false,
            },
            ..SchedulerConfig::default()
        })
        .run_batch(&handle, &reqs)
        .unwrap();
        assert_eq!(multi.multi_cu.compute_units, 4);
        assert_eq!(multi.multi_cu.serial_cycles, single.multi_cu.serial_cycles);
        assert!(
            multi.multi_cu.makespan_cycles < multi.multi_cu.serial_cycles,
            "4 CUs must beat 1 on {} queries",
            reqs.len()
        );
        assert!(multi.multi_cu_speedup() > 1.0);
        assert!(multi.multi_cu_device_millis() < multi.device_millis);
        // The serial numbers are untouched by the model.
        assert_eq!(multi.total_paths(), single.total_paths());
    }

    #[test]
    fn streaming_batch_delivers_every_path_with_its_request() {
        use pefp_graph::paths::canonicalize;
        use std::collections::HashMap;

        let handle = handle();
        let reqs = requests(&handle, 3, 6);
        assert!(!reqs.is_empty());
        let scheduler = BatchScheduler::new(SchedulerConfig::default());

        let mut streamed: HashMap<QueryRequest, Vec<Vec<VertexId>>> = HashMap::new();
        let outcome = scheduler
            .run_batch_streaming(&handle, &reqs, |req, path| {
                streamed.entry(*req).or_default().push(path.to_vec());
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(outcome.results.len(), reqs.len());

        for req in &reqs {
            let oracle = naive_dfs_enumerate(&handle.csr, req.s, req.t, req.k);
            let got = streamed.remove(req).unwrap_or_default();
            assert_eq!(canonicalize(got), canonicalize(oracle), "query {req:?}");
        }

        // The counting and streaming paths agree on every aggregate.
        let counted = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.total_paths(), counted.total_paths());
        assert_eq!(outcome.multi_cu.serial_cycles, counted.multi_cu.serial_cycles);
    }

    #[test]
    fn streaming_batch_break_only_stops_one_request() {
        let handle = handle();
        let reqs = requests(&handle, 3, 4);
        assert!(reqs.len() >= 2);
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let full = scheduler.run_batch(&handle, &reqs).unwrap();
        let victim = full.results.iter().find(|r| r.num_paths > 1).map(|r| r.request);
        let Some(victim) = victim else { return };

        let outcome = scheduler
            .run_batch_streaming(&handle, &reqs, |req, _path| {
                if *req == victim {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        for (got, want) in outcome.results.iter().zip(&full.results) {
            if got.request == victim {
                assert_eq!(got.num_paths, 1, "the break lands after the first path");
            } else {
                assert_eq!(got.num_paths, want.num_paths, "other requests run to completion");
            }
        }
    }

    #[test]
    fn dispatch_counts_match_the_serial_batch_on_every_cu_width() {
        let handle = handle();
        let reqs = requests(&handle, 4, 10);
        assert!(reqs.len() >= 4);
        let serial =
            BatchScheduler::new(SchedulerConfig::default()).run_batch(&handle, &reqs).unwrap();
        for cus in [1usize, 2, 4] {
            let scheduler = BatchScheduler::new(SchedulerConfig {
                dispatch: true,
                multi_cu: MultiCuConfig {
                    compute_units: cus,
                    per_cu_bandwidth_share: 0.5,
                    charge_banked: false,
                },
                ..SchedulerConfig::default()
            });
            let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
            assert_eq!(outcome.results.len(), reqs.len());
            for (got, want) in outcome.results.iter().zip(&serial.results) {
                assert_eq!(got.request, want.request);
                assert_eq!(got.num_paths, want.num_paths, "cus = {cus}");
            }
            let measured = outcome.measured.as_ref().expect("dispatch reports measurements");
            assert_eq!(measured.compute_units, cus);
            assert_eq!(
                measured.per_cu_queries.iter().sum::<usize>(),
                serial.results.len() - serial.deduplicated
            );
            assert!(measured.makespan_cycles <= measured.serial_cycles);
            assert_eq!(
                measured.serial_cycles, serial.multi_cu.serial_cycles,
                "uncontended cycles are deterministic"
            );
            // A single CU cannot contend with itself: measured == serial.
            if cus == 1 {
                assert_eq!(measured.makespan_cycles, measured.serial_cycles);
                assert_eq!(measured.contention_cycles, 0);
            }
        }
    }

    #[test]
    fn dispatch_streams_every_path_and_honours_break() {
        use pefp_graph::paths::canonicalize;
        use std::collections::HashMap;

        let handle = handle();
        let reqs = requests(&handle, 3, 6);
        assert!(!reqs.is_empty());
        let scheduler = BatchScheduler::new(SchedulerConfig {
            dispatch: true,
            multi_cu: MultiCuConfig {
                compute_units: 2,
                per_cu_bandwidth_share: 0.5,
                charge_banked: false,
            },
            ..SchedulerConfig::default()
        });
        let streamed = Mutex::new(HashMap::<QueryRequest, Vec<Vec<VertexId>>>::new());
        let outcome = scheduler
            .run_batch_dispatch_streaming(&handle, &reqs, |req, path| {
                streamed.lock().unwrap().entry(*req).or_default().push(path.to_vec());
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(outcome.results.len(), reqs.len());
        let mut streamed = streamed.into_inner().unwrap();
        for req in &reqs {
            let oracle = naive_dfs_enumerate(&handle.csr, req.s, req.t, req.k);
            let got = streamed.remove(req).unwrap_or_default();
            assert_eq!(canonicalize(got), canonicalize(oracle), "query {req:?}");
        }

        // Break terminates only the victim request's enumeration.
        let full =
            BatchScheduler::new(SchedulerConfig::default()).run_batch(&handle, &reqs).unwrap();
        let Some(victim) = full.results.iter().find(|r| r.num_paths > 1).map(|r| r.request) else {
            return;
        };
        let outcome = scheduler
            .run_batch_dispatch_streaming(&handle, &reqs, |req, _path| {
                if *req == victim {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        for (got, want) in outcome.results.iter().zip(&full.results) {
            if got.request == victim {
                assert_eq!(got.num_paths, 1);
            } else {
                assert_eq!(got.num_paths, want.num_paths);
            }
        }
    }

    #[test]
    fn dispatch_measurement_and_prediction_share_the_cycle_domain() {
        // Queries on this tiny graph finish in microseconds, so how many a
        // given CU wins from the queue is timing-dependent; this test only
        // asserts the invariants that hold for *every* interleaving. The
        // tight predicted-vs-measured bound lives in the integration tests,
        // on a batch heavy enough that all CUs overlap.
        let handle = handle();
        let reqs = requests(&handle, 4, 16);
        assert!(reqs.len() >= 8);
        let scheduler = BatchScheduler::new(SchedulerConfig {
            dispatch: true,
            multi_cu: MultiCuConfig {
                compute_units: 2,
                per_cu_bandwidth_share: 0.5,
                charge_banked: false,
            },
            ..SchedulerConfig::default()
        });
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        let measured = outcome.measured.unwrap();
        // Two CUs at share 0.5 never saturate the bus: no contention, so the
        // per-CU busy cycles partition the serial total exactly.
        assert_eq!(measured.contention_cycles, 0);
        assert_eq!(measured.per_cu_busy_cycles.iter().sum::<u64>(), measured.serial_cycles);
        assert!(measured.makespan_cycles <= measured.serial_cycles);
        assert!(measured.makespan_cycles * 2 >= measured.serial_cycles, "2 CUs cap at 2x");
        let predicted = &measured.predicted;
        assert!(predicted.makespan_cycles > 0);
        assert!(predicted.makespan_cycles <= predicted.serial_cycles);
        assert!(predicted.makespan_cycles * 2 >= predicted.serial_cycles);
        assert_eq!(predicted.serial_cycles, measured.serial_cycles);
        assert!(measured.speedup() >= 1.0);
        assert!(measured.wall_millis > 0.0);
    }

    #[test]
    fn invalid_request_rejects_the_whole_batch() {
        let handle = handle();
        let mut reqs = requests(&handle, 3, 3);
        reqs.push(QueryRequest::new(0, 999_999, 3));
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        assert!(matches!(scheduler.run_batch(&handle, &reqs), Err(HostError::QueryInvalid(_))));
    }

    #[test]
    fn empty_batch_is_a_cheap_no_op() {
        let handle = handle();
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &[]).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.total_paths(), 0);
        assert_eq!(outcome.avg_query_millis(), 0.0);
        assert_eq!(outcome.deduplicated, 0);
    }

    #[test]
    fn batched_transfer_is_cheaper_than_per_query_transfers() {
        let handle = GraphHandle::from_csr(
            "dense",
            CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)]),
        );
        let reqs: Vec<QueryRequest> = (0..50).map(|_| QueryRequest::new(0, 5, 4)).collect();
        let scheduler = BatchScheduler::new(SchedulerConfig { dedup: false, ..Default::default() });
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        // One transfer for the whole batch, so the per-query share of the
        // setup cost is far below the standalone setup cost.
        assert!(outcome.transfer.descriptors >= 1);
        let per_query_transfer = outcome.transfer.total_millis / reqs.len() as f64;
        let single = {
            let pcie =
                Pcie::new(scheduler.config.device.pcie_gbps, scheduler.config.device.pcie_setup_us);
            let mut dma = DmaEngine::with_defaults(pcie);
            dma.transfer(outcome.transfer.bytes / reqs.len()).total_millis
        };
        assert!(per_query_transfer < single);
    }
}
