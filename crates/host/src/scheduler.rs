//! Batch scheduling of many queries into one transfer.
//!
//! The paper's evaluation methodology (Section VII-A) transfers "the 1,000
//! queries and their corresponding data graphs (after preprocessing) from the
//! host to FPGA DRAM at once", which amortises the PCIe setup cost to
//! 0.1–0.3 ms per query. This module reproduces that batching: it runs the
//! host-side Pre-BFS for a whole query set (optionally across host threads —
//! preprocessing is embarrassingly parallel across queries), deduplicates
//! identical requests, ships the concatenated payloads as a single DMA
//! transfer and then runs the queries back to back on the device.

use crate::dma::{DmaEngine, DmaTransferReport};
use crate::error::HostError;
use crate::loader::GraphHandle;
use crate::query::QueryRequest;
use pefp_core::{prepare_with, run_prepared, PefpVariant, PrepareContext, PreparedQuery};
use pefp_fpga::{DeviceConfig, Pcie};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Device profile.
    pub device: DeviceConfig,
    /// PEFP variant used for every query.
    pub variant: PefpVariant,
    /// Number of host threads used for preprocessing (1 = sequential).
    pub preprocess_threads: usize,
    /// Collapse duplicate `(s, t, k)` requests into one execution.
    pub dedup: bool,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            device: DeviceConfig::alveo_u200(),
            variant: PefpVariant::Full,
            preprocess_threads: 1,
            dedup: true,
        }
    }
}

/// Per-query result row of a batch run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchQueryResult {
    /// The request.
    pub request: QueryRequest,
    /// Number of result paths.
    pub num_paths: u64,
    /// Simulated device time for this query in milliseconds.
    pub device_millis: f64,
}

/// The outcome of scheduling one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-query results, in the order the requests were submitted
    /// (duplicates resolved to the same numbers when deduplication is on).
    pub results: Vec<BatchQueryResult>,
    /// Host wall-clock spent in preprocessing for the whole batch (ms).
    pub preprocess_millis: f64,
    /// The single batched DMA transfer.
    pub transfer: DmaTransferReport,
    /// Total simulated device time (ms).
    pub device_millis: f64,
    /// Number of requests that were served from a duplicate's result.
    pub deduplicated: usize,
}

impl BatchOutcome {
    /// Total batch time in milliseconds (preprocess + transfer + device).
    pub fn total_millis(&self) -> f64 {
        self.preprocess_millis + self.transfer.total_millis + self.device_millis
    }

    /// Average per-query total time in milliseconds.
    pub fn avg_query_millis(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.total_millis() / self.results.len() as f64
        }
    }

    /// Total number of result paths across the batch.
    pub fn total_paths(&self) -> u64 {
        self.results.iter().map(|r| r.num_paths).sum()
    }
}

/// Runs batches of queries against one graph.
#[derive(Debug)]
pub struct BatchScheduler {
    config: SchedulerConfig,
}

impl BatchScheduler {
    /// Creates a scheduler with `config`.
    pub fn new(config: SchedulerConfig) -> Self {
        BatchScheduler { config }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Preprocesses the unique queries, possibly across several host threads.
    /// Each thread owns one [`PrepareContext`] seeded with the graph's
    /// prebuilt reverse CSR, so scratch allocations amortise across the batch
    /// and no worker ever recomputes `g.reverse()`.
    fn preprocess_all(&self, graph: &GraphHandle, unique: &[QueryRequest]) -> Vec<PreparedQuery> {
        let threads = self.config.preprocess_threads.max(1).min(unique.len().max(1));
        if threads <= 1 || unique.len() <= 1 {
            let mut ctx = PrepareContext::with_reverse(&graph.csr, Arc::clone(&graph.reverse));
            return unique
                .iter()
                .map(|q| prepare_with(&mut ctx, &graph.csr, q.s, q.t, q.k, self.config.variant))
                .collect();
        }
        // Static round-robin split across scoped threads; order is restored
        // by index so the output lines up with `unique`.
        let mut prepared: Vec<Option<PreparedQuery>> = vec![None; unique.len()];
        let chunks: Vec<Vec<(usize, QueryRequest)>> = {
            let mut chunks = vec![Vec::new(); threads];
            for (i, q) in unique.iter().enumerate() {
                chunks[i % threads].push((i, *q));
            }
            chunks
        };
        let csr = &graph.csr;
        let reverse = &graph.reverse;
        let variant = self.config.variant;
        let results: Vec<Vec<(usize, PreparedQuery)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut ctx = PrepareContext::with_reverse(csr, Arc::clone(reverse));
                        chunk
                            .into_iter()
                            .map(|(i, q)| (i, prepare_with(&mut ctx, csr, q.s, q.t, q.k, variant)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("preprocess thread panicked")).collect()
        });
        for chunk in results {
            for (i, p) in chunk {
                prepared[i] = Some(p);
            }
        }
        prepared.into_iter().map(|p| p.expect("every query preprocessed")).collect()
    }

    /// Runs a batch of queries against `graph` and returns the batch outcome.
    ///
    /// Every request is validated first; the whole batch is rejected if any
    /// request is invalid (matching the all-or-nothing transfer).
    pub fn run_batch(
        &self,
        graph: &GraphHandle,
        requests: &[QueryRequest],
    ) -> Result<BatchOutcome, HostError> {
        for q in requests {
            q.validate(&graph.csr)?;
        }

        // Deduplicate while remembering each request's slot.
        let mut unique: Vec<QueryRequest> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(requests.len());
        if self.config.dedup {
            let mut index: HashMap<QueryRequest, usize> = HashMap::new();
            for q in requests {
                let slot = *index.entry(*q).or_insert_with(|| {
                    unique.push(*q);
                    unique.len() - 1
                });
                slot_of.push(slot);
            }
        } else {
            unique = requests.to_vec();
            slot_of = (0..requests.len()).collect();
        }
        let deduplicated = requests.len() - unique.len();

        // Host preprocessing (timed as a whole, like the paper's T1).
        let started = Instant::now();
        let prepared = self.preprocess_all(graph, &unique);
        let preprocess_millis = started.elapsed().as_secs_f64() * 1e3;

        // One batched transfer of all payloads.
        let total_bytes: usize = prepared.iter().map(crate::binfmt::payload_bytes).sum();
        if total_bytes > self.config.device.dram_bytes {
            return Err(HostError::DeviceCapacity(format!(
                "batched payload is {total_bytes} bytes but device DRAM holds {}",
                self.config.device.dram_bytes
            )));
        }
        let pcie = Pcie::new(self.config.device.pcie_gbps, self.config.device.pcie_setup_us);
        let mut dma = DmaEngine::with_defaults(pcie);
        let transfer = dma.transfer(total_bytes);

        // Device execution, one query at a time (the device is a single
        // kernel; per-query results are what Fig. 8 averages over).
        let mut options = self.config.variant.engine_options();
        options.collect_paths = false;
        let mut unique_results = Vec::with_capacity(unique.len());
        let mut device_millis = 0.0;
        for (q, prep) in unique.iter().zip(&prepared) {
            let result = run_prepared(prep, options.clone(), &self.config.device);
            device_millis += result.query_millis;
            unique_results.push(BatchQueryResult {
                request: *q,
                num_paths: result.num_paths,
                device_millis: result.query_millis,
            });
        }

        let results = slot_of.iter().map(|&slot| unique_results[slot]).collect();
        Ok(BatchOutcome { results, preprocess_millis, transfer, device_millis, deduplicated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::sampling::sample_reachable_pairs;
    use pefp_graph::CsrGraph;

    fn handle() -> GraphHandle {
        GraphHandle::from_csr("test", chung_lu(250, 5.0, 2.2, 61).to_csr())
    }

    fn requests(handle: &GraphHandle, k: u32, count: usize) -> Vec<QueryRequest> {
        sample_reachable_pairs(&handle.csr, k, count, 99)
            .into_iter()
            .map(|(s, t)| QueryRequest { s, t, k })
            .collect()
    }

    #[test]
    fn batch_results_match_the_naive_oracle() {
        let handle = handle();
        let reqs = requests(&handle, 3, 10);
        assert!(!reqs.is_empty());
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.results.len(), reqs.len());
        for (req, res) in reqs.iter().zip(&outcome.results) {
            let oracle = naive_dfs_enumerate(&handle.csr, req.s, req.t, req.k).len() as u64;
            assert_eq!(res.num_paths, oracle, "query {req:?}");
        }
        assert!(outcome.transfer.bytes > 0);
        assert!(outcome.total_millis() > 0.0);
    }

    #[test]
    fn duplicates_are_collapsed_but_answered_for_every_slot() {
        let handle = handle();
        let base = requests(&handle, 3, 3);
        assert!(base.len() >= 2);
        let mut reqs = base.clone();
        reqs.extend_from_slice(&base); // every query twice
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.deduplicated, base.len());
        assert_eq!(outcome.results.len(), reqs.len());
        for i in 0..base.len() {
            assert_eq!(outcome.results[i].num_paths, outcome.results[i + base.len()].num_paths);
        }
    }

    #[test]
    fn dedup_can_be_disabled() {
        let handle = handle();
        let base = requests(&handle, 3, 2);
        let mut reqs = base.clone();
        reqs.extend_from_slice(&base);
        let scheduler = BatchScheduler::new(SchedulerConfig { dedup: false, ..Default::default() });
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        assert_eq!(outcome.deduplicated, 0);
        assert_eq!(outcome.results.len(), reqs.len());
    }

    #[test]
    fn parallel_preprocessing_gives_identical_results() {
        let handle = handle();
        let reqs = requests(&handle, 4, 12);
        let sequential =
            BatchScheduler::new(SchedulerConfig { preprocess_threads: 1, ..Default::default() })
                .run_batch(&handle, &reqs)
                .unwrap();
        let parallel =
            BatchScheduler::new(SchedulerConfig { preprocess_threads: 4, ..Default::default() })
                .run_batch(&handle, &reqs)
                .unwrap();
        let seq_counts: Vec<u64> = sequential.results.iter().map(|r| r.num_paths).collect();
        let par_counts: Vec<u64> = parallel.results.iter().map(|r| r.num_paths).collect();
        assert_eq!(seq_counts, par_counts);
    }

    #[test]
    fn invalid_request_rejects_the_whole_batch() {
        let handle = handle();
        let mut reqs = requests(&handle, 3, 3);
        reqs.push(QueryRequest::new(0, 999_999, 3));
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        assert!(matches!(scheduler.run_batch(&handle, &reqs), Err(HostError::QueryInvalid(_))));
    }

    #[test]
    fn empty_batch_is_a_cheap_no_op() {
        let handle = handle();
        let scheduler = BatchScheduler::new(SchedulerConfig::default());
        let outcome = scheduler.run_batch(&handle, &[]).unwrap();
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.total_paths(), 0);
        assert_eq!(outcome.avg_query_millis(), 0.0);
        assert_eq!(outcome.deduplicated, 0);
    }

    #[test]
    fn batched_transfer_is_cheaper_than_per_query_transfers() {
        let handle = GraphHandle::from_csr(
            "dense",
            CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)]),
        );
        let reqs: Vec<QueryRequest> = (0..50).map(|_| QueryRequest::new(0, 5, 4)).collect();
        let scheduler = BatchScheduler::new(SchedulerConfig { dedup: false, ..Default::default() });
        let outcome = scheduler.run_batch(&handle, &reqs).unwrap();
        // One transfer for the whole batch, so the per-query share of the
        // setup cost is far below the standalone setup cost.
        assert!(outcome.transfer.descriptors >= 1);
        let per_query_transfer = outcome.transfer.total_millis / reqs.len() as f64;
        let single = {
            let pcie =
                Pcie::new(scheduler.config.device.pcie_gbps, scheduler.config.device.pcie_setup_us);
            let mut dma = DmaEngine::with_defaults(pcie);
            dma.transfer(outcome.transfer.bytes / reqs.len()).total_millis
        };
        assert!(per_query_transfer < single);
    }
}
