//! The TCP front door: real sockets in front of the shared [`HostRuntime`].
//!
//! Everything below [`crate::server`] is transport-agnostic (`BufRead` +
//! `Write`); this module supplies the missing production transport. A
//! [`NetServer`] binds a [`std::net::TcpListener`], accepts up to a
//! configured number of concurrent connections and spawns one reader thread
//! per connection, every one of them a [`HostSession::attach`] handle
//! funnelling into one shared runtime — the same multiplexing
//! [`crate::server::serve_shared`] does for in-process pairs, now over real
//! sockets.
//!
//! **Protocol sniffing.** The first byte of a connection picks the protocol:
//! [`wire::FRAME_MAGIC`] (non-ASCII) selects the binary frame protocol of
//! [`crate::wire`], anything else falls through to the text line protocol of
//! [`crate::server`]. One port serves both.
//!
//! **Backpressure.** An admission-queue rejection
//! ([`crate::HostError::QueueFull`]) becomes a typed [`wire::Reply::Busy`]
//! frame (binary) or the usual `ERR admission queue full ...` line (text) —
//! the connection survives and the client decides when to retry. Beyond
//! [`NetConfig::max_connections`] concurrent connections, new arrivals get
//! one `ERR server at connection capacity` line and are closed.
//!
//! **Cancellation on disconnect.** Streamed paths are written and flushed
//! chunk-by-chunk; when the peer closes its socket mid-`STREAM`, the next
//! flush fails, the sink breaks, the session cancels the running job's
//! [`crate::JobTicket`] and the engine stops at its next batch boundary —
//! the CU lease goes back to the pool. PR 7 proved this with an in-process
//! failing writer; over TCP it is now the default hang-up path.
//!
//! **Shutdown.** [`NetServer::shutdown`] (also run on drop) stops the
//! acceptor, shuts down every live connection socket and joins every
//! thread; it is idempotent.

use crate::error::HostError;
use crate::query::QueryRequest;
use crate::runtime::HostRuntime;
use crate::server::{
    self, MAX_BATCH_QUERIES, MAX_INLINE_PATHS, MAX_STREAM_LIMIT, MAX_UPDATE_EDGES,
};
use crate::session::HostSession;
use crate::wire::{self, ErrCode, Reply, Request, WireError};
use pefp_graph::sink::{FirstN, PathSink};
use pefp_graph::{GraphDelta, VertexId};
use pefp_workload::{JsonValue, ToJson};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Configuration of the TCP front door.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Maximum concurrent connections; arrivals beyond it are answered with
    /// one `ERR server at connection capacity` line and closed.
    pub max_connections: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig { max_connections: 1024 }
    }
}

/// A snapshot of the front door's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted by the listener.
    pub accepted: u64,
    /// Connections refused because [`NetConfig::max_connections`] was
    /// reached.
    pub rejected_at_capacity: u64,
    /// Connections currently being served.
    pub active: u64,
    /// Connections that spoke the binary frame protocol.
    pub binary_connections: u64,
    /// Connections that spoke the text line protocol.
    pub text_connections: u64,
    /// Binary request frames served.
    pub frames: u64,
    /// Text protocol lines served.
    pub lines: u64,
    /// `BUSY` replies sent for admission-queue rejections.
    pub busy_replies: u64,
    /// Malformed/unknown/corrupt frames answered with a typed `ERR` frame.
    pub protocol_errors: u64,
    /// Connections that ended in a transport error (typically the peer
    /// hanging up mid-reply) rather than a clean EOF or `QUIT`.
    pub io_disconnects: u64,
}

impl ToJson for NetStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("accepted", JsonValue::Number(self.accepted as f64)),
            ("rejected_at_capacity", JsonValue::Number(self.rejected_at_capacity as f64)),
            ("active", JsonValue::Number(self.active as f64)),
            ("binary_connections", JsonValue::Number(self.binary_connections as f64)),
            ("text_connections", JsonValue::Number(self.text_connections as f64)),
            ("frames", JsonValue::Number(self.frames as f64)),
            ("lines", JsonValue::Number(self.lines as f64)),
            ("busy_replies", JsonValue::Number(self.busy_replies as f64)),
            ("protocol_errors", JsonValue::Number(self.protocol_errors as f64)),
            ("io_disconnects", JsonValue::Number(self.io_disconnects as f64)),
        ])
    }
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected_at_capacity: AtomicU64,
    active: AtomicU64,
    binary_connections: AtomicU64,
    text_connections: AtomicU64,
    frames: AtomicU64,
    lines: AtomicU64,
    busy_replies: AtomicU64,
    protocol_errors: AtomicU64,
    io_disconnects: AtomicU64,
}

struct NetShared {
    runtime: Arc<HostRuntime>,
    config: NetConfig,
    shutdown: AtomicBool,
    counters: Counters,
    /// Clones of every live connection's stream, for shutdown.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Join handles of the per-connection threads.
    workers: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
}

/// A running TCP front door. Dropping it shuts the listener and every
/// connection down and joins all serving threads.
pub struct NetServer {
    shared: Arc<NetShared>,
    addr: SocketAddr,
    acceptor: Mutex<Option<JoinHandle<()>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
    /// accepting connections into `runtime`.
    pub fn bind(
        runtime: Arc<HostRuntime>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(NetShared {
            runtime,
            config,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            conns: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let acceptor = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(NetServer { shared, addr, acceptor: Mutex::new(Some(acceptor)) })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The runtime this front door serves.
    pub fn runtime(&self) -> &Arc<HostRuntime> {
        &self.shared.runtime
    }

    /// A snapshot of the front door's counters.
    pub fn stats(&self) -> NetStats {
        let c = &self.shared.counters;
        NetStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected_at_capacity: c.rejected_at_capacity.load(Ordering::Relaxed),
            active: c.active.load(Ordering::Relaxed),
            binary_connections: c.binary_connections.load(Ordering::Relaxed),
            text_connections: c.text_connections.load(Ordering::Relaxed),
            frames: c.frames.load(Ordering::Relaxed),
            lines: c.lines.load(Ordering::Relaxed),
            busy_replies: c.busy_replies.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            io_disconnects: c.io_disconnects.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, severs every live connection and joins all serving
    /// threads. Idempotent; also run on drop.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor: a throwaway loopback connection makes its
        // blocking accept() return so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.lock().expect("acceptor lock").take() {
            let _ = handle.join();
        }
        // Sever live connections; their reader threads wake with EOF/error.
        let conns: Vec<TcpStream> = {
            let mut map = self.shared.conns.lock().expect("conns lock");
            map.drain().map(|(_, s)| s).collect()
        };
        for stream in conns {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let workers: Vec<JoinHandle<()>> = {
            let mut held = self.shared.workers.lock().expect("workers lock");
            held.drain(..).collect()
        };
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<NetShared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        if shared.counters.active.load(Ordering::Relaxed) >= shared.config.max_connections as u64 {
            shared.counters.rejected_at_capacity.fetch_add(1, Ordering::Relaxed);
            let mut stream = stream;
            let _ = writeln!(
                stream,
                "ERR server at connection capacity ({})",
                shared.config.max_connections
            );
            continue; // drop closes the socket
        }
        shared.counters.active.fetch_add(1, Ordering::Relaxed);
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").insert(id, clone);
        }
        let conn_shared = Arc::clone(&shared);
        let worker = std::thread::spawn(move || {
            handle_connection(stream, id, &conn_shared);
        });
        shared.workers.lock().expect("workers lock").push(worker);
    }
}

fn handle_connection(stream: TcpStream, id: u64, shared: &Arc<NetShared>) {
    let _ = stream.set_nodelay(true);
    if serve_connection(&stream, shared).is_err() {
        shared.counters.io_disconnects.fetch_add(1, Ordering::Relaxed);
    }
    shared.conns.lock().expect("conns lock").remove(&id);
    shared.counters.active.fetch_sub(1, Ordering::Relaxed);
}

/// Sniffs the protocol from the first byte (without consuming it) and runs
/// the matching serve loop.
fn serve_connection(stream: &TcpStream, shared: &Arc<NetShared>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream.try_clone()?;
    let Some(&first) = reader.fill_buf()?.first() else {
        return Ok(()); // the peer connected and left without a byte
    };
    let mut session = HostSession::attach(Arc::clone(&shared.runtime));
    if first == wire::FRAME_MAGIC {
        shared.counters.binary_connections.fetch_add(1, Ordering::Relaxed);
        serve_binary(&mut session, &mut reader, &mut writer, shared)
    } else {
        shared.counters.text_connections.fetch_add(1, Ordering::Relaxed);
        let served = server::serve(&mut session, reader, writer)?;
        shared.counters.lines.fetch_add(served as u64, Ordering::Relaxed);
        Ok(())
    }
}

fn write_reply_flush<W: Write>(writer: &mut W, reply: &Reply) -> std::io::Result<()> {
    reply.write_to(writer)?;
    writer.flush()
}

/// Maps a runtime failure onto the wire: `QueueFull` is typed backpressure
/// ([`Reply::Busy`]), bad queries and everything else are `ERR` frames.
fn host_error_reply(e: &HostError, shared: &NetShared) -> Reply {
    match e {
        HostError::QueueFull => {
            shared.counters.busy_replies.fetch_add(1, Ordering::Relaxed);
            Reply::Busy
        }
        HostError::QueryParse(_) | HostError::QueryInvalid(_) => {
            Reply::Error { code: ErrCode::BadQuery, message: e.to_string() }
        }
        other => Reply::Error { code: ErrCode::Host, message: other.to_string() },
    }
}

fn millis_to_ns(ms: f64) -> u64 {
    (ms.max(0.0) * 1e6).round() as u64
}

/// Keeps the first [`MAX_INLINE_PATHS`] paths for a `QUERY` sample while the
/// rest are only counted (the binary twin of the text protocol's sample
/// sink).
#[derive(Default)]
struct BinarySampleSink {
    first: Vec<Vec<u32>>,
}

impl PathSink for BinarySampleSink {
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        if self.first.len() < MAX_INLINE_PATHS {
            self.first.push(path.iter().map(|v| v.0).collect());
        }
        ControlFlow::Continue(())
    }
}

/// Writes streamed paths as incremental [`Reply::Paths`] frames, flushed per
/// chunk. A write failure — the peer hung up — breaks the sink, which makes
/// the session cancel the running job's ticket (see the module docs).
struct FrameSink<'w, W: Write> {
    writer: &'w mut W,
    current: Vec<Vec<u32>>,
    error: Option<std::io::Error>,
}

impl<W: Write> PathSink for FrameSink<'_, W> {
    fn emit(&mut self, path: &[VertexId]) -> ControlFlow<()> {
        self.current.push(path.iter().map(|v| v.0).collect());
        if self.current.len() < wire::STREAM_FRAME_PATHS {
            return ControlFlow::Continue(());
        }
        let chunk = Reply::Paths(std::mem::take(&mut self.current));
        match chunk.write_to(self.writer).and_then(|()| self.writer.flush()) {
            Ok(()) => ControlFlow::Continue(()),
            Err(e) => {
                self.error = Some(e);
                ControlFlow::Break(())
            }
        }
    }
}

/// One binary connection's request loop. Frame-level failures that leave the
/// stream framed (bad checksum, unknown opcode, malformed payload) get a
/// typed `ERR` frame and the connection survives; a desynchronised stream
/// (bad magic, oversized declared length) gets a final `ERR` frame and the
/// connection closes.
fn serve_binary<R: BufRead>(
    session: &mut HostSession,
    reader: &mut R,
    writer: &mut TcpStream,
    shared: &Arc<NetShared>,
) -> std::io::Result<()> {
    loop {
        let request = match wire::read_frame(reader) {
            Ok(None) => return Ok(()),
            Ok(Some(raw)) => match Request::decode(&raw) {
                Ok(request) => request,
                Err(e) => {
                    shared.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let reply = Reply::Error { code: e.err_code(), message: e.to_string() };
                    write_reply_flush(writer, &reply)?;
                    continue;
                }
            },
            Err(WireError::Io(e)) => return Err(e),
            Err(e @ WireError::Checksum { .. }) => {
                // The corrupt payload was fully consumed: still framed.
                shared.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = Reply::Error { code: e.err_code(), message: e.to_string() };
                write_reply_flush(writer, &reply)?;
                continue;
            }
            Err(e) => {
                // BadMagic / Oversized: the stream position is lost; one
                // final ERR frame, then hang up.
                shared.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = Reply::Error { code: e.err_code(), message: e.to_string() };
                let _ = write_reply_flush(writer, &reply);
                return Ok(());
            }
        };
        shared.counters.frames.fetch_add(1, Ordering::Relaxed);
        if matches!(request, Request::Quit) {
            write_reply_flush(writer, &Reply::Bye)?;
            return Ok(());
        }
        handle_request(session, request, writer, shared)?;
    }
}

fn handle_request(
    session: &mut HostSession,
    request: Request,
    writer: &mut TcpStream,
    shared: &Arc<NetShared>,
) -> std::io::Result<()> {
    match request {
        Request::Query { s, t, k } => {
            let mut sink = BinarySampleSink::default();
            let outcome = session.run_query_streaming(QueryRequest::new(s, t, k), &mut sink);
            let reply = match outcome {
                Ok(outcome) => Reply::Summary {
                    num_paths: outcome.num_paths,
                    preprocess_ns: millis_to_ns(outcome.preprocess_millis),
                    transfer_ns: millis_to_ns(outcome.transfer.total_millis),
                    device_ns: millis_to_ns(outcome.device_millis),
                    cache_hit: outcome.cache_hit,
                    sample: sink.first,
                },
                Err(e) => host_error_reply(&e, shared),
            };
            write_reply_flush(writer, &reply)
        }
        Request::Count { s, t, k } => {
            let reply = match session.run_query_counting(QueryRequest::new(s, t, k)) {
                Ok(outcome) => Reply::Summary {
                    num_paths: outcome.num_paths,
                    preprocess_ns: millis_to_ns(outcome.preprocess_millis),
                    transfer_ns: millis_to_ns(outcome.transfer.total_millis),
                    device_ns: millis_to_ns(outcome.device_millis),
                    cache_hit: outcome.cache_hit,
                    sample: Vec::new(),
                },
                Err(e) => host_error_reply(&e, shared),
            };
            write_reply_flush(writer, &reply)
        }
        Request::Stream { s, t, k, limit } => {
            let limit = limit.min(MAX_STREAM_LIMIT);
            if limit == 0 {
                return write_reply_flush(writer, &Reply::End { streamed: 0, limit: 0 });
            }
            let mut sink =
                FirstN::new(limit, FrameSink { writer, current: Vec::new(), error: None });
            let outcome = session.run_query_streaming(QueryRequest::new(s, t, k), &mut sink);
            let inner = sink.into_inner();
            if let Some(e) = inner.error {
                return Err(e);
            }
            let tail = inner.current;
            match outcome {
                Ok(outcome) => {
                    if !tail.is_empty() {
                        Reply::Paths(tail).write_to(writer)?;
                    }
                    write_reply_flush(writer, &Reply::End { streamed: outcome.num_paths, limit })
                }
                Err(e) => write_reply_flush(writer, &host_error_reply(&e, shared)),
            }
        }
        Request::Batch { queries } => {
            if queries.len() > MAX_BATCH_QUERIES {
                let reply = Reply::Error {
                    code: ErrCode::BadQuery,
                    message: format!(
                        "BATCH accepts at most {MAX_BATCH_QUERIES} queries, got {}",
                        queries.len()
                    ),
                };
                return write_reply_flush(writer, &reply);
            }
            let requests: Vec<QueryRequest> =
                queries.iter().map(|&(s, t, k)| QueryRequest::new(s, t, k)).collect();
            let reply = match session.run_batch(&requests) {
                Ok(outcome) => Reply::BatchOk {
                    unique: (outcome.results.len() - outcome.deduplicated) as u32,
                    cache_hits: outcome.cache_hits,
                    preprocess_ns: millis_to_ns(outcome.preprocess_millis),
                    transfer_ns: millis_to_ns(outcome.transfer_millis),
                    device_ns: millis_to_ns(outcome.device_millis),
                    paths_per_query: outcome.results.iter().map(|r| r.num_paths).collect(),
                },
                Err(e) => host_error_reply(&e, shared),
            };
            write_reply_flush(writer, &reply)
        }
        Request::Explain { s, t, k } => {
            let reply = match session.runtime() {
                Some(runtime) => match runtime.explain(QueryRequest::new(s, t, k)) {
                    Ok(decision) => Reply::Json(decision.to_json().render()),
                    Err(e) => host_error_reply(&e, shared),
                },
                None => host_error_reply(&HostError::NoGraphLoaded, shared),
            };
            write_reply_flush(writer, &reply)
        }
        Request::Update { remove, edges } => {
            if edges.is_empty() || edges.len() > MAX_UPDATE_EDGES {
                let reply = Reply::Error {
                    code: ErrCode::BadQuery,
                    message: format!(
                        "UPDATE expects 1..={MAX_UPDATE_EDGES} edges, got {}",
                        edges.len()
                    ),
                };
                return write_reply_flush(writer, &reply);
            }
            let mut delta = GraphDelta::new();
            for &(u, v) in &edges {
                if remove {
                    delta.remove_edge(VertexId(u), VertexId(v));
                } else {
                    delta.insert_edge(VertexId(u), VertexId(v));
                }
            }
            let reply = match session.apply_updates(&delta) {
                Ok(epoch) => Reply::UpdateOk { epoch, edges: delta.len() as u32 },
                Err(e) => host_error_reply(&e, shared),
            };
            write_reply_flush(writer, &reply)
        }
        Request::Stats => {
            let mut pairs = vec![("session", session.stats().to_json())];
            if let Some(runtime) = session.runtime() {
                pairs.push(("runtime", runtime.stats().to_json()));
            }
            write_reply_flush(writer, &Reply::Json(JsonValue::object(pairs).render()))
        }
        Request::Quit => unreachable!("QUIT is handled by the serve loop"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::GraphHandle;
    use crate::runtime::RuntimeConfig;
    use pefp_graph::CsrGraph;
    use std::io::Read;

    fn diamond_server(config: NetConfig) -> NetServer {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let runtime = HostRuntime::launch(
            GraphHandle::from_csr("diamond", g),
            RuntimeConfig { compute_units: 2, ..RuntimeConfig::default() },
        );
        NetServer::bind(runtime, "127.0.0.1:0", config).expect("bind loopback")
    }

    #[test]
    fn one_port_serves_both_protocols() {
        let server = diamond_server(NetConfig::default());
        // Text client.
        let mut text = TcpStream::connect(server.local_addr()).unwrap();
        writeln!(text, "COUNT 0 3 3").unwrap();
        writeln!(text, "QUIT").unwrap();
        let mut response = String::new();
        text.try_clone().unwrap().read_to_string(&mut response).unwrap();
        assert!(response.contains("paths=2"), "{response}");
        // Binary client on the same port.
        let mut bin = TcpStream::connect(server.local_addr()).unwrap();
        Request::Count { s: 0, t: 3, k: 3 }.write_to(&mut bin).unwrap();
        let mut reader = BufReader::new(bin.try_clone().unwrap());
        match Reply::read_from(&mut reader).unwrap().unwrap() {
            Reply::Summary { num_paths, sample, .. } => {
                assert_eq!(num_paths, 2);
                assert!(sample.is_empty());
            }
            other => panic!("unexpected reply {other:?}"),
        }
        Request::Quit.write_to(&mut bin).unwrap();
        assert_eq!(Reply::read_from(&mut reader).unwrap().unwrap(), Reply::Bye);
        let stats = server.stats();
        assert_eq!(stats.binary_connections, 1);
        assert_eq!(stats.text_connections, 1);
        server.shutdown();
    }

    #[test]
    fn connections_beyond_the_cap_get_an_err_line() {
        let server = diamond_server(NetConfig { max_connections: 1 });
        let held = TcpStream::connect(server.local_addr()).unwrap();
        // The first connection only counts as active once its thread starts;
        // poke it so the server is definitely serving it.
        let mut held_writer = held.try_clone().unwrap();
        writeln!(held_writer, "GRAPH").unwrap();
        let mut held_reader = BufReader::new(held.try_clone().unwrap());
        let mut line = String::new();
        held_reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK"), "{line}");

        let over = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(over);
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("ERR server at connection capacity"), "{reply}");
        assert_eq!(server.stats().rejected_at_capacity, 1);
        drop(held);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_severs_live_connections() {
        let server = diamond_server(NetConfig::default());
        let mut conn = TcpStream::connect(server.local_addr()).unwrap();
        writeln!(conn, "GRAPH").unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        server.shutdown();
        server.shutdown();
        // The severed connection reads EOF, not a hang.
        let mut rest = String::new();
        let _ = reader.read_to_string(&mut rest);
    }
}
