//! # pefp-host
//!
//! The host side of the CPU–FPGA system described in the paper's framework
//! overview (Section IV, Fig. 2). The FPGA never sees a file or a text query:
//! the host loads the graph into main memory, parses incoming queries,
//! runs the Pre-BFS preprocessing, serialises the prepared subgraph + barrier
//! into the device's DRAM layout, frames the transfer into DMA descriptors
//! over PCIe, launches the kernel and collects the results. This crate
//! implements that runtime around the simulated device of `pefp-fpga`:
//!
//! * [`loader`] — load graphs from edge-list files (SNAP/KONECT/plain) or the
//!   synthetic dataset catalog, with basic validation and statistics.
//! * [`query`] — parse and validate `QUERY s t k` requests.
//! * [`binfmt`] — the versioned, checksummed binary layout of the prepared
//!   query payload written to device DRAM.
//! * [`dma`] — descriptor-based DMA framing of a payload over the PCIe model.
//! * [`runtime`] — the concurrent [`HostRuntime`]: a persistent worker pool
//!   (one worker per simulated CU) behind a bounded, session-fair admission
//!   queue, sharing one `(s, t, k)`-keyed prepared-query cache across every
//!   attached session. Jobs complete through cancellable [`JobTicket`]s.
//! * [`session`] — a per-client [`HostSession`] handle over a runtime (a
//!   private single-CU one by default): per-query records and aggregate
//!   statistics. Results can be collected or streamed through a
//!   caller-supplied [`pefp_graph::PathSink`] (`run_query_streaming`), with
//!   emitted-vs-materialised counts tracked in [`SessionStats`].
//! * [`wire`] — the length-prefixed, checksummed binary wire protocol
//!   (request/reply frames for QUERY/COUNT/STREAM/BATCH/EXPLAIN/UPDATE/STATS)
//!   served next to the text line protocol.
//! * [`net`] — the TCP front door: a [`std::net::TcpListener`] accepting
//!   concurrent text or binary connections into one shared [`HostRuntime`],
//!   with typed BUSY backpressure and cancellation on client disconnect.
//! * [`scheduler`] — batch scheduling of many queries into a single transfer
//!   (the methodology of Section VII-A), with optional parallel host-side
//!   preprocessing, a streaming per-path callback form
//!   (`run_batch_streaming`) and a modelled multi-compute-unit makespan next
//!   to the single-CU total.
//!
//! ## Quick example
//!
//! ```
//! use pefp_host::session::{HostSession, SessionConfig};
//! use pefp_graph::{CsrGraph, VertexId};
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
//! let mut session = HostSession::with_graph(g, SessionConfig::default());
//! let outcome = session.run_text_query("QUERY 0 3 3").unwrap();
//! assert_eq!(outcome.num_paths, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod binfmt;
pub mod dma;
pub mod error;
pub mod loader;
pub mod net;
pub mod query;
pub mod runtime;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod wire;

pub use binfmt::{DevicePayload, PayloadHeader};
pub use dma::{DmaEngine, DmaTransferReport};
pub use error::HostError;
pub use loader::{load_dataset, load_edge_list_file, GraphHandle};
pub use net::{NetConfig, NetServer, NetStats};
pub use query::QueryRequest;
pub use runtime::{
    BatchTicket, EngineLaneStats, FaultToleranceConfig, HostRuntime, JobTicket,
    RuntimeBatchOutcome, RuntimeConfig, RuntimeStats, SessionId,
};
pub use scheduler::{BatchOutcome, BatchScheduler, MeasuredMultiCu, SchedulerConfig};
pub use server::{handle_line, serve, serve_shared, Reply};
pub use session::{HostSession, QueryOutcome, SessionConfig, SessionStats};
