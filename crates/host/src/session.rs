//! Long-lived host sessions.
//!
//! A session is one client's handle onto a [`HostRuntime`]: it parses and
//! validates queries, submits them as jobs, awaits their tickets and keeps
//! per-client statistics. Each query still walks the full workflow of Fig. 2
//! — parse → Pre-BFS → serialise → DMA transfer → device enumeration →
//! result collection — but the preprocessing cache, worker pool and compute
//! units behind it are owned by the runtime and may be shared with other
//! sessions ([`HostSession::attach`]). The classic standalone shape
//! ([`HostSession::with_graph`]) simply owns a private single-CU runtime, so
//! the paper's one-process deployment is the degenerate case.

use crate::dma::DmaTransferReport;
use crate::error::HostError;
use crate::loader::GraphHandle;
use crate::query::QueryRequest;
use crate::runtime::{HostRuntime, RuntimeConfig, SessionId};
use pefp_core::PefpVariant;
use pefp_fpga::DeviceConfig;
use pefp_graph::sink::PathSink;
use pefp_graph::{CsrGraph, Path};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Bounded per-query path channel between a streaming job's worker and the
/// session draining it into the caller's sink: deep enough to keep the CU
/// busy while the client formats, small enough that an abandoned client
/// backpressures its query almost immediately.
const STREAM_CHANNEL_PATHS: usize = 256;

/// Session-wide configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Device profile queries run against.
    pub device: DeviceConfig,
    /// Which PEFP variant to run (the full system by default; the ablation
    /// variants are exposed for experimentation).
    pub variant: PefpVariant,
    /// Use the host-side planner to size the engine per query instead of the
    /// variant's fixed defaults.
    pub use_planner: bool,
    /// Materialise result paths (`true`) or only count them.
    pub collect_paths: bool,
    /// Capacity of the `(s, t, k)`-keyed [`pefp_core::PreparedQuery`] LRU:
    /// repeated queries skip preprocessing entirely. `0` disables caching.
    pub prepared_cache_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            device: DeviceConfig::alveo_u200(),
            variant: PefpVariant::Full,
            use_planner: false,
            collect_paths: true,
            prepared_cache_capacity: 128,
        }
    }
}

/// The outcome of one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The request that was served.
    pub request: QueryRequest,
    /// Number of result paths.
    pub num_paths: u64,
    /// The result paths in the original graph's vertex ids (empty when the
    /// session runs in counting mode and for streaming queries, whose paths
    /// flow through the caller's sink instead).
    pub paths: Vec<Path>,
    /// Host-side preprocessing time (Pre-BFS) in milliseconds — the paper's `T1`.
    pub preprocess_millis: f64,
    /// PCIe/DMA transfer report for the prepared payload.
    pub transfer: DmaTransferReport,
    /// Simulated device time in milliseconds — the paper's `T2`.
    pub device_millis: f64,
    /// Whether preprocessing was served from the runtime's shared
    /// prepared-query cache.
    pub cache_hit: bool,
}

impl QueryOutcome {
    /// Total time `T = T1 + transfer + T2` in milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.preprocess_millis + self.transfer.total_millis + self.device_millis
    }
}

/// Aggregate statistics over all queries served by a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Queries served successfully.
    pub queries: u64,
    /// Queries rejected by parsing/validation.
    pub rejected: u64,
    /// Queries whose preprocessing was served from the prepared-query cache.
    pub cache_hits: u64,
    /// Total result paths across all queries.
    pub total_paths: u64,
    /// Paths that were materialised into `QueryOutcome::paths` vectors
    /// (collect-mode queries). High-volume deployments want this near zero.
    pub materialised_paths: u64,
    /// Paths streamed through caller-supplied [`PathSink`]s without the
    /// session ever materialising them.
    pub emitted_paths: u64,
    /// Sum of preprocessing times (ms).
    pub preprocess_millis: f64,
    /// Sum of transfer times (ms).
    pub transfer_millis: f64,
    /// Sum of device times (ms).
    pub device_millis: f64,
}

impl SessionStats {
    /// Average total time per served query in milliseconds.
    pub fn avg_total_millis(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.preprocess_millis + self.transfer_millis + self.device_millis)
                / self.queries as f64
        }
    }
}

impl pefp_workload::ToJson for SessionStats {
    fn to_json(&self) -> pefp_workload::JsonValue {
        use pefp_workload::JsonValue;
        JsonValue::object(vec![
            ("queries", JsonValue::Number(self.queries as f64)),
            ("rejected", JsonValue::Number(self.rejected as f64)),
            ("cache_hits", JsonValue::Number(self.cache_hits as f64)),
            ("total_paths", JsonValue::Number(self.total_paths as f64)),
            ("materialised_paths", JsonValue::Number(self.materialised_paths as f64)),
            ("emitted_paths", JsonValue::Number(self.emitted_paths as f64)),
            ("preprocess_millis", JsonValue::Number(self.preprocess_millis)),
            ("transfer_millis", JsonValue::Number(self.transfer_millis)),
            ("device_millis", JsonValue::Number(self.device_millis)),
            ("avg_total_millis", JsonValue::Number(self.avg_total_millis())),
        ])
    }
}

/// A host session: one client, many queries.
///
/// The session is a thin handle over a [`HostRuntime`]: queries are submitted
/// as jobs and awaited through their tickets, so the preprocessing cache,
/// persistent worker pool and compute units are the runtime's — shared with
/// every other attached session. [`HostSession::with_graph`] /
/// [`HostSession::set_graph`] build a private single-CU runtime, preserving
/// the classic one-process shape.
#[derive(Debug)]
pub struct HostSession {
    config: SessionConfig,
    runtime: Option<Arc<HostRuntime>>,
    session: SessionId,
    stats: SessionStats,
}

impl HostSession {
    /// Creates an empty session (no graph loaded yet).
    pub fn new(config: SessionConfig) -> Self {
        HostSession { config, runtime: None, session: 0, stats: SessionStats::default() }
    }

    /// Creates a session already holding `graph` (owned or shared) through a
    /// private single-CU runtime.
    pub fn with_graph(graph: impl Into<Arc<CsrGraph>>, config: SessionConfig) -> Self {
        let mut session = HostSession::new(config);
        session.set_graph(GraphHandle::from_csr("inline", graph));
        session
    }

    /// Attaches a new session to an existing (shared, multi-tenant) runtime:
    /// the session gets its own statistics and fairness lane but shares the
    /// runtime's graph, prepared-query cache and CU pool with its siblings.
    pub fn attach(runtime: Arc<HostRuntime>) -> Self {
        let rc = runtime.config();
        let config = SessionConfig {
            device: rc.device.clone(),
            variant: rc.variant,
            use_planner: rc.use_planner,
            collect_paths: true,
            prepared_cache_capacity: rc.shared_cache_capacity,
        };
        let session = runtime.register_session();
        HostSession { config, runtime: Some(runtime), session, stats: SessionStats::default() }
    }

    /// Installs (or replaces) the session's graph by launching a fresh
    /// private runtime around it (one CU, exact-LRU cache sized by
    /// [`SessionConfig::prepared_cache_capacity`]). Prepared queries cached
    /// for the old graph die with its runtime.
    pub fn set_graph(&mut self, handle: GraphHandle) {
        let runtime = HostRuntime::launch(handle, RuntimeConfig::for_session(&self.config));
        self.session = runtime.register_session();
        self.runtime = Some(runtime);
    }

    /// The runtime this session submits to, if a graph is loaded.
    pub fn runtime(&self) -> Option<&Arc<HostRuntime>> {
        self.runtime.as_ref()
    }

    /// Applies a batch of edge updates through the attached runtime and
    /// returns the new graph epoch (see [`HostRuntime::apply_updates`]).
    pub fn apply_updates(
        &self,
        delta: &pefp_graph::GraphDelta,
    ) -> Result<pefp_graph::Epoch, HostError> {
        match &self.runtime {
            Some(runtime) => Ok(runtime.apply_updates(delta)),
            None => Err(HostError::NoGraphLoaded),
        }
    }

    /// Number of prepared queries currently cached in the runtime's shared
    /// cache (for an attached session this counts every tenant's entries).
    pub fn cached_prepared_queries(&self) -> usize {
        self.runtime.as_deref().map_or(0, HostRuntime::cached_prepared_queries)
    }

    /// The loaded graph, if any.
    pub fn graph(&self) -> Option<&GraphHandle> {
        self.runtime.as_deref().map(HostRuntime::graph)
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Parses, validates and runs a text query (`QUERY s t k`).
    pub fn run_text_query(&mut self, text: &str) -> Result<QueryOutcome, HostError> {
        let request = match QueryRequest::parse(text) {
            Ok(r) => r,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(e);
            }
        };
        self.run_query(request)
    }

    /// Runs an already-parsed query as one job, materialising results
    /// according to [`SessionConfig::collect_paths`]. Blocks until the
    /// runtime's workers complete the job.
    pub fn run_query(&mut self, request: QueryRequest) -> Result<QueryOutcome, HostError> {
        let collect = self.config.collect_paths;
        self.submit_and_wait(request, collect)
    }

    /// Runs an already-parsed query in counting mode regardless of
    /// [`SessionConfig::collect_paths`]: the result set is counted on the
    /// worker — no path is materialised, streamed or shipped between
    /// threads. The cheapest way to answer "how many".
    pub fn run_query_counting(&mut self, request: QueryRequest) -> Result<QueryOutcome, HostError> {
        self.submit_and_wait(request, false)
    }

    fn submit_and_wait(
        &mut self,
        request: QueryRequest,
        collect: bool,
    ) -> Result<QueryOutcome, HostError> {
        let Some(runtime) = &self.runtime else {
            self.stats.rejected += 1;
            return Err(HostError::NoGraphLoaded);
        };
        let ticket = match runtime.submit_query(self.session, request, collect) {
            Ok(ticket) => ticket,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(e);
            }
        };
        match ticket.wait() {
            Ok(outcome) => Ok(self.record_outcome(outcome, false)),
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Submits a whole batch through the runtime's admission queue (one
    /// fairness unit: duplicates collapse, the heavy queries start first, and
    /// an over-full queue rejects atomically with [`HostError::QueueFull`]).
    /// Results are counted, never materialised.
    ///
    /// A batch larger than the admission queue's capacity is split into
    /// capacity-sized waves submitted and awaited back to back — otherwise a
    /// big batch could never be admitted at all, turning backpressure into a
    /// permanent failure. Deduplication then applies per wave, not across the
    /// whole batch; cross-wave repeats still hit the shared prepared cache.
    pub fn run_batch(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<crate::runtime::RuntimeBatchOutcome, HostError> {
        let Some(runtime) = &self.runtime else {
            self.stats.rejected += 1;
            return Err(HostError::NoGraphLoaded);
        };
        let runtime = Arc::clone(runtime);
        if requests.is_empty() {
            return Ok(crate::runtime::RuntimeBatchOutcome {
                results: Vec::new(),
                deduplicated: 0,
                cache_hits: 0,
                preprocess_millis: 0.0,
                transfer_millis: 0.0,
                device_millis: 0.0,
            });
        }
        let wave = runtime.config().queue_capacity.max(1);
        let mut merged: Option<crate::runtime::RuntimeBatchOutcome> = None;
        for chunk in requests.chunks(wave) {
            let ticket = match runtime.submit_batch(self.session, chunk) {
                Ok(ticket) => ticket,
                Err(e) => {
                    self.stats.rejected += 1;
                    return Err(e);
                }
            };
            match ticket.wait() {
                Ok(outcome) => {
                    self.stats.queries += outcome.results.len() as u64;
                    self.stats.cache_hits += outcome.cache_hits;
                    self.stats.total_paths += outcome.total_paths();
                    self.stats.preprocess_millis += outcome.preprocess_millis;
                    self.stats.transfer_millis += outcome.transfer_millis;
                    self.stats.device_millis += outcome.device_millis;
                    merged = Some(match merged.take() {
                        None => outcome,
                        Some(mut acc) => {
                            acc.results.extend(outcome.results);
                            acc.deduplicated += outcome.deduplicated;
                            acc.cache_hits += outcome.cache_hits;
                            acc.preprocess_millis += outcome.preprocess_millis;
                            acc.transfer_millis += outcome.transfer_millis;
                            acc.device_millis += outcome.device_millis;
                            acc
                        }
                    });
                }
                Err(e) => {
                    self.stats.rejected += 1;
                    return Err(e);
                }
            }
        }
        Ok(merged.expect("non-empty request list produced at least one wave"))
    }

    /// Runs an already-parsed query, streaming every result path (original
    /// graph vertex ids) into `sink` instead of materialising the result set.
    /// The paths flow from the job's worker through a bounded channel into
    /// the caller's sink on this thread, so the sink needs no `Send` bound; a
    /// sink break cancels the job, which stops the device-side enumeration at
    /// its next batch boundary.
    ///
    /// The returned outcome's `paths` is always empty and `num_paths` counts
    /// the paths handed to the sink — fewer than the full result set when the
    /// sink terminated the enumeration early (e.g. a
    /// [`pefp_graph::FirstN`] cap).
    pub fn run_query_streaming<S: PathSink + ?Sized>(
        &mut self,
        request: QueryRequest,
        sink: &mut S,
    ) -> Result<QueryOutcome, HostError> {
        let Some(runtime) = &self.runtime else {
            self.stats.rejected += 1;
            return Err(HostError::NoGraphLoaded);
        };
        let (ticket, paths) =
            match runtime.submit_query_streaming(self.session, request, STREAM_CHANNEL_PATHS) {
                Ok(pair) => pair,
                Err(e) => {
                    self.stats.rejected += 1;
                    return Err(e);
                }
            };
        let mut delivered = 0u64;
        for path in paths.iter() {
            delivered += 1;
            if sink.emit(&path).is_break() {
                // The breaking path counts as delivered (FirstN semantics);
                // cancel the job and stop draining — dropping the receiver
                // below unblocks the worker if it is mid-emission.
                ticket.cancel();
                break;
            }
        }
        drop(paths);
        match ticket.wait() {
            Ok(outcome) => {
                let outcome = QueryOutcome { num_paths: delivered, paths: Vec::new(), ..outcome };
                Ok(self.record_outcome(outcome, true))
            }
            Err(e) => {
                self.stats.rejected += 1;
                Err(e)
            }
        }
    }

    /// Folds one served query into the session statistics.
    fn record_outcome(&mut self, outcome: QueryOutcome, streamed: bool) -> QueryOutcome {
        if outcome.cache_hit {
            self.stats.cache_hits += 1;
        }
        self.stats.queries += 1;
        self.stats.total_paths += outcome.num_paths;
        if streamed {
            self.stats.emitted_paths += outcome.num_paths;
        } else {
            self.stats.materialised_paths += outcome.paths.len() as u64;
        }
        self.stats.preprocess_millis += outcome.preprocess_millis;
        self.stats.transfer_millis += outcome.transfer.total_millis;
        self.stats.device_millis += outcome.device_millis;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::paths::canonicalize;
    use pefp_graph::VertexId;

    fn diamond_session() -> HostSession {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        HostSession::with_graph(g, SessionConfig::default())
    }

    #[test]
    fn serves_a_simple_query_end_to_end() {
        let mut session = diamond_session();
        let outcome = session.run_text_query("QUERY 0 3 3").unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert_eq!(outcome.paths.len(), 2);
        assert!(outcome.total_millis() > 0.0);
        assert!(outcome.transfer.bytes > 0);
        let stats = session.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.total_paths, 2);
        assert!(stats.avg_total_millis() > 0.0);
    }

    #[test]
    fn rejects_queries_without_a_graph() {
        let mut session = HostSession::new(SessionConfig::default());
        let err = session.run_query(QueryRequest::new(0, 1, 3)).unwrap_err();
        assert!(matches!(err, HostError::NoGraphLoaded));
        assert_eq!(session.stats().rejected, 1);
    }

    #[test]
    fn rejects_invalid_queries_and_counts_them() {
        let mut session = diamond_session();
        assert!(session.run_text_query("garbage").is_err());
        assert!(session.run_query(QueryRequest::new(0, 99, 3)).is_err());
        assert!(session.run_query(QueryRequest::new(0, 0, 3)).is_err());
        assert_eq!(session.stats().rejected, 3);
        assert_eq!(session.stats().queries, 0);
    }

    #[test]
    fn results_agree_with_the_naive_oracle() {
        let g = chung_lu(200, 5.0, 2.2, 41).to_csr();
        let mut session = HostSession::with_graph(g.clone(), SessionConfig::default());
        for (s, t, k) in [(0u32, 100u32, 4u32), (3, 50, 3), (7, 150, 5)] {
            let outcome = session.run_query(QueryRequest::new(s, t, k)).unwrap();
            let oracle = naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k);
            assert_eq!(outcome.num_paths, oracle.len() as u64, "query {s}->{t} k={k}");
            assert_eq!(canonicalize(outcome.paths.clone()), canonicalize(oracle));
        }
    }

    #[test]
    fn planner_mode_returns_the_same_results() {
        let g = chung_lu(200, 5.0, 2.2, 43).to_csr();
        let mut default_session = HostSession::with_graph(g.clone(), SessionConfig::default());
        let mut planner_session = HostSession::with_graph(
            g,
            SessionConfig { use_planner: true, ..SessionConfig::default() },
        );
        let q = QueryRequest::new(0, 120, 4);
        let a = default_session.run_query(q).unwrap();
        let b = planner_session.run_query(q).unwrap();
        assert_eq!(a.num_paths, b.num_paths);
    }

    #[test]
    fn counting_mode_omits_path_materialisation() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut session = HostSession::with_graph(
            g,
            SessionConfig { collect_paths: false, ..SessionConfig::default() },
        );
        let outcome = session.run_query(QueryRequest::new(0, 3, 3)).unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert!(outcome.paths.is_empty());
    }

    #[test]
    fn streaming_query_emits_without_materialising() {
        use pefp_graph::{CollectSink, CountingSink, FirstN};
        let g = chung_lu(200, 5.0, 2.2, 41).to_csr();
        let mut session = HostSession::with_graph(g, SessionConfig::default());
        let q = QueryRequest::new(0, 100, 4);
        let collected = session.run_query(q).unwrap();
        assert!(collected.num_paths > 0, "want a non-trivial query");

        let mut sink = CollectSink::new();
        let streamed = session.run_query_streaming(q, &mut sink).unwrap();
        assert_eq!(streamed.num_paths, collected.num_paths);
        assert!(streamed.paths.is_empty(), "streaming outcomes never materialise");
        assert_eq!(sink.into_paths(), collected.paths);

        // A FirstN cap terminates the engine early; the session records only
        // the emitted paths.
        let mut capped = FirstN::new(1, CountingSink::new());
        let early = session.run_query_streaming(q, &mut capped).unwrap();
        assert_eq!(early.num_paths, 1);
        assert_eq!(capped.emitted(), 1);

        let stats = session.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.materialised_paths, collected.num_paths);
        assert_eq!(stats.emitted_paths, collected.num_paths + 1);
        assert_eq!(stats.total_paths, 2 * collected.num_paths + 1);
        assert_eq!(stats.cache_hits, 2, "streaming shares the prepared-query cache");
    }

    #[test]
    fn session_accumulates_statistics_across_queries() {
        let mut session = diamond_session();
        for _ in 0..5 {
            session.run_query(QueryRequest::new(0, 3, 3)).unwrap();
        }
        let stats = session.stats();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.total_paths, 10);
        assert!(stats.preprocess_millis >= 0.0);
        assert!(stats.device_millis > 0.0);
    }

    #[test]
    fn repeated_queries_hit_the_prepared_cache() {
        let g = chung_lu(200, 5.0, 2.2, 41).to_csr();
        let mut session = HostSession::with_graph(g.clone(), SessionConfig::default());
        let q = QueryRequest::new(0, 100, 4);
        let first = session.run_query(q).unwrap();
        for _ in 0..4 {
            let again = session.run_query(q).unwrap();
            assert_eq!(again.num_paths, first.num_paths);
            assert_eq!(canonicalize(again.paths), canonicalize(first.paths.clone()));
        }
        assert_eq!(session.stats().cache_hits, 4);
        assert_eq!(session.cached_prepared_queries(), 1);
        // A different query misses the cache.
        session.run_query(QueryRequest::new(0, 50, 4)).unwrap();
        assert_eq!(session.stats().cache_hits, 4);
        assert_eq!(session.cached_prepared_queries(), 2);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let mut session = HostSession::with_graph(
            CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]),
            SessionConfig { prepared_cache_capacity: 0, ..SessionConfig::default() },
        );
        let q = QueryRequest::new(0, 3, 3);
        session.run_query(q).unwrap();
        session.run_query(q).unwrap();
        assert_eq!(session.stats().cache_hits, 0);
        assert_eq!(session.cached_prepared_queries(), 0);
    }

    #[test]
    fn cache_evicts_least_recently_used_and_clears_on_new_graph() {
        let g = chung_lu(120, 5.0, 2.2, 17).to_csr();
        let mut session = HostSession::with_graph(
            g,
            SessionConfig { prepared_cache_capacity: 2, ..SessionConfig::default() },
        );
        let (a, b, c) =
            (QueryRequest::new(0, 60, 4), QueryRequest::new(1, 61, 4), QueryRequest::new(2, 62, 4));
        session.run_query(a).unwrap();
        session.run_query(b).unwrap();
        session.run_query(a).unwrap(); // refresh a; b is now LRU
        session.run_query(c).unwrap(); // evicts b
        assert_eq!(session.cached_prepared_queries(), 2);
        session.run_query(a).unwrap();
        assert_eq!(session.stats().cache_hits, 2, "a twice; b must have been evicted");
        // Replacing the graph must invalidate everything.
        session.set_graph(GraphHandle::from_csr(
            "fresh",
            CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]),
        ));
        assert_eq!(session.cached_prepared_queries(), 0);
        let outcome = session.run_query(QueryRequest::new(0, 3, 3)).unwrap();
        assert_eq!(outcome.num_paths, 1);
    }

    #[test]
    fn batches_larger_than_the_queue_are_served_in_waves() {
        let g = chung_lu(120, 5.0, 2.2, 17).to_csr();
        let runtime = HostRuntime::launch(
            GraphHandle::from_csr("waves", g),
            RuntimeConfig { queue_capacity: 2, ..RuntimeConfig::default() },
        );
        let mut session = HostSession::attach(runtime);
        // 7 unique queries against a 2-slot queue: 4 waves, no QueueFull.
        let requests: Vec<QueryRequest> = (0..7).map(|i| QueryRequest::new(i, 60 + i, 4)).collect();
        let outcome = session.run_batch(&requests).unwrap();
        assert_eq!(outcome.results.len(), 7);
        for (req, row) in requests.iter().zip(&outcome.results) {
            assert_eq!(row.request, *req);
            let oracle = session.run_query_counting(*req).unwrap();
            assert_eq!(row.num_paths, oracle.num_paths, "{req:?}");
        }
        // An empty batch is a cheap no-op, like the dispatch scheduler's.
        let empty = session.run_batch(&[]).unwrap();
        assert!(empty.results.is_empty());
        assert_eq!(empty.total_paths(), 0);
    }

    #[test]
    fn oversized_payload_is_rejected_by_capacity_check() {
        let g = chung_lu(500, 6.0, 2.2, 3).to_csr();
        let mut config = SessionConfig::default();
        config.device.dram_bytes = 64; // absurdly small DRAM
        let mut session = HostSession::with_graph(g, config);
        let err = session.run_query(QueryRequest::new(0, 250, 5)).unwrap_err();
        assert!(matches!(err, HostError::DeviceCapacity(_)));
        // Permanently rejectable queries must not occupy cache slots (and a
        // repeat of one is a re-rejection, not a cache hit).
        assert_eq!(session.cached_prepared_queries(), 0);
        assert!(session.run_query(QueryRequest::new(0, 250, 5)).is_err());
        assert_eq!(session.stats().cache_hits, 0);
        assert_eq!(session.stats().rejected, 2);
    }
}
