//! Long-lived host sessions.
//!
//! A session owns one loaded graph and serves many queries against it — the
//! shape of the paper's fraud-detection deployment, where the graph stays
//! resident and `s-t k`-path queries arrive continuously. Each query walks
//! the full workflow of Fig. 2: parse → Pre-BFS → serialise → DMA transfer →
//! device enumeration → result collection, and the session keeps a per-query
//! record plus aggregate statistics.

use crate::binfmt::{encode_payload, payload_bytes};
use crate::dma::{DmaEngine, DmaTransferReport};
use crate::error::HostError;
use crate::loader::GraphHandle;
use crate::query::QueryRequest;
use pefp_core::{plan_query, prepare, run_prepared, PefpVariant};
use pefp_fpga::{DeviceConfig, Pcie};
use pefp_graph::{CsrGraph, Path};
use serde::{Deserialize, Serialize};

/// Session-wide configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Device profile queries run against.
    pub device: DeviceConfig,
    /// Which PEFP variant to run (the full system by default; the ablation
    /// variants are exposed for experimentation).
    pub variant: PefpVariant,
    /// Use the host-side planner to size the engine per query instead of the
    /// variant's fixed defaults.
    pub use_planner: bool,
    /// Materialise result paths (`true`) or only count them.
    pub collect_paths: bool,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            device: DeviceConfig::alveo_u200(),
            variant: PefpVariant::Full,
            use_planner: false,
            collect_paths: true,
        }
    }
}

/// The outcome of one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The request that was served.
    pub request: QueryRequest,
    /// Number of result paths.
    pub num_paths: u64,
    /// The result paths in the original graph's vertex ids (empty when the
    /// session runs in counting mode).
    pub paths: Vec<Path>,
    /// Host-side preprocessing time (Pre-BFS) in milliseconds — the paper's `T1`.
    pub preprocess_millis: f64,
    /// PCIe/DMA transfer report for the prepared payload.
    pub transfer: DmaTransferReport,
    /// Simulated device time in milliseconds — the paper's `T2`.
    pub device_millis: f64,
}

impl QueryOutcome {
    /// Total time `T = T1 + transfer + T2` in milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.preprocess_millis + self.transfer.total_millis + self.device_millis
    }
}

/// Aggregate statistics over all queries served by a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Queries served successfully.
    pub queries: u64,
    /// Queries rejected by parsing/validation.
    pub rejected: u64,
    /// Total result paths across all queries.
    pub total_paths: u64,
    /// Sum of preprocessing times (ms).
    pub preprocess_millis: f64,
    /// Sum of transfer times (ms).
    pub transfer_millis: f64,
    /// Sum of device times (ms).
    pub device_millis: f64,
}

impl SessionStats {
    /// Average total time per served query in milliseconds.
    pub fn avg_total_millis(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.preprocess_millis + self.transfer_millis + self.device_millis)
                / self.queries as f64
        }
    }
}

/// A host session: one graph, many queries.
#[derive(Debug)]
pub struct HostSession {
    config: SessionConfig,
    graph: Option<GraphHandle>,
    dma: DmaEngine,
    stats: SessionStats,
}

impl HostSession {
    /// Creates an empty session (no graph loaded yet).
    pub fn new(config: SessionConfig) -> Self {
        let pcie = Pcie::new(config.device.pcie_gbps, config.device.pcie_setup_us);
        HostSession {
            config,
            graph: None,
            dma: DmaEngine::with_defaults(pcie),
            stats: SessionStats::default(),
        }
    }

    /// Creates a session already holding `graph`.
    pub fn with_graph(graph: CsrGraph, config: SessionConfig) -> Self {
        let mut session = HostSession::new(config);
        session.set_graph(GraphHandle::from_csr("inline", graph));
        session
    }

    /// Installs (or replaces) the session's graph.
    pub fn set_graph(&mut self, handle: GraphHandle) {
        self.graph = Some(handle);
    }

    /// The loaded graph, if any.
    pub fn graph(&self) -> Option<&GraphHandle> {
        self.graph.as_ref()
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Parses, validates and runs a text query (`QUERY s t k`).
    pub fn run_text_query(&mut self, text: &str) -> Result<QueryOutcome, HostError> {
        let request = match QueryRequest::parse(text) {
            Ok(r) => r,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(e);
            }
        };
        self.run_query(request)
    }

    /// Runs an already-parsed query.
    pub fn run_query(&mut self, request: QueryRequest) -> Result<QueryOutcome, HostError> {
        let Some(handle) = self.graph.as_ref() else {
            self.stats.rejected += 1;
            return Err(HostError::NoGraphLoaded);
        };
        if let Err(e) = request.validate(&handle.csr) {
            self.stats.rejected += 1;
            return Err(e);
        }

        // Host-side preprocessing (Pre-BFS or the variant's fallback).
        let prepared = prepare(&handle.csr, request.s, request.t, request.k, self.config.variant);

        // Serialise and "transfer" the prepared payload. The encode step also
        // exercises the binary format so corruption bugs surface in tests.
        let bytes = payload_bytes(&prepared);
        debug_assert_eq!(bytes, encode_payload(&prepared).len());
        if bytes > self.config.device.dram_bytes {
            self.stats.rejected += 1;
            return Err(HostError::DeviceCapacity(format!(
                "prepared payload is {bytes} bytes but device DRAM holds {}",
                self.config.device.dram_bytes
            )));
        }
        let transfer = self.dma.transfer(bytes);

        // Engine options: planner or the variant's fixed configuration.
        let mut options = if self.config.use_planner {
            plan_query(&prepared, &self.config.device).options
        } else {
            self.config.variant.engine_options()
        };
        options.collect_paths = self.config.collect_paths;

        let result = run_prepared(&prepared, options, &self.config.device);

        let outcome = QueryOutcome {
            request,
            num_paths: result.num_paths,
            paths: result.paths,
            preprocess_millis: result.preprocess_millis,
            transfer,
            device_millis: result.query_millis,
        };
        self.stats.queries += 1;
        self.stats.total_paths += outcome.num_paths;
        self.stats.preprocess_millis += outcome.preprocess_millis;
        self.stats.transfer_millis += outcome.transfer.total_millis;
        self.stats.device_millis += outcome.device_millis;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::paths::canonicalize;
    use pefp_graph::VertexId;

    fn diamond_session() -> HostSession {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        HostSession::with_graph(g, SessionConfig::default())
    }

    #[test]
    fn serves_a_simple_query_end_to_end() {
        let mut session = diamond_session();
        let outcome = session.run_text_query("QUERY 0 3 3").unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert_eq!(outcome.paths.len(), 2);
        assert!(outcome.total_millis() > 0.0);
        assert!(outcome.transfer.bytes > 0);
        let stats = session.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.total_paths, 2);
        assert!(stats.avg_total_millis() > 0.0);
    }

    #[test]
    fn rejects_queries_without_a_graph() {
        let mut session = HostSession::new(SessionConfig::default());
        let err = session.run_query(QueryRequest::new(0, 1, 3)).unwrap_err();
        assert!(matches!(err, HostError::NoGraphLoaded));
        assert_eq!(session.stats().rejected, 1);
    }

    #[test]
    fn rejects_invalid_queries_and_counts_them() {
        let mut session = diamond_session();
        assert!(session.run_text_query("garbage").is_err());
        assert!(session.run_query(QueryRequest::new(0, 99, 3)).is_err());
        assert!(session.run_query(QueryRequest::new(0, 0, 3)).is_err());
        assert_eq!(session.stats().rejected, 3);
        assert_eq!(session.stats().queries, 0);
    }

    #[test]
    fn results_agree_with_the_naive_oracle() {
        let g = chung_lu(200, 5.0, 2.2, 41).to_csr();
        let mut session = HostSession::with_graph(g.clone(), SessionConfig::default());
        for (s, t, k) in [(0u32, 100u32, 4u32), (3, 50, 3), (7, 150, 5)] {
            let outcome = session.run_query(QueryRequest::new(s, t, k)).unwrap();
            let oracle = naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k);
            assert_eq!(outcome.num_paths, oracle.len() as u64, "query {s}->{t} k={k}");
            assert_eq!(canonicalize(outcome.paths.clone()), canonicalize(oracle));
        }
    }

    #[test]
    fn planner_mode_returns_the_same_results() {
        let g = chung_lu(200, 5.0, 2.2, 43).to_csr();
        let mut default_session = HostSession::with_graph(g.clone(), SessionConfig::default());
        let mut planner_session = HostSession::with_graph(
            g,
            SessionConfig { use_planner: true, ..SessionConfig::default() },
        );
        let q = QueryRequest::new(0, 120, 4);
        let a = default_session.run_query(q).unwrap();
        let b = planner_session.run_query(q).unwrap();
        assert_eq!(a.num_paths, b.num_paths);
    }

    #[test]
    fn counting_mode_omits_path_materialisation() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut session = HostSession::with_graph(
            g,
            SessionConfig { collect_paths: false, ..SessionConfig::default() },
        );
        let outcome = session.run_query(QueryRequest::new(0, 3, 3)).unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert!(outcome.paths.is_empty());
    }

    #[test]
    fn session_accumulates_statistics_across_queries() {
        let mut session = diamond_session();
        for _ in 0..5 {
            session.run_query(QueryRequest::new(0, 3, 3)).unwrap();
        }
        let stats = session.stats();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.total_paths, 10);
        assert!(stats.preprocess_millis >= 0.0);
        assert!(stats.device_millis > 0.0);
    }

    #[test]
    fn oversized_payload_is_rejected_by_capacity_check() {
        let g = chung_lu(500, 6.0, 2.2, 3).to_csr();
        let mut config = SessionConfig::default();
        config.device.dram_bytes = 64; // absurdly small DRAM
        let mut session = HostSession::with_graph(g, config);
        let err = session.run_query(QueryRequest::new(0, 250, 5)).unwrap_err();
        assert!(matches!(err, HostError::DeviceCapacity(_)));
    }
}
