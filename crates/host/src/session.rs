//! Long-lived host sessions.
//!
//! A session owns one loaded graph and serves many queries against it — the
//! shape of the paper's fraud-detection deployment, where the graph stays
//! resident and `s-t k`-path queries arrive continuously. Each query walks
//! the full workflow of Fig. 2: parse → Pre-BFS → serialise → DMA transfer →
//! device enumeration → result collection, and the session keeps a per-query
//! record plus aggregate statistics.

use crate::binfmt::{encode_payload, payload_bytes};
use crate::dma::{DmaEngine, DmaTransferReport};
use crate::error::HostError;
use crate::loader::GraphHandle;
use crate::query::QueryRequest;
use pefp_core::{
    plan_query, prepare_with, run_prepared, run_prepared_with_sink, EngineOptions, PefpVariant,
    PrepareContext,
};
use pefp_fpga::{DeviceConfig, Pcie};
use pefp_graph::sink::PathSink;
use pefp_graph::{CsrGraph, Path};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Session-wide configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Device profile queries run against.
    pub device: DeviceConfig,
    /// Which PEFP variant to run (the full system by default; the ablation
    /// variants are exposed for experimentation).
    pub variant: PefpVariant,
    /// Use the host-side planner to size the engine per query instead of the
    /// variant's fixed defaults.
    pub use_planner: bool,
    /// Materialise result paths (`true`) or only count them.
    pub collect_paths: bool,
    /// Capacity of the `(s, t, k)`-keyed [`pefp_core::PreparedQuery`] LRU:
    /// repeated queries skip preprocessing entirely. `0` disables caching.
    pub prepared_cache_capacity: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            device: DeviceConfig::alveo_u200(),
            variant: PefpVariant::Full,
            use_planner: false,
            collect_paths: true,
            prepared_cache_capacity: 128,
        }
    }
}

/// A small `(s, t, k)`-keyed LRU of prepared queries. Entries are `Arc`s:
/// the induced subgraph inside a cached entry is O(touched), so even a full
/// cache stays proportional to the served working set, not to `|V|`.
#[derive(Debug, Default)]
struct PreparedCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<QueryRequest, (u64, Arc<pefp_core::PreparedQuery>)>,
}

impl PreparedCache {
    fn new(capacity: usize) -> Self {
        PreparedCache { capacity, tick: 0, entries: HashMap::new() }
    }

    fn get(&mut self, key: &QueryRequest) -> Option<Arc<pefp_core::PreparedQuery>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(stamp, prep)| {
            *stamp = tick;
            Arc::clone(prep)
        })
    }

    fn insert(&mut self, key: QueryRequest, prep: Arc<pefp_core::PreparedQuery>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, prep));
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The outcome of one query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The request that was served.
    pub request: QueryRequest,
    /// Number of result paths.
    pub num_paths: u64,
    /// The result paths in the original graph's vertex ids (empty when the
    /// session runs in counting mode and for streaming queries, whose paths
    /// flow through the caller's sink instead).
    pub paths: Vec<Path>,
    /// Host-side preprocessing time (Pre-BFS) in milliseconds — the paper's `T1`.
    pub preprocess_millis: f64,
    /// PCIe/DMA transfer report for the prepared payload.
    pub transfer: DmaTransferReport,
    /// Simulated device time in milliseconds — the paper's `T2`.
    pub device_millis: f64,
}

impl QueryOutcome {
    /// Total time `T = T1 + transfer + T2` in milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.preprocess_millis + self.transfer.total_millis + self.device_millis
    }
}

/// Aggregate statistics over all queries served by a session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Queries served successfully.
    pub queries: u64,
    /// Queries rejected by parsing/validation.
    pub rejected: u64,
    /// Queries whose preprocessing was served from the prepared-query cache.
    pub cache_hits: u64,
    /// Total result paths across all queries.
    pub total_paths: u64,
    /// Paths that were materialised into `QueryOutcome::paths` vectors
    /// (collect-mode queries). High-volume deployments want this near zero.
    pub materialised_paths: u64,
    /// Paths streamed through caller-supplied [`PathSink`]s without the
    /// session ever materialising them.
    pub emitted_paths: u64,
    /// Sum of preprocessing times (ms).
    pub preprocess_millis: f64,
    /// Sum of transfer times (ms).
    pub transfer_millis: f64,
    /// Sum of device times (ms).
    pub device_millis: f64,
}

impl SessionStats {
    /// Average total time per served query in milliseconds.
    pub fn avg_total_millis(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            (self.preprocess_millis + self.transfer_millis + self.device_millis)
                / self.queries as f64
        }
    }
}

/// A host session: one graph, many queries.
///
/// The session owns one [`PrepareContext`] (epoch-stamped BFS scratch plus
/// the graph's shared reverse CSR), so per-query preprocessing work is
/// proportional to the touched subgraph, and an `(s, t, k)`-keyed LRU of
/// prepared queries so repeated requests skip preprocessing entirely.
#[derive(Debug)]
pub struct HostSession {
    config: SessionConfig,
    graph: Option<GraphHandle>,
    dma: DmaEngine,
    stats: SessionStats,
    ctx: PrepareContext,
    cache: PreparedCache,
}

impl HostSession {
    /// Creates an empty session (no graph loaded yet).
    pub fn new(config: SessionConfig) -> Self {
        let pcie = Pcie::new(config.device.pcie_gbps, config.device.pcie_setup_us);
        let cache = PreparedCache::new(config.prepared_cache_capacity);
        HostSession {
            config,
            graph: None,
            dma: DmaEngine::with_defaults(pcie),
            stats: SessionStats::default(),
            ctx: PrepareContext::new(),
            cache,
        }
    }

    /// Creates a session already holding `graph` (owned or shared).
    pub fn with_graph(graph: impl Into<Arc<CsrGraph>>, config: SessionConfig) -> Self {
        let mut session = HostSession::new(config);
        session.set_graph(GraphHandle::from_csr("inline", graph));
        session
    }

    /// Installs (or replaces) the session's graph; cached prepared queries
    /// belong to the old graph and are dropped, and the new graph's prebuilt
    /// reverse CSR is wired into the preprocessing context.
    pub fn set_graph(&mut self, handle: GraphHandle) {
        self.cache.clear();
        self.ctx.install_reverse(&handle.csr, Arc::clone(&handle.reverse));
        self.graph = Some(handle);
    }

    /// Number of prepared queries currently cached.
    pub fn cached_prepared_queries(&self) -> usize {
        self.cache.len()
    }

    /// The loaded graph, if any.
    pub fn graph(&self) -> Option<&GraphHandle> {
        self.graph.as_ref()
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Parses, validates and runs a text query (`QUERY s t k`).
    pub fn run_text_query(&mut self, text: &str) -> Result<QueryOutcome, HostError> {
        let request = match QueryRequest::parse(text) {
            Ok(r) => r,
            Err(e) => {
                self.stats.rejected += 1;
                return Err(e);
            }
        };
        self.run_query(request)
    }

    /// Runs an already-parsed query, materialising results according to
    /// [`SessionConfig::collect_paths`] (collect-everything wrapper over the
    /// streaming pipeline).
    pub fn run_query(&mut self, request: QueryRequest) -> Result<QueryOutcome, HostError> {
        let staged = self.stage_query(request)?;
        let mut options = staged.options.clone();
        options.collect_paths = self.config.collect_paths;
        let result = run_prepared(&staged.prepared, options, &self.config.device);
        self.stats.materialised_paths += result.paths.len() as u64;
        Ok(self.record_outcome(
            request,
            staged,
            result.num_paths,
            result.paths,
            result.query_millis,
        ))
    }

    /// Runs an already-parsed query, streaming every result path (original
    /// graph vertex ids) into `sink` instead of materialising the result set.
    ///
    /// The returned outcome's `paths` is always empty and `num_paths` counts
    /// the paths handed to the sink — fewer than the full result set when the
    /// sink terminated the enumeration early (e.g. a
    /// [`pefp_graph::FirstN`] cap).
    pub fn run_query_streaming<S: PathSink + ?Sized>(
        &mut self,
        request: QueryRequest,
        sink: &mut S,
    ) -> Result<QueryOutcome, HostError> {
        let staged = self.stage_query(request)?;
        let result = run_prepared_with_sink(
            &staged.prepared,
            staged.options.clone(),
            &self.config.device,
            sink,
        );
        self.stats.emitted_paths += result.num_paths;
        Ok(self.record_outcome(request, staged, result.num_paths, Vec::new(), result.query_millis))
    }

    /// The host-side work shared by the collect and streaming entry points:
    /// validation, cached-or-fresh preprocessing, payload capacity check, DMA
    /// transfer, and engine-option selection.
    fn stage_query(&mut self, request: QueryRequest) -> Result<StagedQuery, HostError> {
        let Some(handle) = self.graph.as_ref() else {
            self.stats.rejected += 1;
            return Err(HostError::NoGraphLoaded);
        };
        if let Err(e) = request.validate(&handle.csr) {
            self.stats.rejected += 1;
            return Err(e);
        }

        // Host-side preprocessing (Pre-BFS or the variant's fallback), served
        // from the LRU when the same (s, t, k) was prepared before.
        let preprocess_started = Instant::now();
        let (prepared, cache_hit) = match self.cache.get(&request) {
            Some(hit) => (hit, true),
            None => {
                let prep = Arc::new(prepare_with(
                    &mut self.ctx,
                    &handle.csr,
                    request.s,
                    request.t,
                    request.k,
                    self.config.variant,
                ));
                (prep, false)
            }
        };
        let preprocess_millis = if cache_hit {
            preprocess_started.elapsed().as_secs_f64() * 1e3
        } else {
            prepared.host_millis
        };

        // Serialise and "transfer" the prepared payload. The encode step also
        // exercises the binary format so corruption bugs surface in tests.
        let bytes = payload_bytes(&prepared);
        debug_assert_eq!(bytes, encode_payload(&prepared).len());
        if bytes > self.config.device.dram_bytes {
            self.stats.rejected += 1;
            return Err(HostError::DeviceCapacity(format!(
                "prepared payload is {bytes} bytes but device DRAM holds {}",
                self.config.device.dram_bytes
            )));
        }
        // Cache only payloads the device can actually accept, so oversized
        // (permanently rejectable) queries never occupy LRU slots.
        if !cache_hit {
            self.cache.insert(request, Arc::clone(&prepared));
        }
        let transfer = self.dma.transfer(bytes);

        // Engine options: planner or the variant's fixed configuration.
        let options = if self.config.use_planner {
            plan_query(&prepared, &self.config.device).options
        } else {
            self.config.variant.engine_options()
        };

        Ok(StagedQuery { prepared, preprocess_millis, transfer, options, cache_hit })
    }

    /// Folds one served query into the outcome record and session statistics.
    fn record_outcome(
        &mut self,
        request: QueryRequest,
        staged: StagedQuery,
        num_paths: u64,
        paths: Vec<Path>,
        device_millis: f64,
    ) -> QueryOutcome {
        let outcome = QueryOutcome {
            request,
            num_paths,
            paths,
            preprocess_millis: staged.preprocess_millis,
            transfer: staged.transfer,
            device_millis,
        };
        if staged.cache_hit {
            self.stats.cache_hits += 1;
        }
        self.stats.queries += 1;
        self.stats.total_paths += outcome.num_paths;
        self.stats.preprocess_millis += outcome.preprocess_millis;
        self.stats.transfer_millis += outcome.transfer.total_millis;
        self.stats.device_millis += outcome.device_millis;
        outcome
    }
}

/// A query that cleared the host-side pipeline and is ready for the device.
struct StagedQuery {
    prepared: Arc<pefp_core::PreparedQuery>,
    preprocess_millis: f64,
    transfer: DmaTransferReport,
    options: EngineOptions,
    cache_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_baselines::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::paths::canonicalize;
    use pefp_graph::VertexId;

    fn diamond_session() -> HostSession {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        HostSession::with_graph(g, SessionConfig::default())
    }

    #[test]
    fn serves_a_simple_query_end_to_end() {
        let mut session = diamond_session();
        let outcome = session.run_text_query("QUERY 0 3 3").unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert_eq!(outcome.paths.len(), 2);
        assert!(outcome.total_millis() > 0.0);
        assert!(outcome.transfer.bytes > 0);
        let stats = session.stats();
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.total_paths, 2);
        assert!(stats.avg_total_millis() > 0.0);
    }

    #[test]
    fn rejects_queries_without_a_graph() {
        let mut session = HostSession::new(SessionConfig::default());
        let err = session.run_query(QueryRequest::new(0, 1, 3)).unwrap_err();
        assert!(matches!(err, HostError::NoGraphLoaded));
        assert_eq!(session.stats().rejected, 1);
    }

    #[test]
    fn rejects_invalid_queries_and_counts_them() {
        let mut session = diamond_session();
        assert!(session.run_text_query("garbage").is_err());
        assert!(session.run_query(QueryRequest::new(0, 99, 3)).is_err());
        assert!(session.run_query(QueryRequest::new(0, 0, 3)).is_err());
        assert_eq!(session.stats().rejected, 3);
        assert_eq!(session.stats().queries, 0);
    }

    #[test]
    fn results_agree_with_the_naive_oracle() {
        let g = chung_lu(200, 5.0, 2.2, 41).to_csr();
        let mut session = HostSession::with_graph(g.clone(), SessionConfig::default());
        for (s, t, k) in [(0u32, 100u32, 4u32), (3, 50, 3), (7, 150, 5)] {
            let outcome = session.run_query(QueryRequest::new(s, t, k)).unwrap();
            let oracle = naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k);
            assert_eq!(outcome.num_paths, oracle.len() as u64, "query {s}->{t} k={k}");
            assert_eq!(canonicalize(outcome.paths.clone()), canonicalize(oracle));
        }
    }

    #[test]
    fn planner_mode_returns_the_same_results() {
        let g = chung_lu(200, 5.0, 2.2, 43).to_csr();
        let mut default_session = HostSession::with_graph(g.clone(), SessionConfig::default());
        let mut planner_session = HostSession::with_graph(
            g,
            SessionConfig { use_planner: true, ..SessionConfig::default() },
        );
        let q = QueryRequest::new(0, 120, 4);
        let a = default_session.run_query(q).unwrap();
        let b = planner_session.run_query(q).unwrap();
        assert_eq!(a.num_paths, b.num_paths);
    }

    #[test]
    fn counting_mode_omits_path_materialisation() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut session = HostSession::with_graph(
            g,
            SessionConfig { collect_paths: false, ..SessionConfig::default() },
        );
        let outcome = session.run_query(QueryRequest::new(0, 3, 3)).unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert!(outcome.paths.is_empty());
    }

    #[test]
    fn streaming_query_emits_without_materialising() {
        use pefp_graph::{CollectSink, CountingSink, FirstN};
        let g = chung_lu(200, 5.0, 2.2, 41).to_csr();
        let mut session = HostSession::with_graph(g, SessionConfig::default());
        let q = QueryRequest::new(0, 100, 4);
        let collected = session.run_query(q).unwrap();
        assert!(collected.num_paths > 0, "want a non-trivial query");

        let mut sink = CollectSink::new();
        let streamed = session.run_query_streaming(q, &mut sink).unwrap();
        assert_eq!(streamed.num_paths, collected.num_paths);
        assert!(streamed.paths.is_empty(), "streaming outcomes never materialise");
        assert_eq!(sink.into_paths(), collected.paths);

        // A FirstN cap terminates the engine early; the session records only
        // the emitted paths.
        let mut capped = FirstN::new(1, CountingSink::new());
        let early = session.run_query_streaming(q, &mut capped).unwrap();
        assert_eq!(early.num_paths, 1);
        assert_eq!(capped.emitted(), 1);

        let stats = session.stats();
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.materialised_paths, collected.num_paths);
        assert_eq!(stats.emitted_paths, collected.num_paths + 1);
        assert_eq!(stats.total_paths, 2 * collected.num_paths + 1);
        assert_eq!(stats.cache_hits, 2, "streaming shares the prepared-query cache");
    }

    #[test]
    fn session_accumulates_statistics_across_queries() {
        let mut session = diamond_session();
        for _ in 0..5 {
            session.run_query(QueryRequest::new(0, 3, 3)).unwrap();
        }
        let stats = session.stats();
        assert_eq!(stats.queries, 5);
        assert_eq!(stats.total_paths, 10);
        assert!(stats.preprocess_millis >= 0.0);
        assert!(stats.device_millis > 0.0);
    }

    #[test]
    fn repeated_queries_hit_the_prepared_cache() {
        let g = chung_lu(200, 5.0, 2.2, 41).to_csr();
        let mut session = HostSession::with_graph(g.clone(), SessionConfig::default());
        let q = QueryRequest::new(0, 100, 4);
        let first = session.run_query(q).unwrap();
        for _ in 0..4 {
            let again = session.run_query(q).unwrap();
            assert_eq!(again.num_paths, first.num_paths);
            assert_eq!(canonicalize(again.paths), canonicalize(first.paths.clone()));
        }
        assert_eq!(session.stats().cache_hits, 4);
        assert_eq!(session.cached_prepared_queries(), 1);
        // A different query misses the cache.
        session.run_query(QueryRequest::new(0, 50, 4)).unwrap();
        assert_eq!(session.stats().cache_hits, 4);
        assert_eq!(session.cached_prepared_queries(), 2);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let mut session = HostSession::with_graph(
            CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]),
            SessionConfig { prepared_cache_capacity: 0, ..SessionConfig::default() },
        );
        let q = QueryRequest::new(0, 3, 3);
        session.run_query(q).unwrap();
        session.run_query(q).unwrap();
        assert_eq!(session.stats().cache_hits, 0);
        assert_eq!(session.cached_prepared_queries(), 0);
    }

    #[test]
    fn cache_evicts_least_recently_used_and_clears_on_new_graph() {
        let g = chung_lu(120, 5.0, 2.2, 17).to_csr();
        let mut session = HostSession::with_graph(
            g,
            SessionConfig { prepared_cache_capacity: 2, ..SessionConfig::default() },
        );
        let (a, b, c) =
            (QueryRequest::new(0, 60, 4), QueryRequest::new(1, 61, 4), QueryRequest::new(2, 62, 4));
        session.run_query(a).unwrap();
        session.run_query(b).unwrap();
        session.run_query(a).unwrap(); // refresh a; b is now LRU
        session.run_query(c).unwrap(); // evicts b
        assert_eq!(session.cached_prepared_queries(), 2);
        session.run_query(a).unwrap();
        assert_eq!(session.stats().cache_hits, 2, "a twice; b must have been evicted");
        // Replacing the graph must invalidate everything.
        session.set_graph(GraphHandle::from_csr(
            "fresh",
            CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]),
        ));
        assert_eq!(session.cached_prepared_queries(), 0);
        let outcome = session.run_query(QueryRequest::new(0, 3, 3)).unwrap();
        assert_eq!(outcome.num_paths, 1);
    }

    #[test]
    fn oversized_payload_is_rejected_by_capacity_check() {
        let g = chung_lu(500, 6.0, 2.2, 3).to_csr();
        let mut config = SessionConfig::default();
        config.device.dram_bytes = 64; // absurdly small DRAM
        let mut session = HostSession::with_graph(g, config);
        let err = session.run_query(QueryRequest::new(0, 250, 5)).unwrap_err();
        assert!(matches!(err, HostError::DeviceCapacity(_)));
        // Permanently rejectable queries must not occupy cache slots (and a
        // repeat of one is a re-rejection, not a cache hit).
        assert_eq!(session.cached_prepared_queries(), 0);
        assert!(session.run_query(QueryRequest::new(0, 250, 5)).is_err());
        assert_eq!(session.stats().cache_hits, 0);
        assert_eq!(session.stats().rejected, 2);
    }
}
