//! Error type shared by the host runtime.

use pefp_fpga::FaultEvent;
use std::fmt;

/// Errors produced by the host-side runtime.
#[derive(Debug)]
pub enum HostError {
    /// Loading or parsing a graph file failed.
    GraphLoad(String),
    /// A query string could not be parsed.
    QueryParse(String),
    /// A query referenced vertices outside the loaded graph or an unsupported
    /// hop constraint.
    QueryInvalid(String),
    /// A serialised device payload was malformed (bad magic, version,
    /// truncation or checksum mismatch).
    PayloadCorrupt(String),
    /// The prepared payload does not fit into the device DRAM.
    DeviceCapacity(String),
    /// No graph has been loaded into the session yet.
    NoGraphLoaded,
    /// The runtime's admission queue is full; the submission was rejected
    /// instead of blocking (backpressure — retry later or shed load).
    QueueFull,
    /// The job was cancelled (its ticket was dropped or explicitly cancelled,
    /// or the runtime shut down) before it produced a result.
    Cancelled,
    /// A device fault killed the job after every retry was exhausted (or the
    /// job could not be retried). Carries the last detected [`FaultEvent`]
    /// (which CU, what kind, at which cycle), the graph epoch the job ran
    /// against, and how many retries were attempted; the event is also
    /// exposed through [`std::error::Error::source`].
    DeviceFault {
        /// The last fault the detectors latched for this job.
        event: FaultEvent,
        /// Graph epoch the job was admitted under.
        epoch: u64,
        /// Device retries attempted before giving up.
        retries: u32,
    },
    /// A *streaming* job faulted after paths had already been delivered to
    /// the client. Replaying would re-emit those paths (duplicates) and
    /// suppressing the replay would drop the rest, so the runtime surfaces
    /// the fault instead and lets the caller restart the stream.
    FaultAfterEmit {
        /// The fault that aborted the stream.
        event: FaultEvent,
        /// Paths already delivered before the fault.
        emitted: u64,
    },
    /// The job exceeded its deadline and was killed by the runtime watchdog.
    DeadlineExceeded {
        /// The deadline that was missed, in milliseconds.
        millis: u64,
    },
    /// Every compute unit is quarantined (and CPU fallback is disabled), so
    /// the job could not be placed anywhere.
    NoHealthyCu {
        /// Number of quarantined CUs at rejection time.
        quarantined: usize,
    },
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::GraphLoad(msg) => write!(f, "graph load failed: {msg}"),
            HostError::QueryParse(msg) => write!(f, "cannot parse query: {msg}"),
            HostError::QueryInvalid(msg) => write!(f, "invalid query: {msg}"),
            HostError::PayloadCorrupt(msg) => write!(f, "corrupt device payload: {msg}"),
            HostError::DeviceCapacity(msg) => write!(f, "device capacity exceeded: {msg}"),
            HostError::NoGraphLoaded => write!(f, "no graph loaded in this session"),
            HostError::QueueFull => write!(f, "admission queue full: submission rejected"),
            HostError::Cancelled => write!(f, "job cancelled before completion"),
            HostError::DeviceFault { event, epoch, retries } => {
                write!(f, "device fault after {retries} retries (epoch {epoch}): {event}")
            }
            HostError::FaultAfterEmit { event, emitted } => write!(
                f,
                "stream aborted by device fault after {emitted} paths were delivered: {event}"
            ),
            HostError::DeadlineExceeded { millis } => {
                write!(f, "job exceeded its {millis} ms deadline and was killed")
            }
            HostError::NoHealthyCu { quarantined } => {
                write!(f, "no healthy compute unit ({quarantined} quarantined) and CPU fallback is disabled")
            }
        }
    }
}

impl std::error::Error for HostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HostError::DeviceFault { event, .. } | HostError::FaultAfterEmit { event, .. } => {
                Some(event)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_fpga::FaultKind;

    fn event() -> FaultEvent {
        FaultEvent { cu: 2, kind: FaultKind::DramCorruption, at_cycle: 77 }
    }

    #[test]
    fn display_messages_identify_the_error_class() {
        let cases: Vec<(HostError, &str)> = vec![
            (HostError::GraphLoad("x".into()), "graph load failed"),
            (HostError::QueryParse("x".into()), "cannot parse query"),
            (HostError::QueryInvalid("x".into()), "invalid query"),
            (HostError::PayloadCorrupt("x".into()), "corrupt device payload"),
            (HostError::DeviceCapacity("x".into()), "device capacity exceeded"),
            (HostError::NoGraphLoaded, "no graph loaded"),
            (HostError::QueueFull, "admission queue full"),
            (HostError::Cancelled, "cancelled"),
            (HostError::DeviceFault { event: event(), epoch: 3, retries: 2 }, "device fault"),
            (HostError::FaultAfterEmit { event: event(), emitted: 5 }, "stream aborted"),
            (HostError::DeadlineExceeded { millis: 250 }, "deadline"),
            (HostError::NoHealthyCu { quarantined: 4 }, "no healthy compute unit"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn fault_errors_carry_their_context() {
        let err = HostError::DeviceFault { event: event(), epoch: 9, retries: 2 };
        let text = err.to_string();
        assert!(text.contains("CU 2"), "{text}");
        assert!(text.contains("epoch 9"), "{text}");
        assert!(text.contains("2 retries"), "{text}");

        let err = HostError::FaultAfterEmit { event: event(), emitted: 41 };
        assert!(err.to_string().contains("41 paths"), "{err}");
    }

    #[test]
    fn fault_errors_expose_the_event_as_their_source() {
        use std::error::Error;
        let err = HostError::DeviceFault { event: event(), epoch: 0, retries: 0 };
        let source = err.source().expect("device faults have a cause");
        assert!(source.to_string().contains("DRAM"), "{source}");
        assert!(HostError::QueueFull.source().is_none());
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn std::error::Error> = Box::new(HostError::NoGraphLoaded);
        assert!(!err.to_string().is_empty());
    }
}
