//! Error type shared by the host runtime.

use std::fmt;

/// Errors produced by the host-side runtime.
#[derive(Debug)]
pub enum HostError {
    /// Loading or parsing a graph file failed.
    GraphLoad(String),
    /// A query string could not be parsed.
    QueryParse(String),
    /// A query referenced vertices outside the loaded graph or an unsupported
    /// hop constraint.
    QueryInvalid(String),
    /// A serialised device payload was malformed (bad magic, version,
    /// truncation or checksum mismatch).
    PayloadCorrupt(String),
    /// The prepared payload does not fit into the device DRAM.
    DeviceCapacity(String),
    /// No graph has been loaded into the session yet.
    NoGraphLoaded,
    /// The runtime's admission queue is full; the submission was rejected
    /// instead of blocking (backpressure — retry later or shed load).
    QueueFull,
    /// The job was cancelled (its ticket was dropped or explicitly cancelled,
    /// or the runtime shut down) before it produced a result.
    Cancelled,
}

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostError::GraphLoad(msg) => write!(f, "graph load failed: {msg}"),
            HostError::QueryParse(msg) => write!(f, "cannot parse query: {msg}"),
            HostError::QueryInvalid(msg) => write!(f, "invalid query: {msg}"),
            HostError::PayloadCorrupt(msg) => write!(f, "corrupt device payload: {msg}"),
            HostError::DeviceCapacity(msg) => write!(f, "device capacity exceeded: {msg}"),
            HostError::NoGraphLoaded => write!(f, "no graph loaded in this session"),
            HostError::QueueFull => write!(f, "admission queue full: submission rejected"),
            HostError::Cancelled => write!(f, "job cancelled before completion"),
        }
    }
}

impl std::error::Error for HostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_identify_the_error_class() {
        let cases: Vec<(HostError, &str)> = vec![
            (HostError::GraphLoad("x".into()), "graph load failed"),
            (HostError::QueryParse("x".into()), "cannot parse query"),
            (HostError::QueryInvalid("x".into()), "invalid query"),
            (HostError::PayloadCorrupt("x".into()), "corrupt device payload"),
            (HostError::DeviceCapacity("x".into()), "device capacity exceeded"),
            (HostError::NoGraphLoaded, "no graph loaded"),
            (HostError::QueueFull, "admission queue full"),
            (HostError::Cancelled, "cancelled"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_trait_object_is_usable() {
        let err: Box<dyn std::error::Error> = Box::new(HostError::NoGraphLoaded);
        assert!(!err.to_string().is_empty());
    }
}
