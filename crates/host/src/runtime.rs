//! The concurrent host runtime: one shared CU cluster, many sessions.
//!
//! The paper drives a single FPGA kernel from one CPU process; a production
//! deployment multiplexes many tenants onto one card. [`HostRuntime`] is that
//! multiplexer: a long-lived object owning the loaded graph, a **shared**
//! `(s, t, k)`-keyed [`pefp_core::PreparedQuery`] LRU (lock-striped, so
//! sessions asking the same questions share preprocessing), and a persistent
//! pool of worker threads — one per simulated compute unit, created once —
//! fed by a bounded admission queue.
//!
//! ```text
//!  client A ──┐ submit                    ┌── worker 0 ── CU 0 ─┐
//!  client B ──┼──► admission queue ──────►├── worker 1 ── CU 1 ─┼─ shared
//!  client C ──┘  (bounded, fair:          └── worker n ── CU n ─┘  DRAM
//!                 round-robin across                               arbiter
//!                 sessions, LPT within)
//! ```
//!
//! Scheduling is fair in two dimensions: the queue serves **sessions
//! round-robin** (a tenant flooding the queue cannot starve the others) and
//! **longest-estimated-first within a session** (the LPT policy the batch
//! scheduler uses, so a session's heavyweight queries start early). The queue
//! is bounded: [`HostRuntime::submit_query`] returns
//! [`HostError::QueueFull`] instead of blocking forever — backpressure the
//! caller can act on.
//!
//! Work arrives as **jobs** and completes through [`JobTicket`]s. Dropping a
//! ticket cancels its job: queued jobs are skipped, and a running job's
//! engine observes the flipped [`pefp_core::CancelToken`] at its next batch
//! boundary and stops. Streaming jobs deliver result paths through a bounded
//! channel, so a slow client backpressures its own query without stalling the
//! other compute units.
//!
//! [`crate::HostSession`] is a thin per-client handle over this runtime; the
//! single-session entry points (`run_query`, `serve`, …) build a private
//! one-CU runtime, so the paper-shaped workflow is the degenerate case of the
//! multi-tenant one.

use crate::binfmt::payload_bytes;
use crate::dma::DmaEngine;
use crate::error::HostError;
use crate::loader::GraphHandle;
use crate::query::QueryRequest;
use crate::scheduler::BatchQueryResult;
use crate::session::QueryOutcome;
use pefp_baselines::{naive_dfs_stream, BcDfs, Join};
use pefp_core::{
    plan_query, prepare_snapshot_with, route_query, run_prepared_on_device, CancelToken,
    EngineChoice, PefpVariant, PrepareContext, PreparedQuery, RouteContext, RouteDecision,
    RoutingTable,
};
use pefp_fpga::{CuCluster, CuLease, DeviceConfig, FaultEvent, FaultPlan, MultiCuConfig, Pcie};
use pefp_graph::sink::{CollectSink, CountingSink, FnSink};
use pefp_graph::view::GraphView;
use pefp_graph::{Epoch, GraphDelta, GraphSnapshot, VersionedGraph, VertexId};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies one client session within a runtime. Handed out by
/// [`HostRuntime::register_session`]; the admission queue uses it for
/// round-robin fairness and the virtual clock for per-tenant serialisation.
pub type SessionId = u64;

/// Configuration of a [`HostRuntime`].
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Per-CU device profile.
    pub device: DeviceConfig,
    /// PEFP variant every job runs.
    pub variant: PefpVariant,
    /// Size engine options per query with the host-side planner instead of
    /// the variant's fixed defaults.
    pub use_planner: bool,
    /// Number of simulated compute units — also the number of persistent
    /// worker threads (one per CU, created once at launch).
    pub compute_units: usize,
    /// Fraction of the card's DRAM bandwidth one CU can absorb alone (the
    /// shared arbiter's saturation law; see [`pefp_fpga::DramArbiter`]).
    pub per_cu_bandwidth_share: f64,
    /// Capacity of the bounded admission queue. Submissions beyond it fail
    /// with [`HostError::QueueFull`].
    pub queue_capacity: usize,
    /// Total capacity of the shared `(s, t, k)`-keyed prepared-query LRU
    /// (0 disables caching).
    pub shared_cache_capacity: usize,
    /// Number of independently locked stripes the shared cache is split into.
    /// More stripes mean less lock contention but per-stripe (not global) LRU
    /// eviction; 1 reproduces the exact single-map LRU of a private session.
    pub cache_stripes: usize,
    /// Fault schedule the simulated fleet runs under. `None` (the default)
    /// simulates perfect hardware; a seeded plan makes every device the
    /// cluster instantiates draw DRAM/PCIe/stall/crash faults from it (see
    /// [`pefp_fpga::FaultPlan`]).
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// How the runtime reacts to device faults (retries, quarantine,
    /// CPU fallback, engine watchdog).
    pub fault_tolerance: FaultToleranceConfig,
    /// Wall-clock deadline applied to every job that does not override it at
    /// submission ([`HostRuntime::submit_query_with_deadline`]). An
    /// overrunning job is cancelled by the deadline watchdog and fails with
    /// [`HostError::DeadlineExceeded`]. `None` (the default) never kills.
    pub default_deadline: Option<Duration>,
    /// Cost table of the adaptive engine router. `None` (the default) runs
    /// every job on the simulated device exactly as before; `Some(table)`
    /// routes each prepared query to the cheapest engine — a CPU baseline
    /// (skipping the PCIe transfer and the CU lease entirely) or the device —
    /// by the modelled latencies of [`pefp_core::route_query`]. Routing never
    /// changes answers, only placement.
    pub routing: Option<RoutingTable>,
    /// Charge the DRAM bank model's conflict and read↔write turnaround
    /// stalls to CU clocks (see [`pefp_fpga::MultiCuConfig::charge_banked`]).
    /// Off by default so pre-charging cycle counts are reproduced exactly.
    pub charge_banked: bool,
    /// Size of the dedicated CPU worker pool serving router-placed CPU jobs
    /// (only spawned when [`RuntimeConfig::routing`] is set). CPU-routed jobs
    /// never occupy a compute-unit lease, so device throughput is unaffected
    /// by a burst of tiny queries.
    pub cpu_workers: usize,
}

/// Knobs of the runtime's fault-tolerance layer.
#[derive(Debug, Clone)]
pub struct FaultToleranceConfig {
    /// Maximum device retries per job after a detected fault. Retries prefer
    /// a *different* CU than the one that failed (an injected fault stream is
    /// per-CU, so the same CU may fault identically again).
    pub max_retries: u32,
    /// Base backoff between retries; attempt `n` sleeps `n × retry_backoff`
    /// (bounded, linear — a job makes at most `max_retries` hops).
    pub retry_backoff: Duration,
    /// Consecutive failures on one CU before its circuit breaker opens and
    /// the CU is quarantined (jobs steer around it).
    pub quarantine_after: u32,
    /// Number of CU acquisitions to wait before a quarantined CU is probed
    /// back in with a real job (the probe repairs the simulated crash latch
    /// first; a CU that keeps faulting trips the breaker again).
    pub probe_cooldown: u32,
    /// When no healthy CU remains (or retries are exhausted), run the query
    /// on the CPU baseline (`pefp_baselines::naive_dfs_stream`) over the same
    /// pruned subgraph and `PathSink` pipeline instead of failing. Answers
    /// are identical; only the speed degrades.
    pub cpu_fallback: bool,
    /// Engine cycle watchdog: abort a run whose device exceeds this many
    /// simulated kernel cycles (detects injected hangs). Wired into
    /// [`pefp_core::EngineOptions::cycle_budget`]; `None` trusts the CU.
    pub watchdog_cycle_budget: Option<u64>,
}

impl Default for FaultToleranceConfig {
    fn default() -> Self {
        FaultToleranceConfig {
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            quarantine_after: 3,
            probe_cooldown: 8,
            cpu_fallback: true,
            watchdog_cycle_budget: None,
        }
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            device: DeviceConfig::alveo_u200(),
            variant: PefpVariant::Full,
            use_planner: false,
            compute_units: 1,
            per_cu_bandwidth_share: MultiCuConfig::default().per_cu_bandwidth_share,
            queue_capacity: 1024,
            shared_cache_capacity: 128,
            cache_stripes: 8,
            fault_plan: None,
            fault_tolerance: FaultToleranceConfig::default(),
            default_deadline: None,
            routing: None,
            charge_banked: false,
            cpu_workers: 2,
        }
    }
}

impl RuntimeConfig {
    /// The single-session shape used when a [`crate::HostSession`] owns its
    /// own private runtime: one CU, one cache stripe (exact LRU semantics),
    /// and the session's device/variant/cache settings.
    pub fn for_session(config: &crate::session::SessionConfig) -> Self {
        RuntimeConfig {
            device: config.device.clone(),
            variant: config.variant,
            use_planner: config.use_planner,
            compute_units: 1,
            shared_cache_capacity: config.prepared_cache_capacity,
            cache_stripes: 1,
            ..RuntimeConfig::default()
        }
    }
}

// ---------------------------------------------------------------------------
// Job tickets
// ---------------------------------------------------------------------------

/// Shared completion state between a submitted job and its ticket.
#[derive(Debug)]
struct TicketInner<T> {
    slot: Mutex<Option<Result<T, HostError>>>,
    done: Condvar,
    cancel: Arc<AtomicBool>,
    /// Set once the result landed in `slot`; lets the deadline watchdog skip
    /// finished jobs without taking the slot mutex.
    finished: AtomicBool,
    /// Set by the deadline watchdog (together with `cancel`) so completion
    /// sites can distinguish a deadline kill from a voluntary cancellation.
    deadline_exceeded: AtomicBool,
    /// The registered deadline in milliseconds (0 = none), for error context.
    deadline_millis: AtomicU64,
}

impl<T> TicketInner<T> {
    fn new() -> Arc<Self> {
        Arc::new(TicketInner {
            slot: Mutex::new(None),
            done: Condvar::new(),
            cancel: Arc::new(AtomicBool::new(false)),
            finished: AtomicBool::new(false),
            deadline_exceeded: AtomicBool::new(false),
            deadline_millis: AtomicU64::new(0),
        })
    }

    fn complete(&self, result: Result<T, HostError>) {
        let mut slot = self.slot.lock().expect("ticket poisoned");
        *slot = Some(result);
        self.finished.store(true, Ordering::Release);
        self.done.notify_all();
    }

    /// The error a cancelled job should fail with: a deadline kill surfaces
    /// as [`HostError::DeadlineExceeded`], everything else as `Cancelled`.
    fn cancel_error(&self) -> HostError {
        if self.deadline_exceeded.load(Ordering::Acquire) {
            HostError::DeadlineExceeded { millis: self.deadline_millis.load(Ordering::Relaxed) }
        } else {
            HostError::Cancelled
        }
    }
}

/// A claim on the result of one submitted job.
///
/// Await the result with [`JobTicket::wait`]. Dropping the ticket without
/// waiting **cancels** the job: if it is still queued it is skipped, and if
/// it is running the engine stops at its next batch boundary — the abandoned
/// query stops burning its compute unit.
#[derive(Debug)]
pub struct JobTicket<T> {
    inner: Arc<TicketInner<T>>,
    /// Whether dropping this ticket should cancel the job (cleared by
    /// `wait`, which consumes the ticket deliberately).
    armed: bool,
}

impl<T> JobTicket<T> {
    /// Blocks until the job completes and returns its result.
    pub fn wait(mut self) -> Result<T, HostError> {
        self.armed = false;
        let mut slot = self.inner.slot.lock().expect("ticket poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.inner.done.wait(slot).expect("ticket poisoned");
        }
    }

    /// Requests cancellation without consuming the ticket: a queued job is
    /// skipped, a running job stops at its next batch boundary (its result so
    /// far is still delivered).
    pub fn cancel(&self) {
        self.inner.cancel.store(true, Ordering::Release);
    }

    /// Whether the job has already produced its result.
    pub fn is_finished(&self) -> bool {
        self.inner.slot.lock().expect("ticket poisoned").is_some()
    }
}

impl<T> Drop for JobTicket<T> {
    fn drop(&mut self) {
        if self.armed {
            self.inner.cancel.store(true, Ordering::Release);
        }
    }
}

// ---------------------------------------------------------------------------
// Jobs and the admission queue
// ---------------------------------------------------------------------------

/// How a job delivers its result paths.
enum JobKind {
    /// Materialise the paths into the outcome (`QueryOutcome::paths`).
    Collect,
    /// Count only.
    Count,
    /// Push every path (original graph ids) into a bounded channel as it is
    /// found. A full channel backpressures only this job's CU; a dropped
    /// receiver terminates the enumeration.
    Stream(SyncSender<Vec<VertexId>>),
}

/// One unit of work flowing through the admission queue.
struct Job {
    session: SessionId,
    request: QueryRequest,
    kind: JobKind,
    /// The graph epoch this job was admitted under. The job runs against this
    /// snapshot even if [`HostRuntime::apply_updates`] lands newer epochs
    /// while it is queued or running — a query's answer is always consistent
    /// with *one* version of the graph.
    snapshot: Arc<GraphSnapshot>,
    ticket: Arc<TicketInner<QueryOutcome>>,
}

/// A job queued with its scheduling metadata.
struct QueuedJob {
    seq: u64,
    estimate: u64,
    job: Job,
}

/// The jobs one session currently has queued.
struct SessionLane {
    session: SessionId,
    jobs: Vec<QueuedJob>,
}

struct QueueState {
    capacity: usize,
    len: usize,
    next_seq: u64,
    /// Lanes in round-robin order; the front lane is served next.
    lanes: VecDeque<SessionLane>,
    shutdown: bool,
}

/// Bounded MPMC admission queue with per-session fairness: sessions are
/// served round-robin, and within a session the job with the largest
/// estimate runs first (LPT). `submit` never blocks — a full queue is a
/// [`HostError::QueueFull`] the caller handles.
struct AdmissionQueue {
    state: Mutex<QueueState>,
    job_ready: Condvar,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                capacity: capacity.max(1),
                len: 0,
                next_seq: 0,
                lanes: VecDeque::new(),
                shutdown: false,
            }),
            job_ready: Condvar::new(),
        }
    }

    /// Enqueues a group of jobs atomically (all admitted or none, so a batch
    /// cannot be half-accepted). Returns `QueueFull` when the group does not
    /// fit the remaining capacity — but first reclaims the slots of queued
    /// jobs whose tickets were already cancelled, so dead work cannot wedge
    /// the queue shut. On success, returns how many cancelled jobs were
    /// pruned (their tickets are completed with [`HostError::Cancelled`]).
    fn submit_many(&self, jobs: Vec<(Job, u64)>) -> Result<u64, HostError> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        if state.shutdown {
            return Err(HostError::Cancelled);
        }
        let mut pruned = 0u64;
        if state.len + jobs.len() > state.capacity {
            pruned = Self::prune_cancelled(&mut state);
            if state.len + jobs.len() > state.capacity {
                return Err(HostError::QueueFull);
            }
        }
        for (job, estimate) in jobs {
            let seq = state.next_seq;
            state.next_seq += 1;
            let queued = QueuedJob { seq, estimate, job };
            match state.lanes.iter_mut().find(|lane| lane.session == queued.job.session) {
                Some(lane) => lane.jobs.push(queued),
                None => state
                    .lanes
                    .push_back(SessionLane { session: queued.job.session, jobs: vec![queued] }),
            }
            state.len += 1;
            self.job_ready.notify_one();
        }
        Ok(pruned)
    }

    fn submit(&self, job: Job, estimate: u64) -> Result<u64, HostError> {
        self.submit_many(vec![(job, estimate)])
    }

    /// Drops every queued job whose ticket was cancelled, completing its
    /// ticket with [`HostError::Cancelled`], and returns how many were
    /// removed. The ticket mutex is a leaf lock (never held while taking the
    /// queue lock), so completing under the queue lock cannot deadlock.
    fn prune_cancelled(state: &mut QueueState) -> u64 {
        let mut removed = 0u64;
        for lane in state.lanes.iter_mut() {
            lane.jobs.retain(|queued| {
                if queued.job.ticket.cancel.load(Ordering::Acquire) {
                    queued.job.ticket.complete(Err(queued.job.ticket.cancel_error()));
                    removed += 1;
                    false
                } else {
                    true
                }
            });
        }
        state.lanes.retain(|lane| !lane.jobs.is_empty());
        state.len -= removed as usize;
        removed
    }

    /// Takes the next job: the front lane's largest-estimate entry (ties to
    /// the earliest submission), after which the lane rotates to the back.
    /// Blocks while the queue is empty; returns `None` on shutdown.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        loop {
            if state.shutdown {
                return None;
            }
            if state.len > 0 {
                let mut lane = state.lanes.pop_front().expect("len > 0 implies a lane");
                let pick = lane
                    .jobs
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, j)| (j.estimate, std::cmp::Reverse(j.seq)))
                    .map(|(i, _)| i)
                    .expect("lanes are never empty");
                let queued = lane.jobs.swap_remove(pick);
                if !lane.jobs.is_empty() {
                    state.lanes.push_back(lane);
                }
                state.len -= 1;
                return Some(queued.job);
            }
            state = self.job_ready.wait(state).expect("admission queue poisoned");
        }
    }

    fn depth(&self) -> usize {
        self.state.lock().expect("admission queue poisoned").len
    }

    /// Stops the queue: wakes every worker (which then exit) and returns the
    /// jobs still queued so their tickets can be failed.
    fn shutdown(&self) -> Vec<Job> {
        let mut state = self.state.lock().expect("admission queue poisoned");
        state.shutdown = true;
        state.len = 0;
        let drained =
            state.lanes.drain(..).flat_map(|lane| lane.jobs.into_iter().map(|q| q.job)).collect();
        self.job_ready.notify_all();
        drained
    }
}

// ---------------------------------------------------------------------------
// CPU engine pool (router-placed jobs)
// ---------------------------------------------------------------------------

/// The CPU engine a routed (or fault-degraded) job runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CpuEngine {
    /// Barrier-carrying DFS, seeded with the prepared query's Pre-BFS
    /// barrier.
    BcDfs,
    /// The half-depth JOIN baseline.
    Join,
    /// The brute-force DFS oracle — the last resort when no routing table is
    /// configured.
    Naive,
}

/// Engine accounting lanes: the device (single- or multi-CU) plus the three
/// CPU engines ([`DEVICE_LANE`] and [`CpuEngine::lane`] pick the index).
const ENGINE_LANES: usize = 4;
/// Lane names, in lane order (`stats.engines` and the server's `STATS` JSON
/// use these).
const ENGINE_LANE_NAMES: [&str; ENGINE_LANES] = ["device", "bc_dfs", "join", "naive"];
/// The device's accounting lane.
const DEVICE_LANE: usize = 0;

impl CpuEngine {
    fn lane(self) -> usize {
        match self {
            CpuEngine::BcDfs => 1,
            CpuEngine::Join => 2,
            CpuEngine::Naive => 3,
        }
    }
}

/// A job the router placed on a CPU engine, preprocessing already done. CPU
/// jobs ride a dedicated handoff queue and worker pool — they never occupy a
/// CU lease, so a burst of tiny queries cannot stall device work.
struct CpuJob {
    request: QueryRequest,
    kind: JobKind,
    prepared: Arc<PreparedQuery>,
    engine: CpuEngine,
    preprocess_millis: f64,
    cache_hit: bool,
    ticket: Arc<TicketInner<QueryOutcome>>,
}

struct CpuQueueState {
    jobs: VecDeque<CpuJob>,
    shutdown: bool,
}

/// Handoff queue between the device workers (which pop, preprocess and route
/// jobs) and the CPU pool. Admission control already happened at the bounded
/// admission queue, so this queue never rejects for capacity; it only fails a
/// push after shutdown.
struct CpuQueue {
    state: Mutex<CpuQueueState>,
    ready: Condvar,
}

impl CpuQueue {
    fn new() -> Self {
        CpuQueue {
            state: Mutex::new(CpuQueueState { jobs: VecDeque::new(), shutdown: false }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, job: CpuJob) -> Result<(), CpuJob> {
        let mut state = self.state.lock().expect("cpu queue poisoned");
        if state.shutdown {
            return Err(job);
        }
        state.jobs.push_back(job);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next CPU job; `None` on shutdown.
    fn pop(&self) -> Option<CpuJob> {
        let mut state = self.state.lock().expect("cpu queue poisoned");
        loop {
            if state.shutdown {
                return None;
            }
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            state = self.ready.wait(state).expect("cpu queue poisoned");
        }
    }

    /// Stops the queue and returns the jobs still queued so their tickets can
    /// be failed.
    fn shutdown(&self) -> Vec<CpuJob> {
        let mut state = self.state.lock().expect("cpu queue poisoned");
        state.shutdown = true;
        let drained = state.jobs.drain(..).collect();
        self.ready.notify_all();
        drained
    }
}

// ---------------------------------------------------------------------------
// Shared prepared-query cache (lock-striped LRU)
// ---------------------------------------------------------------------------

/// One stripe: an `(s, t, k)`-keyed LRU with its own lock.
#[derive(Debug)]
struct CacheShard {
    capacity: usize,
    tick: u64,
    entries: HashMap<QueryRequest, (u64, Arc<PreparedQuery>)>,
}

impl CacheShard {
    fn get(&mut self, key: &QueryRequest) -> Option<Arc<PreparedQuery>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(stamp, prep)| {
            *stamp = tick;
            Arc::clone(prep)
        })
    }

    fn insert(&mut self, key: QueryRequest, prep: Arc<PreparedQuery>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) =
                self.entries.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, prep));
    }

    /// Drops every entry whose BFS-touched vertex set intersects `touched`
    /// (sorted, deduplicated) and returns how many were evicted. Entries whose
    /// preprocessing never saw a touched vertex answer identically on the new
    /// epoch, so they survive.
    fn invalidate(&mut self, touched: &[VertexId]) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|_, (_, prep)| !prep.touched.intersects(touched));
        (before - self.entries.len()) as u64
    }
}

/// The shared prepared-query LRU: `(s, t, k)` keys hashed onto independently
/// locked stripes, so concurrent sessions rarely contend on the same lock.
/// Entries are `Arc`s over O(touched)-sized subgraphs, so even a full cache
/// stays proportional to the served working set.
#[derive(Debug)]
struct SharedPreparedCache {
    shards: Vec<Mutex<CacheShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedPreparedCache {
    fn new(capacity: usize, stripes: usize) -> Self {
        let stripes = if capacity == 0 { 1 } else { stripes.clamp(1, capacity) };
        let base = capacity / stripes;
        let remainder = capacity % stripes;
        let shards = (0..stripes)
            .map(|i| {
                let cap = base + usize::from(i < remainder);
                Mutex::new(CacheShard { capacity: cap, tick: 0, entries: HashMap::new() })
            })
            .collect();
        SharedPreparedCache { shards, hits: AtomicU64::new(0), misses: AtomicU64::new(0) }
    }

    fn shard_of(&self, key: &QueryRequest) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn get(&self, key: &QueryRequest) -> Option<Arc<PreparedQuery>> {
        let hit = self.shards[self.shard_of(key)].lock().expect("cache shard poisoned").get(key);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Reads an entry without bumping its LRU recency or the hit/miss
    /// counters. Used by the admission-time cost estimate and `EXPLAIN`,
    /// which must not skew the serving statistics.
    fn peek(&self, key: &QueryRequest) -> Option<Arc<PreparedQuery>> {
        self.shards[self.shard_of(key)]
            .lock()
            .expect("cache shard poisoned")
            .entries
            .get(key)
            .map(|(_, prep)| Arc::clone(prep))
    }

    #[cfg(test)]
    fn insert(&self, key: QueryRequest, prep: Arc<PreparedQuery>) {
        self.shards[self.shard_of(&key)].lock().expect("cache shard poisoned").insert(key, prep);
    }

    /// Inserts `prep` only if the runtime is still on the epoch the entry was
    /// prepared under, checked *under the shard lock*. This closes the race
    /// with [`HostRuntime::apply_updates`], which stores the new epoch before
    /// sweeping the shards: if the worker sees the old epoch here, its insert
    /// lands before the sweep (same lock) and the sweep evicts it if stale; if
    /// it sees the new epoch, the entry is simply dropped.
    fn insert_if_epoch(
        &self,
        key: QueryRequest,
        prep: Arc<PreparedQuery>,
        prepared_epoch: Epoch,
        current: &AtomicU64,
    ) {
        let mut shard = self.shards[self.shard_of(&key)].lock().expect("cache shard poisoned");
        if current.load(Ordering::Acquire) == prepared_epoch {
            shard.insert(key, prep);
        }
    }

    /// Sweeps every shard, evicting entries touched by an update. Returns the
    /// number of evicted entries.
    fn invalidate(&self, touched: &[VertexId]) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").invalidate(touched))
            .sum()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").entries.len()).sum()
    }
}

// ---------------------------------------------------------------------------
// Deadline watchdog
// ---------------------------------------------------------------------------

/// One job under deadline supervision. Weak, so a dropped ticket never keeps
/// its completion state alive through the watchdog.
struct DeadlineEntry {
    due: Instant,
    ticket: Weak<TicketInner<QueryOutcome>>,
}

/// State of the deadline watchdog thread.
struct DeadlineState {
    entries: Vec<DeadlineEntry>,
    shutdown: bool,
}

/// The watchdog loop: sleeps until the earliest registered deadline (or a
/// coarse idle tick), then kills every overdue unfinished job by flipping its
/// cancel flag — the engine observes it at the next batch boundary and the
/// completion site converts the cancellation into
/// [`HostError::DeadlineExceeded`].
fn deadline_watchdog(shared: Arc<RuntimeShared>) {
    let mut state = shared.deadlines.lock().expect("deadline table poisoned");
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        state.entries.retain(|entry| match entry.ticket.upgrade() {
            None => false,
            Some(ticket) => {
                if ticket.finished.load(Ordering::Acquire) {
                    false
                } else if entry.due <= now {
                    ticket.deadline_exceeded.store(true, Ordering::Release);
                    ticket.cancel.store(true, Ordering::Release);
                    shared.counters.deadline_kills.fetch_add(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            }
        });
        let wait = state
            .entries
            .iter()
            .map(|e| e.due)
            .min()
            .map(|due| due.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(100))
            .max(Duration::from_millis(1));
        let (guard, _) =
            shared.deadline_cv.wait_timeout(state, wait).expect("deadline table poisoned");
        state = guard;
    }
}

// ---------------------------------------------------------------------------
// Per-CU health (circuit breaker)
// ---------------------------------------------------------------------------

/// Health record of one compute unit.
#[derive(Debug, Clone, Copy, Default)]
struct CuHealthState {
    /// Consecutive job failures; reset by any success.
    consecutive_failures: u32,
    /// Whether the circuit breaker is open (jobs steer around this CU).
    quarantined: bool,
    /// Acquisitions remaining before a probe may try this CU again.
    probe_cooldown: u32,
}

/// The runtime's per-CU circuit breaker: `quarantine_after` consecutive
/// failures open the breaker, after which jobs avoid the CU; every
/// `probe_cooldown` acquisitions one quarantined CU is offered back as a
/// *probe* (a real job — correctness is protected by the retry/fallback
/// machinery, so a probe can never corrupt an answer). A successful probe
/// closes the breaker; a failed one restarts the cooldown.
#[derive(Debug)]
struct CuHealth {
    states: Mutex<Vec<CuHealthState>>,
}

impl CuHealth {
    fn new(cus: usize) -> Self {
        CuHealth { states: Mutex::new(vec![CuHealthState::default(); cus.max(1)]) }
    }

    fn record_success(&self, cu: usize) {
        let mut states = self.states.lock().expect("health table poisoned");
        states[cu].consecutive_failures = 0;
        states[cu].quarantined = false;
    }

    /// Records a failure; returns `true` when this failure newly opened the
    /// breaker (for the quarantine-event counter).
    fn record_failure(&self, cu: usize, quarantine_after: u32, cooldown: u32) -> bool {
        let mut states = self.states.lock().expect("health table poisoned");
        let state = &mut states[cu];
        state.consecutive_failures += 1;
        if state.quarantined {
            // A failed probe: restart the cooldown.
            state.probe_cooldown = cooldown.max(1);
            false
        } else if state.consecutive_failures >= quarantine_after.max(1) {
            state.quarantined = true;
            state.probe_cooldown = cooldown.max(1);
            true
        } else {
            false
        }
    }

    /// CUs the breaker allows, preferring to exclude `avoid` (the CU that
    /// just failed this job) unless it is the only healthy one left.
    fn healthy(&self, avoid: Option<usize>) -> Vec<usize> {
        let states = self.states.lock().expect("health table poisoned");
        let mut list: Vec<usize> =
            states.iter().enumerate().filter(|(_, s)| !s.quarantined).map(|(cu, _)| cu).collect();
        if let Some(avoid) = avoid {
            if list.len() > 1 {
                list.retain(|&cu| cu != avoid);
            }
        }
        list
    }

    fn quarantined_count(&self) -> usize {
        self.states.lock().expect("health table poisoned").iter().filter(|s| s.quarantined).count()
    }

    /// Ticks every quarantined CU's cooldown by one acquisition and returns a
    /// CU that is due for a probe, resetting its cooldown so concurrent
    /// acquirers do not all probe the same CU. With `force` (no healthy CU
    /// left) the closest-to-ready quarantined CU is returned regardless of
    /// its remaining cooldown — the fleet must keep making progress.
    fn probe_ready(&self, force: bool, cooldown_reset: u32) -> Option<usize> {
        let mut states = self.states.lock().expect("health table poisoned");
        let mut ready = None;
        for (cu, state) in states.iter_mut().enumerate() {
            if !state.quarantined {
                continue;
            }
            if state.probe_cooldown > 0 {
                state.probe_cooldown -= 1;
            }
            if ready.is_none() && state.probe_cooldown == 0 {
                ready = Some(cu);
            }
        }
        if ready.is_none() && force {
            ready = states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.quarantined)
                .min_by_key(|(_, s)| s.probe_cooldown)
                .map(|(cu, _)| cu);
        }
        if let Some(cu) = ready {
            states[cu].probe_cooldown = cooldown_reset.max(1);
        }
        ready
    }
}

// ---------------------------------------------------------------------------
// Runtime statistics
// ---------------------------------------------------------------------------

/// Live counters of a runtime (atomics updated by workers).
#[derive(Debug)]
struct RuntimeCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    queue_full: AtomicU64,
    cancelled: AtomicU64,
    graph_updates: AtomicU64,
    cache_invalidated: AtomicU64,
    per_cu_busy_cycles: Vec<AtomicU64>,
    per_cu_jobs: Vec<AtomicU64>,
    per_cu_bank_conflict_cycles: Vec<AtomicU64>,
    per_cu_turnaround_cycles: Vec<AtomicU64>,
    next_session: AtomicU64,
    /// Device faults observed by jobs (each failed attempt counts once).
    device_faults: AtomicU64,
    /// Device retries performed after a fault.
    fault_retries: AtomicU64,
    /// Times a CU's circuit breaker newly opened.
    quarantine_events: AtomicU64,
    /// Queries answered by the CPU fallback engine.
    cpu_fallbacks: AtomicU64,
    /// Jobs killed by the deadline watchdog.
    deadline_kills: AtomicU64,
    /// Streaming jobs that surfaced [`HostError::FaultAfterEmit`].
    fault_after_emit: AtomicU64,
    /// Jobs the router placed on a CPU engine (fault degradations excluded).
    cpu_routed: AtomicU64,
    /// Jobs answered per engine lane (see [`ENGINE_LANE_NAMES`]).
    engine_jobs: [AtomicU64; ENGINE_LANES],
    /// Summed serving latency per engine lane, in microseconds: modelled
    /// device time for the device lane, host wall time for the CPU lanes.
    engine_micros: [AtomicU64; ENGINE_LANES],
}

/// Records one answered job against an engine lane.
fn record_engine(shared: &RuntimeShared, lane: usize, millis: f64) {
    shared.counters.engine_jobs[lane].fetch_add(1, Ordering::Relaxed);
    shared.counters.engine_micros[lane]
        .fetch_add((millis * 1e3).max(0.0).round() as u64, Ordering::Relaxed);
}

/// Per-tenant virtual time: each session's jobs are serialised on the
/// session's own clock (a tenant is a closed loop), and each job is placed on
/// the **virtually least-loaded CU**, occupying
/// `max(session ready, CU free) .. + cycles`. Charging the virtual CU rather
/// than the physical one matters for the same reason the batch scheduler's
/// dispatch queue gates pops on simulated load: on a busy or small host the
/// OS may run many jobs on few threads back to back, and binding virtual
/// time to that wall assignment would collide tenants onto one virtual CU
/// and corrupt the makespan. The largest completion time is the runtime's
/// simulated makespan — a machine-independent throughput denominator
/// (queries / makespan) for the `host_concurrency` bench and gate.
#[derive(Debug)]
struct VirtualClock {
    session_ready: HashMap<SessionId, u64>,
    cu_free: Vec<u64>,
    makespan: u64,
    total_cycles: u64,
}

/// Per-engine serving statistics: one row per engine lane, in the fixed lane
/// order `device`, `bc_dfs`, `join`, `naive`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineLaneStats {
    /// Engine name (`"device"`, `"bc_dfs"`, `"join"` or `"naive"`).
    pub engine: &'static str,
    /// Jobs this engine answered.
    pub jobs: u64,
    /// Summed serving latency in milliseconds: modelled device time for the
    /// device lane, host wall time for the CPU lanes.
    pub total_millis: f64,
}

impl EngineLaneStats {
    /// Mean serving latency in milliseconds (0 with no jobs).
    pub fn mean_millis(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_millis / self.jobs as f64
        }
    }
}

/// A point-in-time snapshot of a runtime's behaviour, served by
/// [`HostRuntime::stats`] (and the server's `STATS` command, as JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeStats {
    /// Number of compute units (= persistent workers).
    pub compute_units: usize,
    /// Jobs currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Jobs accepted into the queue so far.
    pub submitted: u64,
    /// Jobs that ran to a result (including early-terminated ones).
    pub completed: u64,
    /// Jobs rejected at submission (validation) or staging (capacity).
    pub rejected: u64,
    /// Submissions refused with [`HostError::QueueFull`].
    pub queue_full_rejections: u64,
    /// Jobs cancelled before or during execution.
    pub cancelled_jobs: u64,
    /// Shared-cache lookups served from the cache.
    pub cache_hits: u64,
    /// Shared-cache lookups that had to preprocess.
    pub cache_misses: u64,
    /// Prepared queries currently resident in the shared cache.
    pub cached_prepared_queries: usize,
    /// Current graph epoch (0 until the first [`HostRuntime::apply_updates`]).
    pub epoch: u64,
    /// Update batches applied through [`HostRuntime::apply_updates`].
    pub graph_updates: u64,
    /// Cached prepared queries evicted by update invalidation sweeps.
    pub cache_invalidated: u64,
    /// Simulated busy cycles per CU (contention stalls included), in the
    /// virtual placement domain — the same clock the makespan lives in, so
    /// `busy / makespan` is a true utilisation fraction.
    pub per_cu_busy_cycles: Vec<u64>,
    /// Jobs placed per CU (virtual placement domain).
    pub per_cu_jobs: Vec<u64>,
    /// Bank-conflict stall cycles charged per CU — all zeros unless
    /// [`RuntimeConfig::charge_banked`] is on.
    pub per_cu_bank_conflict_cycles: Vec<u64>,
    /// Read↔write turnaround stall cycles charged per CU (zeros unless
    /// banked charging is on).
    pub per_cu_turnaround_cycles: Vec<u64>,
    /// Virtual-time makespan over all completed jobs (see the queueing model
    /// in the module docs): total device work serialised per session and per
    /// CU. `total_device_cycles / makespan` ≈ achieved CU parallelism.
    pub virtual_makespan_cycles: u64,
    /// Sum of all completed jobs' device cycles.
    pub total_device_cycles: u64,
    /// Device faults observed by jobs (each failed attempt counts once).
    pub device_faults: u64,
    /// Faults the plan injected so far (plan telemetry; ≥ `device_faults`
    /// because undetected stalls also count). 0 without a fault plan.
    pub faults_injected: u64,
    /// Device retries performed after faults.
    pub fault_retries: u64,
    /// Times a CU's circuit breaker newly opened.
    pub quarantine_events: u64,
    /// CUs currently quarantined.
    pub quarantined_cus: usize,
    /// Queries answered by the CPU fallback engine.
    pub cpu_fallbacks: u64,
    /// Jobs killed by the deadline watchdog.
    pub deadline_kills: u64,
    /// Streaming jobs aborted with [`HostError::FaultAfterEmit`].
    pub fault_after_emit: u64,
    /// Jobs the adaptive router placed on a CPU engine (fault degradations
    /// not included; 0 when [`RuntimeConfig::routing`] is `None`).
    pub cpu_routed: u64,
    /// Per-engine serving counters, in lane order `device`, `bc_dfs`,
    /// `join`, `naive`.
    pub engines: Vec<EngineLaneStats>,
}

impl RuntimeStats {
    /// Fraction of cache lookups served from the shared cache (0 when no
    /// lookup happened yet).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Per-CU utilisation over the virtual makespan (busy cycles divided by
    /// the makespan; all zeros before any job completed).
    pub fn per_cu_utilisation(&self) -> Vec<f64> {
        if self.virtual_makespan_cycles == 0 {
            return vec![0.0; self.per_cu_busy_cycles.len()];
        }
        self.per_cu_busy_cycles
            .iter()
            .map(|&busy| busy as f64 / self.virtual_makespan_cycles as f64)
            .collect()
    }
}

impl pefp_workload::ToJson for RuntimeStats {
    fn to_json(&self) -> pefp_workload::JsonValue {
        use pefp_workload::JsonValue;
        JsonValue::object(vec![
            ("compute_units", JsonValue::Number(self.compute_units as f64)),
            ("queue_depth", JsonValue::Number(self.queue_depth as f64)),
            ("queue_capacity", JsonValue::Number(self.queue_capacity as f64)),
            ("submitted", JsonValue::Number(self.submitted as f64)),
            ("completed", JsonValue::Number(self.completed as f64)),
            ("rejected", JsonValue::Number(self.rejected as f64)),
            ("queue_full_rejections", JsonValue::Number(self.queue_full_rejections as f64)),
            ("cancelled_jobs", JsonValue::Number(self.cancelled_jobs as f64)),
            ("cache_hits", JsonValue::Number(self.cache_hits as f64)),
            ("cache_misses", JsonValue::Number(self.cache_misses as f64)),
            ("cache_hit_rate", JsonValue::Number(self.cache_hit_rate())),
            ("cached_prepared_queries", JsonValue::Number(self.cached_prepared_queries as f64)),
            ("epoch", JsonValue::Number(self.epoch as f64)),
            ("graph_updates", JsonValue::Number(self.graph_updates as f64)),
            ("cache_invalidated", JsonValue::Number(self.cache_invalidated as f64)),
            (
                "per_cu_busy_cycles",
                JsonValue::numbers(
                    &self.per_cu_busy_cycles.iter().map(|&c| c as f64).collect::<Vec<_>>(),
                ),
            ),
            (
                "per_cu_jobs",
                JsonValue::numbers(&self.per_cu_jobs.iter().map(|&c| c as f64).collect::<Vec<_>>()),
            ),
            (
                "per_cu_bank_conflict_cycles",
                JsonValue::numbers(
                    &self.per_cu_bank_conflict_cycles.iter().map(|&c| c as f64).collect::<Vec<_>>(),
                ),
            ),
            (
                "per_cu_turnaround_cycles",
                JsonValue::numbers(
                    &self.per_cu_turnaround_cycles.iter().map(|&c| c as f64).collect::<Vec<_>>(),
                ),
            ),
            ("per_cu_utilisation", JsonValue::numbers(&self.per_cu_utilisation())),
            ("virtual_makespan_cycles", JsonValue::Number(self.virtual_makespan_cycles as f64)),
            ("total_device_cycles", JsonValue::Number(self.total_device_cycles as f64)),
            ("device_faults", JsonValue::Number(self.device_faults as f64)),
            ("faults_injected", JsonValue::Number(self.faults_injected as f64)),
            ("fault_retries", JsonValue::Number(self.fault_retries as f64)),
            ("quarantine_events", JsonValue::Number(self.quarantine_events as f64)),
            ("quarantined_cus", JsonValue::Number(self.quarantined_cus as f64)),
            ("cpu_fallbacks", JsonValue::Number(self.cpu_fallbacks as f64)),
            ("deadline_kills", JsonValue::Number(self.deadline_kills as f64)),
            ("fault_after_emit", JsonValue::Number(self.fault_after_emit as f64)),
            ("cpu_routed", JsonValue::Number(self.cpu_routed as f64)),
            (
                "engines",
                JsonValue::Object(
                    self.engines
                        .iter()
                        .map(|lane| {
                            (
                                lane.engine.to_string(),
                                JsonValue::object(vec![
                                    ("jobs", JsonValue::Number(lane.jobs as f64)),
                                    ("total_millis", JsonValue::Number(lane.total_millis)),
                                    ("mean_millis", JsonValue::Number(lane.mean_millis())),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// The runtime
// ---------------------------------------------------------------------------

/// Everything the worker threads share.
struct RuntimeShared {
    config: RuntimeConfig,
    graph: GraphHandle,
    /// The epoch-versioned graph. Jobs capture the current snapshot at
    /// submission; `apply_updates` swings this to the next epoch.
    versioned: Mutex<VersionedGraph>,
    /// Mirror of the current epoch, readable without the `versioned` lock.
    /// Stored (via `fetch_max`) *before* the cache invalidation sweep — the
    /// ordering the epoch-fenced cache insert relies on.
    epoch: AtomicU64,
    cluster: CuCluster,
    queue: AdmissionQueue,
    /// Handoff queue feeding the dedicated CPU worker pool (router-placed
    /// jobs only; empty and unused when routing is disabled).
    cpu_queue: CpuQueue,
    cache: SharedPreparedCache,
    counters: RuntimeCounters,
    virt: Mutex<VirtualClock>,
    /// Per-CU circuit breaker state.
    health: CuHealth,
    /// Jobs under deadline supervision, served by the watchdog thread.
    deadlines: Mutex<DeadlineState>,
    /// Wakes the watchdog on registration and shutdown.
    deadline_cv: Condvar,
}

/// The long-lived multi-session host runtime. See the module docs for the
/// architecture; construct with [`HostRuntime::launch`], hand
/// [`crate::HostSession::attach`] handles to clients, and drop the last
/// reference to shut the worker pool down.
pub struct HostRuntime {
    shared: Arc<RuntimeShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for HostRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRuntime")
            .field("compute_units", &self.shared.config.compute_units)
            .field("queue_depth", &self.shared.queue.depth())
            .finish()
    }
}

impl HostRuntime {
    /// Builds the runtime around `graph` and starts its persistent worker
    /// pool (one thread per compute unit, created once — jobs never pay a
    /// thread spawn).
    pub fn launch(graph: GraphHandle, config: RuntimeConfig) -> Arc<HostRuntime> {
        let cus = config.compute_units.max(1);
        let multi_cu = MultiCuConfig {
            compute_units: cus,
            per_cu_bandwidth_share: config.per_cu_bandwidth_share,
            charge_banked: config.charge_banked,
        };
        let cluster = match &config.fault_plan {
            Some(plan) => CuCluster::with_faults(config.device.clone(), multi_cu, Arc::clone(plan)),
            None => CuCluster::new(config.device.clone(), multi_cu),
        };
        let versioned = VersionedGraph::new(Arc::clone(&graph.csr), Arc::clone(&graph.reverse));
        let shared = Arc::new(RuntimeShared {
            queue: AdmissionQueue::new(config.queue_capacity),
            cpu_queue: CpuQueue::new(),
            cache: SharedPreparedCache::new(config.shared_cache_capacity, config.cache_stripes),
            epoch: AtomicU64::new(versioned.epoch()),
            versioned: Mutex::new(versioned),
            counters: RuntimeCounters {
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                queue_full: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                graph_updates: AtomicU64::new(0),
                cache_invalidated: AtomicU64::new(0),
                per_cu_busy_cycles: (0..cus).map(|_| AtomicU64::new(0)).collect(),
                per_cu_jobs: (0..cus).map(|_| AtomicU64::new(0)).collect(),
                per_cu_bank_conflict_cycles: (0..cus).map(|_| AtomicU64::new(0)).collect(),
                per_cu_turnaround_cycles: (0..cus).map(|_| AtomicU64::new(0)).collect(),
                next_session: AtomicU64::new(0),
                device_faults: AtomicU64::new(0),
                fault_retries: AtomicU64::new(0),
                quarantine_events: AtomicU64::new(0),
                cpu_fallbacks: AtomicU64::new(0),
                deadline_kills: AtomicU64::new(0),
                fault_after_emit: AtomicU64::new(0),
                cpu_routed: AtomicU64::new(0),
                engine_jobs: std::array::from_fn(|_| AtomicU64::new(0)),
                engine_micros: std::array::from_fn(|_| AtomicU64::new(0)),
            },
            virt: Mutex::new(VirtualClock {
                session_ready: HashMap::new(),
                cu_free: vec![0; cus],
                makespan: 0,
                total_cycles: 0,
            }),
            health: CuHealth::new(cus),
            deadlines: Mutex::new(DeadlineState { entries: Vec::new(), shutdown: false }),
            deadline_cv: Condvar::new(),
            cluster,
            graph,
            config,
        });
        let mut workers: Vec<JoinHandle<()>> = (0..cus)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();
        // The CPU engine pool only exists when the router can place work on
        // it; without a routing table nothing ever pushes to the CPU queue.
        let cpu_workers =
            if shared.config.routing.is_some() { shared.config.cpu_workers.max(1) } else { 0 };
        for _ in 0..cpu_workers {
            let shared = Arc::clone(&shared);
            workers.push(std::thread::spawn(move || cpu_worker_loop(shared)));
        }
        workers.push({
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || deadline_watchdog(shared))
        });
        Arc::new(HostRuntime { shared, workers: Mutex::new(workers) })
    }

    /// The graph this runtime serves (the epoch-0 base; see
    /// [`HostRuntime::current_snapshot`] for the live version).
    pub fn graph(&self) -> &GraphHandle {
        &self.shared.graph
    }

    /// The current graph epoch. Starts at 0 and advances by one per
    /// [`HostRuntime::apply_updates`] batch.
    pub fn epoch(&self) -> Epoch {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// The snapshot new submissions are admitted under. In-flight jobs may
    /// still be running against older snapshots (each job pins its own).
    pub fn current_snapshot(&self) -> Arc<GraphSnapshot> {
        Arc::clone(self.shared.versioned.lock().expect("versioned graph poisoned").current())
    }

    /// Applies a batch of edge inserts and removals, producing the next graph
    /// epoch, and returns it. In-flight and already-queued jobs keep the
    /// snapshot they were admitted under; jobs submitted after this returns
    /// see the new epoch.
    ///
    /// The shared prepared-query cache is invalidated *incrementally*: only
    /// entries whose preprocessing BFS touched one of the delta's endpoint
    /// vertices are evicted (an untouched entry's pruned subgraph — and
    /// therefore its answer — is provably identical on the new epoch).
    /// The epoch mirror is advanced before the sweep so a concurrently
    /// finishing worker cannot re-insert a stale entry behind the sweep (see
    /// `SharedPreparedCache::insert_if_epoch`).
    ///
    /// An empty delta still advances the epoch — a fence callers can use to
    /// separate "before" from "after".
    pub fn apply_updates(&self, delta: &GraphDelta) -> Epoch {
        let snapshot = {
            let mut versioned = self.shared.versioned.lock().expect("versioned graph poisoned");
            versioned.apply(delta)
        };
        let epoch = snapshot.epoch();
        // fetch_max, not store: concurrent updates serialise on the versioned
        // lock but could publish their epochs out of order here.
        self.shared.epoch.fetch_max(epoch, Ordering::AcqRel);
        self.shared.counters.graph_updates.fetch_add(1, Ordering::Relaxed);
        let touched = delta.touched_vertices();
        if !touched.is_empty() {
            let evicted = self.shared.cache.invalidate(&touched);
            self.shared.counters.cache_invalidated.fetch_add(evicted, Ordering::Relaxed);
        }
        epoch
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// Number of compute units (= worker threads).
    pub fn compute_units(&self) -> usize {
        self.shared.config.compute_units.max(1)
    }

    /// Registers a new client session and returns its id.
    pub fn register_session(&self) -> SessionId {
        self.shared.counters.next_session.fetch_add(1, Ordering::Relaxed)
    }

    /// Prepared queries currently resident in the shared cache.
    pub fn cached_prepared_queries(&self) -> usize {
        self.shared.cache.len()
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Snapshot of the runtime's counters.
    pub fn stats(&self) -> RuntimeStats {
        let c = &self.shared.counters;
        let virt = self.shared.virt.lock().expect("virtual clock poisoned");
        RuntimeStats {
            compute_units: self.compute_units(),
            queue_depth: self.shared.queue.depth(),
            queue_capacity: self.shared.config.queue_capacity.max(1),
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            queue_full_rejections: c.queue_full.load(Ordering::Relaxed),
            cancelled_jobs: c.cancelled.load(Ordering::Relaxed),
            cache_hits: self.shared.cache.hits.load(Ordering::Relaxed),
            cache_misses: self.shared.cache.misses.load(Ordering::Relaxed),
            cached_prepared_queries: self.shared.cache.len(),
            epoch: self.shared.epoch.load(Ordering::Acquire),
            graph_updates: c.graph_updates.load(Ordering::Relaxed),
            cache_invalidated: c.cache_invalidated.load(Ordering::Relaxed),
            per_cu_busy_cycles: c
                .per_cu_busy_cycles
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            per_cu_jobs: c.per_cu_jobs.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            per_cu_bank_conflict_cycles: c
                .per_cu_bank_conflict_cycles
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            per_cu_turnaround_cycles: c
                .per_cu_turnaround_cycles
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            virtual_makespan_cycles: virt.makespan,
            total_device_cycles: virt.total_cycles,
            device_faults: c.device_faults.load(Ordering::Relaxed),
            faults_injected: self
                .shared
                .cluster
                .fault_plan()
                .map(|plan| plan.faults_injected())
                .unwrap_or(0),
            fault_retries: c.fault_retries.load(Ordering::Relaxed),
            quarantine_events: c.quarantine_events.load(Ordering::Relaxed),
            quarantined_cus: self.shared.health.quarantined_count(),
            cpu_fallbacks: c.cpu_fallbacks.load(Ordering::Relaxed),
            deadline_kills: c.deadline_kills.load(Ordering::Relaxed),
            fault_after_emit: c.fault_after_emit.load(Ordering::Relaxed),
            cpu_routed: c.cpu_routed.load(Ordering::Relaxed),
            engines: (0..ENGINE_LANES)
                .map(|lane| EngineLaneStats {
                    engine: ENGINE_LANE_NAMES[lane],
                    jobs: c.engine_jobs[lane].load(Ordering::Relaxed),
                    total_millis: c.engine_micros[lane].load(Ordering::Relaxed) as f64 / 1e3,
                })
                .collect(),
        }
    }

    /// Number of CU leases currently checked out (e.g. to assert that a
    /// cancelled job released its compute unit).
    pub fn leased_cus(&self) -> usize {
        self.shared.cluster.leased_cus()
    }

    /// CUs currently quarantined by the circuit breaker.
    pub fn quarantined_cus(&self) -> usize {
        self.shared.health.quarantined_count()
    }

    /// Submits a query job. `collect` materialises result paths into the
    /// outcome; otherwise they are only counted. Fails fast with
    /// `QueryInvalid` (bad request) or [`HostError::QueueFull`]
    /// (backpressure); staging errors (device capacity) arrive through the
    /// ticket.
    pub fn submit_query(
        &self,
        session: SessionId,
        request: QueryRequest,
        collect: bool,
    ) -> Result<JobTicket<QueryOutcome>, HostError> {
        let kind = if collect { JobKind::Collect } else { JobKind::Count };
        self.submit(session, request, kind, self.shared.config.default_deadline)
    }

    /// [`HostRuntime::submit_query`] with a per-job deadline overriding
    /// [`RuntimeConfig::default_deadline`]. The deadline clock starts at
    /// admission; an overrunning job is killed by the watchdog and fails
    /// with [`HostError::DeadlineExceeded`].
    pub fn submit_query_with_deadline(
        &self,
        session: SessionId,
        request: QueryRequest,
        collect: bool,
        deadline: Duration,
    ) -> Result<JobTicket<QueryOutcome>, HostError> {
        let kind = if collect { JobKind::Collect } else { JobKind::Count };
        self.submit(session, request, kind, Some(deadline))
    }

    /// Submits a streaming query job: every result path (original graph ids)
    /// is delivered through the returned bounded channel while the job runs.
    /// A full channel backpressures only this job's CU; dropping the receiver
    /// (or cancelling/dropping the ticket) terminates the enumeration at the
    /// next emission or batch boundary.
    pub fn submit_query_streaming(
        &self,
        session: SessionId,
        request: QueryRequest,
        channel_capacity: usize,
    ) -> Result<(JobTicket<QueryOutcome>, Receiver<Vec<VertexId>>), HostError> {
        let (tx, rx) = std::sync::mpsc::sync_channel(channel_capacity.max(1));
        let ticket = self.submit(
            session,
            request,
            JobKind::Stream(tx),
            self.shared.config.default_deadline,
        )?;
        Ok((ticket, rx))
    }

    /// Submits a whole batch as one fairness unit: the requests are
    /// validated up front (any invalid request rejects the batch), duplicates
    /// collapse to one execution, and the unique queries enter the admission
    /// queue atomically — either the batch fits or `QueueFull` is returned
    /// and nothing runs. Within the session the queue's LPT order lets the
    /// heavyweight queries start first.
    ///
    /// One submission must fit [`RuntimeConfig::queue_capacity`]; a batch
    /// with more unique queries than that can *never* be admitted atomically,
    /// so callers should split it into capacity-sized waves (as
    /// [`crate::HostSession::run_batch`] does) rather than retry on
    /// `QueueFull`.
    pub fn submit_batch(
        &self,
        session: SessionId,
        requests: &[QueryRequest],
    ) -> Result<BatchTicket, HostError> {
        let snapshot = self.current_snapshot();
        for request in requests {
            if let Err(e) = request.validate_for(snapshot.num_vertices()) {
                self.shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        }
        let mut unique: Vec<QueryRequest> = Vec::new();
        let mut slot_of = Vec::with_capacity(requests.len());
        let mut index: HashMap<QueryRequest, usize> = HashMap::new();
        for request in requests {
            let slot = *index.entry(*request).or_insert_with(|| {
                unique.push(*request);
                unique.len() - 1
            });
            slot_of.push(slot);
        }
        let deduplicated = requests.len() - unique.len();

        let mut jobs = Vec::with_capacity(unique.len());
        let mut tickets = Vec::with_capacity(unique.len());
        for request in &unique {
            let ticket = TicketInner::new();
            tickets.push(JobTicket { inner: Arc::clone(&ticket), armed: true });
            jobs.push((
                Job {
                    session,
                    request: *request,
                    kind: JobKind::Count,
                    snapshot: Arc::clone(&snapshot),
                    ticket,
                },
                self.admission_estimate(&snapshot, request),
            ));
        }
        let n = jobs.len() as u64;
        match self.shared.queue.submit_many(jobs) {
            Ok(pruned) => {
                self.shared.counters.cancelled.fetch_add(pruned, Ordering::Relaxed);
                self.shared.counters.submitted.fetch_add(n, Ordering::Relaxed);
                if let Some(deadline) = self.shared.config.default_deadline {
                    for ticket in &tickets {
                        self.register_deadline(&ticket.inner, deadline);
                    }
                }
                Ok(BatchTicket { tickets, requests: unique, slot_of, deduplicated })
            }
            Err(HostError::QueueFull) => {
                self.shared.counters.queue_full.fetch_add(1, Ordering::Relaxed);
                Err(HostError::QueueFull)
            }
            Err(e) => Err(e),
        }
    }

    fn submit(
        &self,
        session: SessionId,
        request: QueryRequest,
        kind: JobKind,
        deadline: Option<Duration>,
    ) -> Result<JobTicket<QueryOutcome>, HostError> {
        let snapshot = self.current_snapshot();
        if let Err(e) = request.validate_for(snapshot.num_vertices()) {
            self.shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let inner = TicketInner::new();
        let ticket = JobTicket { inner: Arc::clone(&inner), armed: true };
        let est = self.admission_estimate(&snapshot, &request);
        let job = Job { session, request, kind, snapshot, ticket: inner };
        match self.shared.queue.submit(job, est) {
            Ok(pruned) => {
                self.shared.counters.cancelled.fetch_add(pruned, Ordering::Relaxed);
                self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
                if let Some(deadline) = deadline {
                    self.register_deadline(&ticket.inner, deadline);
                }
                Ok(ticket)
            }
            Err(HostError::QueueFull) => {
                self.shared.counters.queue_full.fetch_add(1, Ordering::Relaxed);
                Err(HostError::QueueFull)
            }
            Err(e) => Err(e),
        }
    }

    /// Submission-time LPT estimate of one request. With the router
    /// configured and the query already resident in the shared prepared
    /// cache, the router's modelled cost (µs) is the ordering key — a real
    /// latency prediction instead of the degree proxy. Unprepared queries
    /// fall back to [`estimate`]: preprocessing at admission would serialise
    /// every submitter on the caller's thread. The two keys only ever *rank*
    /// jobs within one session's lane, so mixing the scales is benign.
    fn admission_estimate(&self, snapshot: &GraphSnapshot, request: &QueryRequest) -> u64 {
        if let Some(table) = &self.shared.config.routing {
            if let Some(prepared) = self.shared.cache.peek(request) {
                let ctx = RouteContext {
                    compute_units: self.compute_units(),
                    charge_banked: self.shared.config.charge_banked,
                };
                let decision = route_query(&prepared, table, &ctx);
                return decision.cost_estimate_us as u64;
            }
        }
        estimate(snapshot, request)
    }

    /// Explains how the router would place `request`, without running it:
    /// the chosen engine, the modelled per-engine costs, the feature vector
    /// and one rationale line per decision step. Works even when
    /// [`RuntimeConfig::routing`] is `None` — the builtin table is consulted
    /// so `EXPLAIN` always answers — and is deterministic given the graph
    /// epoch and the table. Preprocessing is shared with real queries through
    /// the prepared cache; the lookup is a peek, so `EXPLAIN` never skews the
    /// hit/miss statistics.
    pub fn explain(&self, request: QueryRequest) -> Result<RouteDecision, HostError> {
        let snapshot = self.current_snapshot();
        request.validate_for(snapshot.num_vertices())?;
        let prepared = match self.shared.cache.peek(&request) {
            Some(hit) => hit,
            None => {
                let mut ctx = PrepareContext::with_reverse(
                    &self.shared.graph.csr,
                    Arc::clone(&self.shared.graph.reverse),
                );
                let prep = Arc::new(prepare_snapshot_with(
                    &mut ctx,
                    &snapshot,
                    request.s,
                    request.t,
                    request.k,
                    self.shared.config.variant,
                ));
                self.shared.cache.insert_if_epoch(
                    request,
                    Arc::clone(&prep),
                    snapshot.epoch(),
                    &self.shared.epoch,
                );
                prep
            }
        };
        let builtin;
        let table = match &self.shared.config.routing {
            Some(table) => table,
            None => {
                builtin = RoutingTable::builtin();
                &builtin
            }
        };
        let ctx = RouteContext {
            compute_units: self.compute_units(),
            charge_banked: self.shared.config.charge_banked,
        };
        Ok(route_query(&prepared, table, &ctx))
    }

    /// Puts `ticket` under deadline supervision: the watchdog kills the job
    /// once `deadline` has elapsed from now.
    fn register_deadline(&self, ticket: &Arc<TicketInner<QueryOutcome>>, deadline: Duration) {
        ticket
            .deadline_millis
            .store(deadline.as_millis().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        let mut state = self.shared.deadlines.lock().expect("deadline table poisoned");
        state
            .entries
            .push(DeadlineEntry { due: Instant::now() + deadline, ticket: Arc::downgrade(ticket) });
        self.shared.deadline_cv.notify_all();
    }
}

/// Cheap submission-time LPT estimate of a query's device work: the source's
/// fan-out (in the snapshot the job will run against) times the hop budget. A
/// proxy, not a prediction — it only has to *rank* a session's queued jobs so
/// the heavy ones start early (the true cycle count is unknowable before
/// preprocessing).
fn estimate(snapshot: &GraphSnapshot, request: &QueryRequest) -> u64 {
    (snapshot.forward().out_degree(request.s) as u64 + 1) * request.k as u64
}

impl Drop for HostRuntime {
    fn drop(&mut self) {
        for job in self.shared.queue.shutdown() {
            job.ticket.complete(Err(HostError::Cancelled));
        }
        for job in self.shared.cpu_queue.shutdown() {
            job.ticket.complete(Err(HostError::Cancelled));
        }
        self.shared.deadlines.lock().expect("deadline table poisoned").shutdown = true;
        self.shared.deadline_cv.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker table poisoned"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// A claim on the results of a submitted batch.
#[derive(Debug)]
pub struct BatchTicket {
    tickets: Vec<JobTicket<QueryOutcome>>,
    requests: Vec<QueryRequest>,
    slot_of: Vec<usize>,
    deduplicated: usize,
}

impl BatchTicket {
    /// Blocks until every query of the batch completed and assembles the
    /// per-slot results (duplicates answered from their unique execution).
    /// The first failing query fails the batch; the remaining tickets are
    /// dropped, which cancels their jobs.
    pub fn wait(self) -> Result<RuntimeBatchOutcome, HostError> {
        let mut unique_rows = Vec::with_capacity(self.tickets.len());
        let mut preprocess_millis = 0.0;
        let mut transfer_millis = 0.0;
        let mut device_millis = 0.0;
        let mut cache_hits = 0u64;
        for (ticket, request) in self.tickets.into_iter().zip(&self.requests) {
            let outcome = ticket.wait()?;
            preprocess_millis += outcome.preprocess_millis;
            transfer_millis += outcome.transfer.total_millis;
            device_millis += outcome.device_millis;
            cache_hits += u64::from(outcome.cache_hit);
            unique_rows.push(BatchQueryResult {
                request: *request,
                num_paths: outcome.num_paths,
                device_millis: outcome.device_millis,
            });
        }
        let results = self.slot_of.iter().map(|&slot| unique_rows[slot]).collect();
        Ok(RuntimeBatchOutcome {
            results,
            deduplicated: self.deduplicated,
            cache_hits,
            preprocess_millis,
            transfer_millis,
            device_millis,
        })
    }
}

/// The outcome of a batch submitted through [`HostRuntime::submit_batch`].
/// Unlike the discrete-event [`crate::BatchOutcome`] of the batch scheduler,
/// this is the multi-tenant path: the batch's queries shared the admission
/// queue and CU pool with every other session's work.
#[derive(Debug, Clone)]
pub struct RuntimeBatchOutcome {
    /// Per-query results, in submission order (duplicates resolved to the
    /// same numbers).
    pub results: Vec<BatchQueryResult>,
    /// Requests served from a duplicate's execution.
    pub deduplicated: usize,
    /// Unique queries whose preprocessing came from the shared cache.
    pub cache_hits: u64,
    /// Summed host preprocessing time (ms).
    pub preprocess_millis: f64,
    /// Summed DMA transfer time (ms).
    pub transfer_millis: f64,
    /// Summed simulated device time (ms).
    pub device_millis: f64,
}

impl RuntimeBatchOutcome {
    /// Total result paths across the batch.
    pub fn total_paths(&self) -> u64 {
        self.results.iter().map(|r| r.num_paths).sum()
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: Arc<RuntimeShared>) {
    // Per-worker preprocessing context and DMA engine, created once: BFS
    // scratch and the graph's prebuilt reverse CSR amortise across every job
    // this worker ever runs.
    let mut ctx =
        PrepareContext::with_reverse(&shared.graph.csr, Arc::clone(&shared.graph.reverse));
    let pcie = Pcie::new(shared.config.device.pcie_gbps, shared.config.device.pcie_setup_us);
    let mut dma = DmaEngine::with_defaults(pcie);
    while let Some(job) = shared.queue.pop() {
        execute_job(&shared, &mut ctx, &mut dma, job);
    }
}

/// Reserves a CU for one job attempt, honouring the circuit breaker: only
/// non-quarantined CUs are candidates (preferring one different from `avoid`,
/// the CU that just failed this job), and quarantined CUs whose probe
/// cooldown elapsed are offered back as probes (with their simulated crash
/// latch repaired first). Returns `None` only when no healthy CU remains and
/// no probe could be leased — the caller degrades to the CPU path instead of
/// parking forever on a dead fleet.
fn acquire_cu(shared: &RuntimeShared, avoid: Option<usize>) -> Option<(CuLease<'_>, bool)> {
    let ft = &shared.config.fault_tolerance;
    loop {
        let healthy = shared.health.healthy(avoid);
        if let Some(cu) = shared.health.probe_ready(healthy.is_empty(), ft.probe_cooldown) {
            if let Some(lease) = shared.cluster.try_checkout_cu(cu) {
                if let Some(plan) = shared.cluster.fault_plan() {
                    plan.repair(cu);
                }
                return Some((lease, true));
            }
        }
        if healthy.is_empty() {
            return None;
        }
        if let Some(lease) = shared.cluster.checkout_among(&healthy, Duration::from_millis(50)) {
            return Some((lease, false));
        }
        // Timed out waiting for a healthy CU: re-evaluate health and probes —
        // the healthy set may have shrunk (or grown) while we waited.
    }
}

/// One device attempt of a job on a leased CU's device. Returns the run
/// result, the collected paths (collect mode) and how many paths a streaming
/// job delivered into its channel — the count that decides between a silent
/// replay (zero) and [`HostError::FaultAfterEmit`] on a faulted stream.
fn run_attempt(
    prepared: &PreparedQuery,
    options: pefp_core::EngineOptions,
    device: pefp_fpga::Device,
    kind: &JobKind,
    cancel: &Arc<AtomicBool>,
) -> (pefp_core::PefpRunResult, Vec<pefp_graph::paths::Path>, u64) {
    match kind {
        JobKind::Collect => {
            let mut sink = CollectSink::new();
            let result = run_prepared_on_device(prepared, options, device, &mut sink);
            (result, sink.into_paths(), 0)
        }
        JobKind::Count => {
            let mut options = options;
            options.collect_paths = false;
            let mut sink = CountingSink::new();
            let result = run_prepared_on_device(prepared, options, device, &mut sink);
            (result, Vec::new(), 0)
        }
        JobKind::Stream(tx) => {
            let emitted = std::cell::Cell::new(0u64);
            let mut sink = FnSink(|path: &[VertexId]| {
                let mut path = path.to_vec();
                loop {
                    if cancel.load(Ordering::Acquire) {
                        return ControlFlow::Break(());
                    }
                    match tx.try_send(path) {
                        Ok(()) => {
                            emitted.set(emitted.get() + 1);
                            return ControlFlow::Continue(());
                        }
                        Err(TrySendError::Disconnected(_)) => return ControlFlow::Break(()),
                        Err(TrySendError::Full(back)) => {
                            // Bounded-channel backpressure: stall this CU (and
                            // only this CU) until the client drains or goes
                            // away, re-checking the cancel flag meanwhile. The
                            // short sleep keeps a wedged client from pegging a
                            // host core while costing ~nothing in latency.
                            path = back;
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                }
            });
            let result = run_prepared_on_device(prepared, options, device, &mut sink);
            let delivered = emitted.get();
            (result, Vec::new(), delivered)
        }
    }
}

/// Runs the query on one of the CPU engines over the same pruned subgraph
/// and the same `PathSink` pipeline the device engine feeds. The Pre-BFS
/// subgraph is answer-preserving and every engine enumerates exactly the
/// k-hop s-t simple paths, so the result *set* is identical to a fault-free
/// device run — only the speed (and, across engines, the emission order)
/// differs. Returns the number of result paths and the collected paths
/// (collect mode, original graph ids).
fn run_cpu_engine(
    prepared: &PreparedQuery,
    kind: &JobKind,
    cancel: &Arc<AtomicBool>,
    engine: CpuEngine,
) -> (u64, Vec<pefp_graph::paths::Path>) {
    if !prepared.feasible {
        return (0, Vec::new());
    }
    let g = prepared.graph.as_ref();
    let (s, t, k) = (prepared.s, prepared.t, prepared.k);
    let run = |sink: &mut dyn pefp_graph::sink::PathSink| match engine {
        CpuEngine::Naive => {
            naive_dfs_stream(g, s, t, k, sink);
        }
        CpuEngine::BcDfs => {
            // Seed the barrier from the prepared query: Pre-BFS already
            // computed sd(·, t) clamped to k+1 over the pruned subgraph,
            // which is the initial barrier BC-DFS would rebuild — except at
            // the source. Pre-BFS sweeps only k-1 reverse hops (the device's
            // barrier check never reads bar[s]), so a feasible source exactly
            // k hops from t keeps the k+1 sentinel; BC-DFS *does* check the
            // source barrier, and in that one case sd(s, t) = k exactly.
            let mut bar = prepared.barrier.clone();
            if let Some(b) = bar.get_mut(s.index()) {
                *b = (*b).min(k);
            }
            let mut dfs = BcDfs::with_barrier(bar, k);
            let _ = dfs.enumerate_into(g, s, t, k, sink);
        }
        CpuEngine::Join => {
            let _ = Join::new().enumerate_into(g, s, t, k, sink);
        }
    };
    match kind {
        JobKind::Collect => {
            let mut paths: Vec<pefp_graph::paths::Path> = Vec::new();
            let mut sink = FnSink(|path: &[VertexId]| {
                if cancel.load(Ordering::Acquire) {
                    return ControlFlow::Break(());
                }
                paths.push(prepared.translate_path(path));
                ControlFlow::Continue(())
            });
            run(&mut sink);
            let num = paths.len() as u64;
            (num, paths)
        }
        JobKind::Count => {
            let mut count = 0u64;
            let mut sink = FnSink(|_: &[VertexId]| {
                if cancel.load(Ordering::Acquire) {
                    return ControlFlow::Break(());
                }
                count += 1;
                ControlFlow::Continue(())
            });
            run(&mut sink);
            (count, Vec::new())
        }
        JobKind::Stream(tx) => {
            let emitted = std::cell::Cell::new(0u64);
            let mut sink = FnSink(|path: &[VertexId]| {
                let mut path = prepared.translate_path(path);
                loop {
                    if cancel.load(Ordering::Acquire) {
                        return ControlFlow::Break(());
                    }
                    match tx.try_send(path) {
                        Ok(()) => {
                            emitted.set(emitted.get() + 1);
                            return ControlFlow::Continue(());
                        }
                        Err(TrySendError::Disconnected(_)) => return ControlFlow::Break(()),
                        Err(TrySendError::Full(back)) => {
                            path = back;
                            std::thread::sleep(std::time::Duration::from_micros(50));
                        }
                    }
                }
            });
            run(&mut sink);
            (emitted.get(), Vec::new())
        }
    }
}

/// The CPU pool's worker loop: drain router-placed jobs until shutdown.
fn cpu_worker_loop(shared: Arc<RuntimeShared>) {
    while let Some(job) = shared.cpu_queue.pop() {
        execute_cpu_job(&shared, job);
    }
}

/// Runs one router-placed CPU job to completion. CPU jobs never touch the
/// PCIe link or the virtual device clock (their latency is host wall time,
/// reported per engine lane); cancellation and deadlines behave exactly as
/// on the device path.
fn execute_cpu_job(shared: &RuntimeShared, job: CpuJob) {
    let CpuJob { request, kind, prepared, engine, preprocess_millis, cache_hit, ticket } = job;
    if ticket.cancel.load(Ordering::Acquire) {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        ticket.complete(Err(ticket.cancel_error()));
        return;
    }
    let started = Instant::now();
    let (num_paths, paths) = run_cpu_engine(&prepared, &kind, &ticket.cancel, engine);
    let wall_millis = started.elapsed().as_secs_f64() * 1e3;
    if ticket.cancel.load(Ordering::Acquire) {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        if ticket.deadline_exceeded.load(Ordering::Acquire) {
            ticket.complete(Err(ticket.cancel_error()));
            return;
        }
    }
    record_engine(shared, engine.lane(), wall_millis);
    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    ticket.complete(Ok(QueryOutcome {
        request,
        num_paths,
        paths,
        preprocess_millis,
        // CPU-routed jobs never cross the PCIe link: a zeroed report keeps
        // `total_millis()` honest about where the time went.
        transfer: crate::dma::DmaTransferReport::none(),
        device_millis: wall_millis,
        cache_hit,
    }));
}

fn execute_job(shared: &RuntimeShared, ctx: &mut PrepareContext, dma: &mut DmaEngine, job: Job) {
    let Job { session, request, kind, snapshot, ticket } = job;
    if ticket.cancel.load(Ordering::Acquire) {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        ticket.complete(Err(ticket.cancel_error()));
        return;
    }

    // Stage: shared-cache lookup or fresh preprocessing against the snapshot
    // the job pinned at admission. A cached entry may have been prepared on
    // an older epoch; it is only still resident because no update since has
    // touched its BFS frontier, which makes its answer identical on every
    // epoch since — including this job's.
    let stage_started = Instant::now();
    let (prepared, cache_hit) = match shared.cache.get(&request) {
        Some(hit) => (hit, true),
        None => {
            let prep = Arc::new(prepare_snapshot_with(
                ctx,
                &snapshot,
                request.s,
                request.t,
                request.k,
                shared.config.variant,
            ));
            (prep, false)
        }
    };
    let preprocess_millis =
        if cache_hit { stage_started.elapsed().as_secs_f64() * 1e3 } else { prepared.host_millis };

    // Stage: engine routing. With a routing table configured, a query whose
    // modelled CPU latency beats the device (transfer included) skips the
    // DRAM capacity check, the PCIe transfer and the CU lease entirely and
    // is handed to the dedicated CPU pool. Routing is deterministic in the
    // prepared query and the table, so a cached entry re-routes identically.
    if let Some(table) = &shared.config.routing {
        let ctx = RouteContext {
            compute_units: shared.config.compute_units.max(1),
            charge_banked: shared.config.charge_banked,
        };
        let decision = route_query(&prepared, table, &ctx);
        if decision.choice.is_cpu() {
            if !cache_hit {
                shared.cache.insert_if_epoch(
                    request,
                    Arc::clone(&prepared),
                    snapshot.epoch(),
                    &shared.epoch,
                );
            }
            let engine = match decision.choice {
                EngineChoice::CpuJoin => CpuEngine::Join,
                _ => CpuEngine::BcDfs,
            };
            shared.counters.cpu_routed.fetch_add(1, Ordering::Relaxed);
            let job =
                CpuJob { request, kind, prepared, engine, preprocess_millis, cache_hit, ticket };
            if let Err(job) = shared.cpu_queue.push(job) {
                job.ticket.complete(Err(HostError::Cancelled));
            }
            return;
        }
    }

    // Capacity check before the transfer; oversized (permanently rejectable)
    // payloads never occupy cache slots.
    let bytes = payload_bytes(&prepared);
    if bytes > shared.config.device.dram_bytes {
        shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
        ticket.complete(Err(HostError::DeviceCapacity(format!(
            "prepared payload is {bytes} bytes but device DRAM holds {}",
            shared.config.device.dram_bytes
        ))));
        return;
    }
    if !cache_hit {
        shared.cache.insert_if_epoch(
            request,
            Arc::clone(&prepared),
            snapshot.epoch(),
            &shared.epoch,
        );
    }
    let transfer = dma.transfer(bytes);

    let mut base_options = if shared.config.use_planner {
        plan_query(&prepared, &shared.config.device).options
    } else {
        shared.config.variant.engine_options()
    };
    // Wire the ticket's cancel flag into the engine: a dropped/cancelled
    // ticket (or a fired deadline) stops the enumeration at the next batch
    // boundary.
    base_options.cancel = Some(CancelToken::from_flag(Arc::clone(&ticket.cancel)));
    if base_options.cycle_budget.is_none() {
        base_options.cycle_budget = shared.config.fault_tolerance.watchdog_cycle_budget;
    }
    base_options.bank_placement = shared.graph.placement;

    // Attempt loop: acquire a healthy CU, run, classify. A detected device
    // fault retries on a *different* CU with bounded backoff (per-CU fault
    // streams are independent); exhausted retries or an empty healthy set
    // degrade to the CPU baseline over the same prepared query.
    let ft = shared.config.fault_tolerance.clone();
    let epoch = snapshot.epoch();
    let mut attempt: u32 = 0;
    let mut avoid: Option<usize> = None;
    let mut last_fault: Option<FaultEvent> = None;
    loop {
        if ticket.cancel.load(Ordering::Acquire) {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            ticket.complete(Err(ticket.cancel_error()));
            return;
        }
        let Some((lease, _probe)) = acquire_cu(shared, avoid) else {
            degrade_to_cpu(
                shared,
                &prepared,
                &kind,
                &ticket,
                request,
                preprocess_millis,
                transfer,
                cache_hit,
                last_fault,
                attempt,
                epoch,
            );
            return;
        };
        let cu = lease.cu();

        // Execute on the leased CU, marked active on the shared bus for the
        // arbiter's contention law. The guard must die before the ticket
        // completes: a closed-loop client submits its next job the moment the
        // ticket resolves, and a still-live activation would overstate the
        // active-CU count (and thus the contention factor) for that job.
        let active = shared.cluster.arbiter().activate();
        let (result, paths, emitted) =
            run_attempt(&prepared, base_options.clone(), lease.device(), &kind, &ticket.cancel);
        drop(active);
        drop(lease);

        // A fired deadline kills the job whatever state the run ended in: the
        // engine may have stopped via its cancel token (stats.cancelled) or
        // via a sink break while wedged on a full stream — either way the
        // ticket owner gets the typed deadline error, not partial results.
        if ticket.deadline_exceeded.load(Ordering::Acquire) {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            ticket.complete(Err(ticket.cancel_error()));
            return;
        }
        // A voluntarily cancelled job (dropped ticket, disconnected stream
        // client) may have stopped via the engine's cancel token *or* via a
        // sink break while the flag was set — treat both as cancelled, and
        // never burn retries on a job nobody is waiting for.
        let was_cancelled = result.stats.cancelled || ticket.cancel.load(Ordering::Acquire);
        let fault = result.device_fault();
        if !was_cancelled {
            if let Some(event) = fault {
                // A detected fault: the run's results and timings are
                // untrustworthy and must be discarded (collect/count sinks
                // are rebuilt per attempt, so a retry recomputes cleanly).
                shared.counters.device_faults.fetch_add(1, Ordering::Relaxed);
                if shared.health.record_failure(cu, ft.quarantine_after, ft.probe_cooldown) {
                    shared.counters.quarantine_events.fetch_add(1, Ordering::Relaxed);
                }
                last_fault = Some(event);
                avoid = Some(cu);
                if emitted > 0 {
                    // The stream already delivered paths to the client: a
                    // replay would duplicate them and truncating would drop
                    // the rest, so surface the fault instead — the caller
                    // restarts the stream from scratch.
                    shared.counters.fault_after_emit.fetch_add(1, Ordering::Relaxed);
                    ticket.complete(Err(HostError::FaultAfterEmit { event, emitted }));
                    return;
                }
                if attempt >= ft.max_retries {
                    degrade_to_cpu(
                        shared,
                        &prepared,
                        &kind,
                        &ticket,
                        request,
                        preprocess_millis,
                        transfer,
                        cache_hit,
                        last_fault,
                        attempt,
                        epoch,
                    );
                    return;
                }
                attempt += 1;
                shared.counters.fault_retries.fetch_add(1, Ordering::Relaxed);
                if !ft.retry_backoff.is_zero() {
                    std::thread::sleep(ft.retry_backoff * attempt);
                }
                continue;
            }
            shared.health.record_success(cu);
        }

        // Accounting: wall counters and the virtual clock. Per-CU load is
        // charged to the *virtual* CU chosen below, not the lease's CU: the
        // physical lease assignment reflects host-scheduler noise (on a 1-core
        // machine one worker can serve most jobs), while the virtual placement
        // is the device-domain view the makespan is computed in — so
        // busy/makespan utilisation stays a true ≤ 1 fraction.
        let cycles = result.device.cycles;
        shared.counters.completed.fetch_add(1, Ordering::Relaxed);
        record_engine(shared, DEVICE_LANE, result.query_millis);
        if was_cancelled {
            shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        {
            let mut virt = shared.virt.lock().expect("virtual clock poisoned");
            let ready = virt.session_ready.get(&session).copied().unwrap_or(0);
            // Best-fit placement: of the CUs already free when this session is
            // ready, take the one that frees *latest* (least virtual idle time —
            // typically the CU this session's previous job kept warm); only when
            // every CU is still busy does the job wait for the earliest one.
            // Plain least-loaded placement would strand un-backfillable idle
            // gaps whenever one tenant races ahead in wall time, halving the
            // apparent packing efficiency.
            let virt_cu = virt
                .cu_free
                .iter()
                .enumerate()
                .filter(|(_, &free)| free <= ready)
                .max_by_key(|(_, &free)| free)
                .or_else(|| virt.cu_free.iter().enumerate().min_by_key(|(_, &free)| free))
                .map(|(i, _)| i)
                .unwrap_or(0);
            let start = ready.max(virt.cu_free[virt_cu]);
            let end = start + cycles;
            virt.session_ready.insert(session, end);
            virt.cu_free[virt_cu] = end;
            virt.makespan = virt.makespan.max(end);
            virt.total_cycles += cycles;
            shared.counters.per_cu_busy_cycles[virt_cu].fetch_add(cycles, Ordering::Relaxed);
            shared.counters.per_cu_jobs[virt_cu].fetch_add(1, Ordering::Relaxed);
            shared.counters.per_cu_bank_conflict_cycles[virt_cu]
                .fetch_add(result.device.bank_conflict_cycles, Ordering::Relaxed);
            shared.counters.per_cu_turnaround_cycles[virt_cu]
                .fetch_add(result.device.turnaround_cycles, Ordering::Relaxed);
            // A session whose ready time no CU will ever be earlier than again
            // can no longer influence a placement (`max(ready, free) == free`):
            // drop it, so a long-lived runtime serving millions of short-lived
            // sessions does not accumulate dead map entries.
            let min_free = virt.cu_free.iter().copied().min().unwrap_or(0);
            virt.session_ready.retain(|_, ready| *ready > min_free);
        }

        ticket.complete(Ok(QueryOutcome {
            request,
            num_paths: result.num_paths,
            paths,
            preprocess_millis,
            transfer,
            device_millis: result.query_millis,
            cache_hit,
        }));
        return;
    }
}

/// Terminal degradation path: no healthy CU is left (or retries are
/// exhausted). With [`FaultToleranceConfig::cpu_fallback`] the query runs on
/// a CPU engine and still answers correctly; otherwise the job fails with a
/// typed error carrying the fault context. When a routing table is
/// configured the fallback uses the router's cheaper CPU engine (BC-DFS vs
/// JOIN) instead of the brute-force oracle; without a table the naive DFS
/// remains the last resort, preserving the pre-router degradation behaviour.
#[allow(clippy::too_many_arguments)]
fn degrade_to_cpu(
    shared: &RuntimeShared,
    prepared: &PreparedQuery,
    kind: &JobKind,
    ticket: &TicketInner<QueryOutcome>,
    request: QueryRequest,
    preprocess_millis: f64,
    transfer: crate::dma::DmaTransferReport,
    cache_hit: bool,
    last_fault: Option<FaultEvent>,
    retries: u32,
    epoch: u64,
) {
    if !shared.config.fault_tolerance.cpu_fallback {
        let err = match last_fault {
            Some(event) => HostError::DeviceFault { event, epoch, retries },
            None => HostError::NoHealthyCu { quarantined: shared.health.quarantined_count() },
        };
        ticket.complete(Err(err));
        return;
    }
    shared.counters.cpu_fallbacks.fetch_add(1, Ordering::Relaxed);
    let engine = match &shared.config.routing {
        Some(table) => {
            // The same cost model that places healthy work picks the
            // degradation engine. JOIN materialises half-depth prefixes, so
            // on saturated estimates its modelled cost blows up and the
            // streaming BC-DFS wins — exactly the memory-safe choice.
            let ctx = RouteContext {
                compute_units: shared.config.compute_units.max(1),
                charge_banked: shared.config.charge_banked,
            };
            let decision = route_query(prepared, table, &ctx);
            if decision.costs.bc_dfs_us <= decision.costs.join_us {
                CpuEngine::BcDfs
            } else {
                CpuEngine::Join
            }
        }
        None => CpuEngine::Naive,
    };
    let started = Instant::now();
    let (num_paths, paths) = run_cpu_engine(prepared, kind, &ticket.cancel, engine);
    let wall_millis = started.elapsed().as_secs_f64() * 1e3;
    if ticket.cancel.load(Ordering::Acquire) {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        if ticket.deadline_exceeded.load(Ordering::Acquire) {
            ticket.complete(Err(ticket.cancel_error()));
            return;
        }
    }
    record_engine(shared, engine.lane(), wall_millis);
    shared.counters.completed.fetch_add(1, Ordering::Relaxed);
    ticket.complete(Ok(QueryOutcome {
        request,
        num_paths,
        paths,
        preprocess_millis,
        transfer,
        // Host wall time of the CPU run: the fallback has no simulated device
        // phase, but the time still counts against deadlines and goodput.
        device_millis: wall_millis,
        cache_hit,
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_core::prepare_with;
    use pefp_graph::CsrGraph;

    fn diamond_runtime(config: RuntimeConfig) -> Arc<HostRuntime> {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        HostRuntime::launch(GraphHandle::from_csr("diamond", g), config)
    }

    fn diamond_snapshot() -> Arc<GraphSnapshot> {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        Arc::clone(VersionedGraph::from_csr(g).current())
    }

    #[test]
    fn queue_serves_sessions_round_robin_with_lpt_within() {
        let queue = AdmissionQueue::new(16);
        let snapshot = diamond_snapshot();
        let job = |session: SessionId, s: u32| Job {
            session,
            request: QueryRequest::new(s, 3, 3),
            kind: JobKind::Count,
            snapshot: Arc::clone(&snapshot),
            ticket: TicketInner::new(),
        };
        // Session 0 queues estimates [5, 9, 1]; session 1 queues [7, 7].
        queue.submit(job(0, 100), 5).unwrap();
        queue.submit(job(0, 101), 9).unwrap();
        queue.submit(job(0, 102), 1).unwrap();
        queue.submit(job(1, 200), 7).unwrap();
        queue.submit(job(1, 201), 7).unwrap();
        let order: Vec<(SessionId, u32)> =
            (0..5).map(|_| queue.pop().map(|j| (j.session, j.request.s.0)).unwrap()).collect();
        // Round-robin across sessions; LPT within each; FIFO on ties.
        assert_eq!(order, vec![(0, 101), (1, 200), (0, 100), (1, 201), (0, 102)]);
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn queue_is_bounded_and_rejects_instead_of_blocking() {
        let queue = AdmissionQueue::new(2);
        let snapshot = diamond_snapshot();
        let job = || Job {
            session: 0,
            request: QueryRequest::new(0, 3, 3),
            kind: JobKind::Count,
            snapshot: Arc::clone(&snapshot),
            ticket: TicketInner::new(),
        };
        queue.submit(job(), 1).unwrap();
        queue.submit(job(), 1).unwrap();
        assert!(matches!(queue.submit(job(), 1), Err(HostError::QueueFull)));
        // Group admission is all-or-nothing.
        queue.pop().unwrap();
        assert!(matches!(
            queue.submit_many(vec![(job(), 1), (job(), 1)]),
            Err(HostError::QueueFull)
        ));
        queue.submit(job(), 1).unwrap();
        assert_eq!(queue.depth(), 2);
    }

    #[test]
    fn cancelled_queued_jobs_free_their_queue_slots() {
        let queue = AdmissionQueue::new(2);
        let snapshot = diamond_snapshot();
        let job = || Job {
            session: 0,
            request: QueryRequest::new(0, 3, 3),
            kind: JobKind::Count,
            snapshot: Arc::clone(&snapshot),
            ticket: TicketInner::new(),
        };
        let dead_a = job();
        let dead_b = job();
        let (ticket_a, ticket_b) = (Arc::clone(&dead_a.ticket), Arc::clone(&dead_b.ticket));
        queue.submit(dead_a, 1).unwrap();
        queue.submit(dead_b, 1).unwrap();
        // Full of live jobs: refused.
        assert!(matches!(queue.submit(job(), 1), Err(HostError::QueueFull)));
        // Cancel both queued jobs; the next submission reclaims their slots.
        ticket_a.cancel.store(true, Ordering::Release);
        ticket_b.cancel.store(true, Ordering::Release);
        assert_eq!(queue.submit(job(), 1).unwrap(), 2, "two dead jobs pruned");
        assert_eq!(queue.depth(), 1);
        // The pruned tickets resolved as cancelled.
        assert!(matches!(ticket_a.slot.lock().unwrap().take(), Some(Err(HostError::Cancelled))));
        assert!(matches!(ticket_b.slot.lock().unwrap().take(), Some(Err(HostError::Cancelled))));
    }

    #[test]
    fn striped_cache_respects_total_capacity_and_counts_hits() {
        let cache = SharedPreparedCache::new(8, 4);
        assert_eq!(cache.shards.len(), 4);
        let g = Arc::new(CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
        let mut ctx = PrepareContext::new();
        for s in 0..2u32 {
            let req = QueryRequest::new(s, 3, 3);
            let prep = Arc::new(prepare_with(&mut ctx, &g, req.s, req.t, req.k, PefpVariant::Full));
            assert!(cache.get(&req).is_none());
            cache.insert(req, prep);
            assert!(cache.get(&req).is_some());
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits.load(Ordering::Relaxed), 2);
        assert_eq!(cache.misses.load(Ordering::Relaxed), 2);
        // Capacity 0 disables caching entirely, whatever the stripe count.
        let disabled = SharedPreparedCache::new(0, 8);
        assert_eq!(disabled.shards.len(), 1);
        let req = QueryRequest::new(0, 3, 3);
        let prep = Arc::new(prepare_with(&mut ctx, &g, req.s, req.t, req.k, PefpVariant::Full));
        disabled.insert(req, prep);
        assert_eq!(disabled.len(), 0);
    }

    #[test]
    fn runtime_serves_jobs_and_tracks_stats() {
        let runtime = diamond_runtime(RuntimeConfig::default());
        let session = runtime.register_session();
        let outcome = runtime
            .submit_query(session, QueryRequest::new(0, 3, 3), true)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert_eq!(outcome.paths.len(), 2);
        assert!(!outcome.cache_hit);
        let again = runtime
            .submit_query(session, QueryRequest::new(0, 3, 3), false)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(again.num_paths, 2);
        assert!(again.paths.is_empty(), "count jobs never materialise");
        assert!(again.cache_hit, "second submission hits the shared cache");
        let stats = runtime.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!((stats.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.per_cu_jobs, vec![2]);
        assert!(stats.virtual_makespan_cycles > 0);
        assert_eq!(
            stats.total_device_cycles, stats.virtual_makespan_cycles,
            "one session is serial"
        );
        assert_eq!(stats.per_cu_utilisation(), vec![1.0]);
    }

    #[test]
    fn updates_advance_the_epoch_and_refresh_touched_answers() {
        let runtime = diamond_runtime(RuntimeConfig::default());
        let session = runtime.register_session();
        let req = QueryRequest::new(0, 3, 3);
        let before = runtime.submit_query(session, req, false).unwrap().wait().unwrap();
        assert_eq!(before.num_paths, 2);
        assert_eq!(runtime.epoch(), 0);

        let mut delta = GraphDelta::new();
        delta.insert_edge(VertexId(0), VertexId(3));
        assert_eq!(runtime.apply_updates(&delta), 1);
        assert_eq!(runtime.epoch(), 1);

        let after = runtime.submit_query(session, req, false).unwrap().wait().unwrap();
        assert_eq!(after.num_paths, 3, "the direct edge 0->3 is a new path");
        assert!(!after.cache_hit, "the touched cache entry was evicted");
        let stats = runtime.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.graph_updates, 1);
        assert!(stats.cache_invalidated >= 1);

        // Removing the edge again restores the original answer.
        let mut undo = GraphDelta::new();
        undo.remove_edge(VertexId(0), VertexId(3));
        assert_eq!(runtime.apply_updates(&undo), 2);
        let restored = runtime.submit_query(session, req, false).unwrap().wait().unwrap();
        assert_eq!(restored.num_paths, 2);
    }

    #[test]
    fn inserts_can_grow_the_vertex_set_served_by_the_runtime() {
        let runtime = diamond_runtime(RuntimeConfig::default());
        let session = runtime.register_session();
        // Vertex 4 does not exist yet: rejected at validation.
        assert!(matches!(
            runtime.submit_query(session, QueryRequest::new(0, 4, 4), false),
            Err(HostError::QueryInvalid(_))
        ));
        let mut delta = GraphDelta::new();
        delta.insert_edge(VertexId(3), VertexId(4));
        runtime.apply_updates(&delta);
        let outcome = runtime
            .submit_query(session, QueryRequest::new(0, 4, 4), false)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(outcome.num_paths, 2, "0-1-3-4 and 0-2-3-4");
    }

    #[test]
    fn invalid_requests_are_rejected_at_submission() {
        let runtime = diamond_runtime(RuntimeConfig::default());
        let session = runtime.register_session();
        assert!(matches!(
            runtime.submit_query(session, QueryRequest::new(0, 99, 3), true),
            Err(HostError::QueryInvalid(_))
        ));
        assert_eq!(runtime.stats().rejected, 1);
        assert_eq!(runtime.stats().submitted, 0);
    }

    #[test]
    fn streaming_jobs_deliver_paths_through_the_channel() {
        let runtime = diamond_runtime(RuntimeConfig::default());
        let session = runtime.register_session();
        let (ticket, rx) =
            runtime.submit_query_streaming(session, QueryRequest::new(0, 3, 3), 16).unwrap();
        let paths: Vec<Vec<VertexId>> = rx.iter().collect();
        assert_eq!(paths.len(), 2);
        let outcome = ticket.wait().unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert!(outcome.paths.is_empty());
    }

    #[test]
    fn dropped_ticket_cancels_a_queued_job() {
        let runtime = diamond_runtime(RuntimeConfig::default());
        let session = runtime.register_session();
        // Wedge the single worker with an undrained streaming job so the next
        // submission stays queued.
        let (stream_ticket, rx) =
            runtime.submit_query_streaming(session, QueryRequest::new(0, 3, 3), 1).unwrap();
        let queued = runtime.submit_query(session, QueryRequest::new(0, 3, 2), false).unwrap();
        let inner = Arc::clone(&queued.inner);
        drop(queued); // cancels while (probably) still queued
        drop(rx); // unwedge the worker
        let outcome = stream_ticket.wait().unwrap();
        assert!(outcome.num_paths <= 2);
        // The cancelled job resolves (either skipped or run-to-completion if
        // the worker grabbed it before the drop landed).
        let mut slot = inner.slot.lock().unwrap();
        while slot.is_none() {
            slot = inner.done.wait(slot).unwrap();
        }
        let stats = runtime.stats();
        assert!(stats.completed + stats.cancelled_jobs >= 2);
    }

    #[test]
    fn batch_submission_collapses_duplicates_and_answers_every_slot() {
        let runtime = diamond_runtime(RuntimeConfig::default());
        let session = runtime.register_session();
        let reqs = vec![
            QueryRequest::new(0, 3, 3),
            QueryRequest::new(0, 3, 2),
            QueryRequest::new(0, 3, 3),
        ];
        let outcome = runtime.submit_batch(session, &reqs).unwrap().wait().unwrap();
        assert_eq!(outcome.results.len(), 3);
        assert_eq!(outcome.deduplicated, 1);
        assert_eq!(outcome.results[0].num_paths, 2);
        assert_eq!(outcome.results[1].num_paths, 2);
        assert_eq!(outcome.results[2].num_paths, 2);
        assert_eq!(outcome.total_paths(), 6);
        // An invalid member rejects the whole batch.
        assert!(matches!(
            runtime.submit_batch(session, &[QueryRequest::new(0, 99, 3)]),
            Err(HostError::QueryInvalid(_))
        ));
    }

    #[test]
    fn scripted_faults_retry_on_the_fleet_and_still_answer_correctly() {
        use pefp_fpga::{FaultKind, ScriptedFault};
        // Both CUs fault their first attempt: the job burns one fault per CU
        // (retry prefers the *other* CU), then succeeds on the third attempt
        // once the scripts are exhausted.
        let plan = FaultPlan::scripted(2);
        plan.push_script(0, ScriptedFault { after_ops: 0, kind: FaultKind::DramCorruption });
        plan.push_script(1, ScriptedFault { after_ops: 0, kind: FaultKind::DramCorruption });
        let config = RuntimeConfig {
            compute_units: 2,
            fault_plan: Some(Arc::clone(&plan)),
            ..RuntimeConfig::default()
        };
        let runtime = diamond_runtime(config);
        let session = runtime.register_session();
        let outcome = runtime
            .submit_query(session, QueryRequest::new(0, 3, 3), true)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(outcome.num_paths, 2, "retried answer matches the fault-free one");
        let stats = runtime.stats();
        assert_eq!(stats.device_faults, 2);
        assert_eq!(stats.fault_retries, 2);
        assert_eq!(stats.faults_injected, 2);
        assert_eq!(stats.cpu_fallbacks, 0);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn crashed_single_cu_is_quarantined_then_probed_back_in() {
        use pefp_fpga::{FaultKind, ScriptedFault};
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops: 0, kind: FaultKind::CuCrash });
        let config = RuntimeConfig {
            compute_units: 1,
            fault_plan: Some(Arc::clone(&plan)),
            fault_tolerance: FaultToleranceConfig {
                quarantine_after: 1,
                ..FaultToleranceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let runtime = diamond_runtime(config);
        let session = runtime.register_session();
        // Attempt 1 crash-latches CU 0 and trips its breaker; with no healthy
        // CU left the retry force-probes the quarantined CU, which repairs the
        // crash latch first — the fleet heals instead of deadlocking.
        let outcome = runtime
            .submit_query(session, QueryRequest::new(0, 3, 3), false)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(outcome.num_paths, 2);
        assert!(!plan.is_crashed(0), "the probe repaired the crash latch");
        let stats = runtime.stats();
        assert_eq!(stats.device_faults, 1);
        assert_eq!(stats.quarantine_events, 1);
        assert_eq!(stats.quarantined_cus, 0, "the successful probe closed the breaker");
        assert_eq!(stats.cpu_fallbacks, 0);
    }

    #[test]
    fn exhausted_retries_degrade_to_the_cpu_baseline() {
        // Every PCIe DMA faults: no device attempt can ever succeed, so after
        // the retry budget the job runs on the CPU baseline — same answer.
        let rates = pefp_fpga::FaultRates { pcie_error: 1.0, ..pefp_fpga::FaultRates::NONE };
        let config = RuntimeConfig {
            compute_units: 1,
            fault_plan: Some(FaultPlan::seeded(7, rates, 1)),
            fault_tolerance: FaultToleranceConfig {
                max_retries: 1,
                retry_backoff: Duration::ZERO,
                ..FaultToleranceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let runtime = diamond_runtime(config);
        let session = runtime.register_session();
        let outcome = runtime
            .submit_query(session, QueryRequest::new(0, 3, 3), true)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(outcome.num_paths, 2, "CPU fallback answers correctly");
        assert_eq!(outcome.paths.len(), 2);
        let stats = runtime.stats();
        assert_eq!(stats.cpu_fallbacks, 1);
        assert_eq!(stats.device_faults, 2, "initial attempt plus one retry both faulted");
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn disabled_fallback_surfaces_a_typed_device_fault() {
        use pefp_fpga::{FaultKind, ScriptedFault};
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops: 0, kind: FaultKind::PcieError });
        let config = RuntimeConfig {
            compute_units: 1,
            fault_plan: Some(plan),
            fault_tolerance: FaultToleranceConfig {
                max_retries: 0,
                cpu_fallback: false,
                ..FaultToleranceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let runtime = diamond_runtime(config);
        let session = runtime.register_session();
        let err = runtime
            .submit_query(session, QueryRequest::new(0, 3, 3), false)
            .unwrap()
            .wait()
            .unwrap_err();
        match err {
            HostError::DeviceFault { event, retries, .. } => {
                assert_eq!(event.kind, FaultKind::PcieError);
                assert_eq!(event.cu, 0);
                assert_eq!(retries, 0);
            }
            other => panic!("expected DeviceFault, got {other}"),
        }
    }

    #[test]
    fn deadline_watchdog_kills_an_overrunning_job() {
        let config = RuntimeConfig {
            default_deadline: Some(Duration::from_millis(40)),
            ..RuntimeConfig::default()
        };
        let runtime = diamond_runtime(config);
        let session = runtime.register_session();
        // A capacity-1 stream the client never drains: the second path wedges
        // the worker until the watchdog fires the deadline.
        let (ticket, rx) =
            runtime.submit_query_streaming(session, QueryRequest::new(0, 3, 3), 1).unwrap();
        let err = ticket.wait().unwrap_err();
        assert!(matches!(err, HostError::DeadlineExceeded { millis: 40 }), "{err}");
        drop(rx);
        let stats = runtime.stats();
        assert_eq!(stats.deadline_kills, 1);
        assert_eq!(stats.cancelled_jobs, 1);
        assert_eq!(stats.completed, 0);
    }

    #[test]
    fn router_places_tiny_queries_on_a_cpu_engine() {
        let config = RuntimeConfig {
            routing: Some(RoutingTable::builtin()),
            cpu_workers: 1,
            ..RuntimeConfig::default()
        };
        let runtime = diamond_runtime(config);
        let session = runtime.register_session();
        let outcome = runtime
            .submit_query(session, QueryRequest::new(0, 3, 3), true)
            .unwrap()
            .wait()
            .unwrap();
        // The tiny query skipped the device entirely: right answer, correctly
        // translated paths, and a zeroed transfer report.
        assert_eq!(outcome.num_paths, 2);
        let mut paths = outcome.paths.clone();
        paths.sort();
        assert_eq!(
            paths,
            vec![
                vec![VertexId(0), VertexId(1), VertexId(3)],
                vec![VertexId(0), VertexId(2), VertexId(3)],
            ]
        );
        assert_eq!(outcome.transfer.bytes, 0);
        assert_eq!(outcome.transfer.total_millis, 0.0);
        let stats = runtime.stats();
        assert_eq!(stats.cpu_routed, 1);
        assert_eq!(stats.completed, 1);
        let cpu_jobs: u64 =
            stats.engines.iter().filter(|l| l.engine != "device").map(|l| l.jobs).sum();
        assert_eq!(cpu_jobs, 1, "one CPU lane served the job: {:?}", stats.engines);
        assert_eq!(stats.engines[0].jobs, 0, "the device lane stayed idle");
        // Per-engine stats ride the STATS JSON.
        use pefp_workload::ToJson;
        let rendered = stats.to_json().render();
        assert!(rendered.contains("\"engines\"") && rendered.contains("\"bc_dfs\""), "{rendered}");
    }

    #[test]
    fn routed_and_device_answers_agree() {
        let g = pefp_graph::generators::chung_lu(200, 4.0, 2.2, 1).to_csr();
        let device_rt =
            HostRuntime::launch(GraphHandle::from_csr("cl", g.clone()), RuntimeConfig::default());
        let routed_rt = HostRuntime::launch(
            GraphHandle::from_csr("cl", g),
            RuntimeConfig { routing: Some(RoutingTable::builtin()), ..RuntimeConfig::default() },
        );
        let (ds, rs) = (device_rt.register_session(), routed_rt.register_session());
        for (s, t) in [(0u32, 7u32), (3, 11), (5, 50), (20, 4)] {
            let req = QueryRequest::new(s, t, 4);
            let device = device_rt.submit_query(ds, req, false).unwrap().wait().unwrap();
            let routed = routed_rt.submit_query(rs, req, false).unwrap().wait().unwrap();
            assert_eq!(device.num_paths, routed.num_paths, "query {s}->{t}");
        }
    }

    #[test]
    fn explain_reports_a_decision_without_running_jobs() {
        let runtime = diamond_runtime(RuntimeConfig::default());
        // Works without a configured table (the builtin one is consulted).
        let decision = runtime.explain(QueryRequest::new(0, 3, 3)).unwrap();
        assert!(decision.choice.is_cpu(), "a diamond query is CPU-cheap: {:?}", decision.choice);
        assert!(!decision.rationale.is_empty());
        let again = runtime.explain(QueryRequest::new(0, 3, 3)).unwrap();
        assert_eq!(decision.choice, again.choice);
        assert_eq!(decision.cost_estimate_us, again.cost_estimate_us);
        // EXPLAIN ran nothing and skewed nothing.
        let stats = runtime.stats();
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.completed, 0);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0, "peeks never count");
        // Invalid requests are rejected like submissions.
        assert!(runtime.explain(QueryRequest::new(0, 99, 3)).is_err());
    }

    #[test]
    fn degraded_jobs_use_the_routers_best_cpu_engine() {
        // Force every query to the device tier (work ceiling 0-ish) on a
        // device whose DMA always faults: with retries exhausted the job
        // degrades — through the router's cheaper CPU engine, not the naive
        // oracle.
        let mut table = RoutingTable::builtin();
        table.cpu_work_ceiling = 1e-9;
        let rates = pefp_fpga::FaultRates { pcie_error: 1.0, ..pefp_fpga::FaultRates::NONE };
        let config = RuntimeConfig {
            compute_units: 1,
            routing: Some(table),
            fault_plan: Some(FaultPlan::seeded(7, rates, 1)),
            fault_tolerance: FaultToleranceConfig {
                max_retries: 0,
                retry_backoff: Duration::ZERO,
                ..FaultToleranceConfig::default()
            },
            ..RuntimeConfig::default()
        };
        let runtime = diamond_runtime(config);
        let session = runtime.register_session();
        let outcome = runtime
            .submit_query(session, QueryRequest::new(0, 3, 3), true)
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(outcome.num_paths, 2, "degraded answer matches the fault-free one");
        let stats = runtime.stats();
        assert_eq!(stats.cpu_fallbacks, 1);
        assert_eq!(stats.cpu_routed, 0, "the router placed it on the device");
        let by_name = |name: &str| stats.engines.iter().find(|l| l.engine == name).unwrap().jobs;
        assert_eq!(by_name("naive"), 0, "the oracle stays the last resort");
        assert_eq!(by_name("bc_dfs") + by_name("join"), 1);
    }

    #[test]
    fn oversized_payloads_fail_through_the_ticket_and_stay_uncached() {
        let mut config = RuntimeConfig::default();
        config.device.dram_bytes = 64;
        let g = pefp_graph::generators::chung_lu(500, 6.0, 2.2, 3).to_csr();
        let runtime = HostRuntime::launch(GraphHandle::from_csr("big", g), config);
        let session = runtime.register_session();
        let err = runtime
            .submit_query(session, QueryRequest::new(0, 250, 5), false)
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, HostError::DeviceCapacity(_)));
        assert_eq!(runtime.cached_prepared_queries(), 0);
        assert_eq!(runtime.stats().rejected, 1);
    }
}
