//! Graph loading for the host session.
//!
//! Step 1 of the paper's workflow (Fig. 2): "the user first specifies the
//! graph file, then the host loads the corresponding graph data and stores it
//! in main memory". This module loads either a real edge-list file (in the
//! SNAP / KONECT / plain dialects understood by `pefp_graph::formats`) or one
//! of the synthetic dataset stand-ins from the catalog, normalises it to CSR
//! and keeps the light-weight metadata a session wants to report.

use crate::error::HostError;
use pefp_graph::formats::{read_graph_auto, LoadedGraph};
use pefp_graph::{CsrGraph, Dataset, GraphStats, PlacementPolicy, ScaleProfile};
use std::path::Path;
use std::sync::Arc;

/// A graph resident in host main memory, ready to serve queries.
///
/// Both CSR directions are shared (`Arc`), so sessions, schedulers and their
/// per-worker [`pefp_core::PrepareContext`]s reference one resident copy
/// instead of cloning graph arrays per component or per query.
#[derive(Debug, Clone)]
pub struct GraphHandle {
    /// Where the graph came from (file path, dataset code, or "inline").
    pub source: String,
    /// The CSR representation every algorithm runs on.
    pub csr: Arc<CsrGraph>,
    /// Reverse CSR, built once so each query's backward BFS does not pay for
    /// it again; wired into every `PrepareContext` serving this graph.
    pub reverse: Arc<CsrGraph>,
    /// Basic statistics (computed from a small BFS sample).
    pub stats: GraphStats,
    /// Number of duplicate edges dropped at load time (0 for generated data).
    pub duplicate_edges: usize,
    /// Number of self-loops dropped at load time (0 for generated data).
    pub self_loops: usize,
    /// DRAM bank layout every engine run over this graph plans its prepared
    /// subgraphs with (only observable under banked-charging devices; see
    /// [`pefp_graph::RowPlacement`]). Selected at load/snapshot time via
    /// [`GraphHandle::with_placement`]; defaults to the natural CSR order.
    pub placement: PlacementPolicy,
}

impl GraphHandle {
    /// Wraps an already-built CSR graph (used by tests, examples and the
    /// streaming layer, which maintains its own graph). Accepts either an
    /// owned graph or an existing shared handle.
    pub fn from_csr(source: impl Into<String>, csr: impl Into<Arc<CsrGraph>>) -> GraphHandle {
        let csr = csr.into();
        let reverse = Arc::new(csr.reverse());
        let stats = GraphStats::compute(&csr, 16);
        GraphHandle {
            source: source.into(),
            csr,
            reverse,
            stats,
            duplicate_edges: 0,
            self_loops: 0,
            placement: PlacementPolicy::Natural,
        }
    }

    /// Selects the DRAM bank layout for this graph's adjacency rows
    /// (builder style, so load sites can opt into bank-aware placement).
    pub fn with_placement(mut self, placement: PlacementPolicy) -> GraphHandle {
        self.placement = placement;
        self
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.csr.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.csr.num_edges()
    }

    /// One-line summary used in logs and session banners.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} vertices, {} edges, avg degree {:.2}",
            self.source,
            self.num_vertices(),
            self.num_edges(),
            self.stats.avg_degree
        )
    }
}

fn handle_from_loaded(source: String, loaded: LoadedGraph) -> GraphHandle {
    let mut handle = GraphHandle::from_csr(source, loaded.graph.to_csr());
    handle.duplicate_edges = loaded.duplicate_edges;
    handle.self_loops = loaded.self_loops;
    handle
}

/// Loads an edge-list file from disk, auto-detecting its dialect.
pub fn load_edge_list_file<P: AsRef<Path>>(path: P) -> Result<GraphHandle, HostError> {
    let path = path.as_ref();
    let content = std::fs::read_to_string(path)
        .map_err(|e| HostError::GraphLoad(format!("{}: {e}", path.display())))?;
    let loaded = read_graph_auto(&content)
        .map_err(|e| HostError::GraphLoad(format!("{}: {e}", path.display())))?;
    if loaded.graph.num_vertices() == 0 {
        return Err(HostError::GraphLoad(format!("{}: file contains no edges", path.display())));
    }
    Ok(handle_from_loaded(path.display().to_string(), loaded))
}

/// Loads a graph from an in-memory edge-list string (any dialect).
pub fn load_edge_list_str(name: &str, content: &str) -> Result<GraphHandle, HostError> {
    let loaded =
        read_graph_auto(content).map_err(|e| HostError::GraphLoad(format!("{name}: {e}")))?;
    if loaded.graph.num_vertices() == 0 {
        return Err(HostError::GraphLoad(format!("{name}: input contains no edges")));
    }
    Ok(handle_from_loaded(name.to_string(), loaded))
}

/// Generates one of the paper's dataset stand-ins at the given scale and
/// wraps it in a handle.
pub fn load_dataset(dataset: Dataset, profile: ScaleProfile) -> GraphHandle {
    let csr = dataset.generate(profile).to_csr();
    let mut handle = GraphHandle::from_csr(format!("dataset:{}", dataset.code()), csr);
    handle.stats = GraphStats::compute(&handle.csr, 32);
    handle
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_graph::VertexId;

    #[test]
    fn loads_a_snap_style_string() {
        let text = "# tiny\n0 1\n1 2\n2 3\n0 3\n";
        let handle = load_edge_list_str("tiny", text).unwrap();
        assert_eq!(handle.num_vertices(), 4);
        assert_eq!(handle.num_edges(), 4);
        assert_eq!(handle.duplicate_edges, 0);
        assert!(handle.summary().contains("tiny"));
        // Reverse graph is consistent.
        assert!(handle.reverse.has_edge(VertexId(1), VertexId(0)));
    }

    #[test]
    fn counts_dropped_duplicates_and_self_loops() {
        let text = "0 1\n0 1\n2 2\n1 2\n";
        let handle = load_edge_list_str("dups", text).unwrap();
        assert_eq!(handle.duplicate_edges, 1);
        assert_eq!(handle.self_loops, 1);
        assert_eq!(handle.num_edges(), 2);
    }

    #[test]
    fn empty_input_is_rejected() {
        let err = load_edge_list_str("empty", "").unwrap_err();
        assert!(matches!(err, HostError::GraphLoad(_)));
        let err = load_edge_list_str("comments-only", "# nothing\n").unwrap_err();
        assert!(matches!(err, HostError::GraphLoad(_)));
    }

    #[test]
    fn missing_file_is_reported_with_its_path() {
        let err = load_edge_list_file("/nonexistent/pefp-graph.txt").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("/nonexistent/pefp-graph.txt"));
    }

    #[test]
    fn file_round_trip_loads_back() {
        let dir = std::env::temp_dir().join("pefp_host_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "0 1\n1 2\n2 0\n").unwrap();
        let handle = load_edge_list_file(&path).unwrap();
        assert_eq!(handle.num_vertices(), 3);
        assert_eq!(handle.num_edges(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dataset_catalog_loads_and_reports_stats() {
        let handle = load_dataset(Dataset::Reactome, ScaleProfile::Tiny);
        assert!(handle.num_vertices() > 0);
        assert!(handle.num_edges() > 0);
        assert!(handle.stats.avg_degree > 0.0);
        assert!(handle.source.contains("RT"));
    }

    #[test]
    fn from_csr_builds_a_consistent_reverse_graph() {
        let csr = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let handle = GraphHandle::from_csr("inline", csr);
        assert_eq!(handle.reverse.num_edges(), 2);
        assert!(handle.reverse.has_edge(VertexId(2), VertexId(1)));
    }
}
