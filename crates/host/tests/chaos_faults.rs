//! Seeded chaos suite for the fault-tolerance layer.
//!
//! Every test compares answers produced under injected faults against a
//! fault-free oracle run: after retries, quarantine probes and CPU
//! degradation, the path set of every query must be *identical* — no path
//! dropped, none duplicated — and the runtime must keep making progress even
//! when every compute unit is crash-looping.
//!
//! The seed matrix is deterministic (the fault plan is a pure function of the
//! seed) and can be widened without code changes via the `PEFP_CHAOS_SEEDS`
//! environment variable, e.g. `PEFP_CHAOS_SEEDS=1,2,3,4,5,6,7,8`.

use pefp_fpga::{FaultKind, FaultPlan, FaultRates, ScriptedFault};
use pefp_graph::generators::{chung_lu, layered_dag, layered_sink, layered_source};
use pefp_graph::paths::Path;
use pefp_graph::CsrGraph;
use pefp_host::{
    FaultToleranceConfig, GraphHandle, HostError, HostRuntime, QueryRequest, RuntimeConfig,
};
use std::sync::Arc;
use std::time::Duration;

fn chaos_graph() -> CsrGraph {
    chung_lu(300, 5.0, 2.3, 11).to_csr()
}

fn chaos_queries() -> Vec<QueryRequest> {
    vec![
        QueryRequest::new(0, 50, 4),
        QueryRequest::new(10, 200, 5),
        QueryRequest::new(3, 7, 6),
        QueryRequest::new(100, 250, 4),
        QueryRequest::new(42, 99, 5),
    ]
}

fn seeds() -> Vec<u64> {
    match std::env::var("PEFP_CHAOS_SEEDS") {
        Ok(spec) => spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().expect("PEFP_CHAOS_SEEDS must be a comma-separated u64 list"))
            .collect(),
        Err(_) => vec![1, 2, 3],
    }
}

/// Sorted (NOT deduplicated) path list: equality against the oracle proves
/// both "no path dropped" and "no path duplicated" at once.
fn sorted_paths(mut paths: Vec<Path>) -> Vec<Path> {
    paths.sort();
    paths
}

fn run_all(runtime: &HostRuntime, queries: &[QueryRequest]) -> Vec<Vec<Path>> {
    let session = runtime.register_session();
    queries
        .iter()
        .map(|&req| {
            let outcome = runtime
                .submit_query(session, req, true)
                .expect("submission accepted")
                .wait()
                .expect("job completes despite faults");
            assert_eq!(
                outcome.num_paths,
                outcome.paths.len() as u64,
                "collected jobs materialise exactly what they count"
            );
            sorted_paths(outcome.paths)
        })
        .collect()
}

fn oracle(graph: &CsrGraph, queries: &[QueryRequest]) -> Vec<Vec<Path>> {
    let runtime = HostRuntime::launch(
        GraphHandle::from_csr("oracle", graph.clone()),
        RuntimeConfig { compute_units: 2, ..RuntimeConfig::default() },
    );
    run_all(&runtime, queries)
}

fn chaos_tolerance() -> FaultToleranceConfig {
    FaultToleranceConfig {
        retry_backoff: Duration::ZERO,
        // Generous budget: real queries on the chaos graph finish far below
        // it, while a 100M-cycle injected stall trips the hang detector.
        watchdog_cycle_budget: Some(50_000_000),
        ..FaultToleranceConfig::default()
    }
}

#[test]
fn seeded_fault_matrix_preserves_every_answer() {
    let graph = chaos_graph();
    let queries = chaos_queries();
    let expected = oracle(&graph, &queries);
    let mixes: Vec<(&str, FaultRates)> = vec![
        (
            "light",
            FaultRates {
                dram_corruption: 0.002,
                pcie_error: 0.02,
                cu_stall: 0.002,
                stall_cycles: 5_000,
                cu_crash: 0.001,
            },
        ),
        ("dram-heavy", FaultRates { dram_corruption: 0.02, ..FaultRates::NONE }),
        ("pcie-heavy", FaultRates { pcie_error: 0.3, ..FaultRates::NONE }),
        (
            "hang-prone",
            FaultRates {
                cu_stall: 0.005,
                stall_cycles: 100_000_000, // beyond the watchdog budget: a hang
                ..FaultRates::NONE
            },
        ),
        ("crash-prone", FaultRates { cu_crash: 0.01, ..FaultRates::NONE }),
    ];
    for seed in seeds() {
        for (name, rates) in &mixes {
            let runtime = HostRuntime::launch(
                GraphHandle::from_csr("chaos", graph.clone()),
                RuntimeConfig {
                    compute_units: 2,
                    fault_plan: Some(FaultPlan::seeded(seed, *rates, 2)),
                    fault_tolerance: chaos_tolerance(),
                    ..RuntimeConfig::default()
                },
            );
            let got = run_all(&runtime, &queries);
            for (i, (got, expected)) in got.iter().zip(&expected).enumerate() {
                assert_eq!(
                    got, expected,
                    "seed {seed} mix {name} query {i}: path set diverged from fault-free oracle"
                );
            }
        }
    }
}

#[test]
fn crash_storm_degrades_to_cpu_without_deadlocking() {
    let graph = chaos_graph();
    let queries = chaos_queries();
    let expected = oracle(&graph, &queries);
    // Every transfer kills its CU: no device attempt can ever finish, every
    // CU ends up quarantined, and every job must flow through the CPU
    // fallback — with the *same* answers and without wedging the fleet.
    let rates = FaultRates { cu_crash: 1.0, ..FaultRates::NONE };
    let runtime = HostRuntime::launch(
        GraphHandle::from_csr("storm", graph.clone()),
        RuntimeConfig {
            compute_units: 2,
            fault_plan: Some(FaultPlan::seeded(99, rates, 2)),
            fault_tolerance: FaultToleranceConfig {
                max_retries: 1,
                retry_backoff: Duration::ZERO,
                quarantine_after: 1,
                ..FaultToleranceConfig::default()
            },
            ..RuntimeConfig::default()
        },
    );
    let got = run_all(&runtime, &queries);
    assert_eq!(got, expected, "CPU-degraded answers match the oracle");
    let stats = runtime.stats();
    assert_eq!(stats.cpu_fallbacks, queries.len() as u64, "every job degraded");
    assert!(stats.quarantine_events >= 1, "the breaker opened at least once");
    assert_eq!(stats.completed, queries.len() as u64);
}

#[test]
fn pre_emission_stream_fault_replays_silently() {
    let graph = chaos_graph();
    let query = QueryRequest::new(10, 200, 5);
    let expected = oracle(&graph, &[query]).remove(0);
    // Both CUs fault before their first path leaves the device: the stream
    // replays transparently and the client sees exactly one copy of each path.
    let plan = FaultPlan::scripted(2);
    plan.push_script(0, ScriptedFault { after_ops: 0, kind: FaultKind::DramCorruption });
    plan.push_script(1, ScriptedFault { after_ops: 0, kind: FaultKind::DramCorruption });
    let runtime = HostRuntime::launch(
        GraphHandle::from_csr("replay", graph.clone()),
        RuntimeConfig {
            compute_units: 2,
            fault_plan: Some(Arc::clone(&plan)),
            fault_tolerance: chaos_tolerance(),
            ..RuntimeConfig::default()
        },
    );
    let session = runtime.register_session();
    let (ticket, rx) = runtime
        .submit_query_streaming(session, query, expected.len() + 8)
        .expect("stream accepted");
    let received = sorted_paths(rx.iter().collect());
    let outcome = ticket.wait().expect("replayed stream completes");
    assert_eq!(received, expected, "no dropped or duplicated paths across the replay");
    assert_eq!(outcome.num_paths, expected.len() as u64);
    let stats = runtime.stats();
    assert!(stats.device_faults >= 1, "the scripted fault fired");
    assert_eq!(stats.fault_after_emit, 0, "nothing was emitted before the fault");
}

#[test]
fn post_emission_stream_fault_surfaces_instead_of_duplicating() {
    // A layered DAG gives a long, many-path stream so a mid-run fault lands
    // after some paths were already delivered. The exact transfer count at
    // which emission starts depends on the cycle model, so scan `after_ops`
    // until one fault lands post-emission — deterministically, since scripts
    // and the engine are.
    let graph = layered_dag(4, 4, 3, 7).to_csr();
    let query = QueryRequest::new(layered_source().0, layered_sink(4, 4).0, 5);
    let expected = oracle(&graph, &[query]).remove(0);
    assert!(expected.len() > 4, "needs a stream long enough to interrupt");
    let mut surfaced = None;
    for after_ops in 0..64 {
        let plan = FaultPlan::scripted(1);
        plan.push_script(0, ScriptedFault { after_ops, kind: FaultKind::DramCorruption });
        let runtime = HostRuntime::launch(
            GraphHandle::from_csr("emit", graph.clone()),
            RuntimeConfig {
                compute_units: 1,
                fault_plan: Some(plan),
                fault_tolerance: chaos_tolerance(),
                ..RuntimeConfig::default()
            },
        );
        let session = runtime.register_session();
        let (ticket, rx) = runtime
            .submit_query_streaming(session, query, expected.len() + 8)
            .expect("stream accepted");
        let received = sorted_paths(rx.iter().collect());
        match ticket.wait() {
            Ok(outcome) => {
                // Fault hit before emission (silent replay) or after the last
                // batch (harmless): full correct stream either way.
                assert_eq!(received, expected);
                assert_eq!(outcome.num_paths, expected.len() as u64);
            }
            Err(HostError::FaultAfterEmit { emitted, .. }) => {
                assert!(emitted > 0);
                assert_eq!(
                    received.len() as u64,
                    emitted,
                    "the client saw exactly the paths the runtime acknowledged"
                );
                // The prefix is clean: every delivered path is a real answer,
                // delivered once.
                let mut dedup = received.clone();
                dedup.dedup();
                assert_eq!(dedup.len(), received.len(), "no duplicates in the prefix");
                for path in &received {
                    assert!(expected.contains(path), "delivered path is a true answer");
                }
                assert_eq!(runtime.stats().fault_after_emit, 1);
                surfaced = Some((after_ops, emitted));
                break;
            }
            Err(other) => panic!("unexpected error at after_ops={after_ops}: {other}"),
        }
    }
    let (after_ops, emitted) =
        surfaced.expect("some scripted offset faults after emission started");
    assert!(after_ops > 0 || emitted > 0);
}

#[test]
fn deadlines_still_fire_under_fault_pressure() {
    let graph = chaos_graph();
    // Every PCIe transfer faults and the fallback is disabled: without a
    // deadline the job would burn its whole retry budget; the watchdog must
    // still be able to kill it cleanly while it churns.
    let rates = FaultRates { pcie_error: 1.0, ..FaultRates::NONE };
    let runtime = HostRuntime::launch(
        GraphHandle::from_csr("deadline", graph.clone()),
        RuntimeConfig {
            compute_units: 1,
            fault_plan: Some(FaultPlan::seeded(5, rates, 1)),
            fault_tolerance: FaultToleranceConfig {
                max_retries: 1_000,
                retry_backoff: Duration::from_millis(5),
                cpu_fallback: false,
                ..FaultToleranceConfig::default()
            },
            ..RuntimeConfig::default()
        },
    );
    let session = runtime.register_session();
    let err = runtime
        .submit_query_with_deadline(
            session,
            QueryRequest::new(10, 200, 5),
            true,
            Duration::from_millis(60),
        )
        .expect("submission accepted")
        .wait()
        .expect_err("the deadline kills the retry loop");
    assert!(matches!(err, HostError::DeadlineExceeded { millis: 60 }), "{err}");
    assert_eq!(runtime.stats().deadline_kills, 1);
}
