//! Property tests for the charged DRAM banking extension and the bank-aware
//! row placement pass.
//!
//! Two invariants, checked over seeded random Chung-Lu workloads:
//!
//! 1. **Charging only adds time.** Bank-conflict/turnaround charging is a
//!    pure stall on top of the base cost model — the charged serial total
//!    and makespan can never drop below the uncharged run, and the gap is
//!    exactly the metered conflict + turnaround cycles. (The complementary
//!    equality case — zero conflicts and zero turnarounds charge nothing —
//!    is pinned at the device level in `pefp-fpga`'s unit tests.)
//! 2. **Placement never changes the answer.** The row placement policy
//!    relocates adjacency rows in simulated DRAM; it must be invisible to
//!    enumeration. Natural and bank-aware runs must stream byte-identical
//!    path sets (sorted, NOT deduplicated — equality proves both "no path
//!    dropped" and "no path duplicated" at once).

use pefp_core::PefpVariant;
use pefp_fpga::MultiCuConfig;
use pefp_graph::generators::chung_lu;
use pefp_graph::PlacementPolicy;
use pefp_host::{BatchScheduler, GraphHandle, QueryRequest, SchedulerConfig};
use std::ops::ControlFlow;

/// Fixed seed pool: small enough to keep the suite quick, varied enough to
/// hit different hub structures (and with them different conflict patterns).
const SEEDS: [u64; 3] = [3, 11, 29];

/// Every ordered pair of the 6 heaviest hubs (the Chung-Lu generator gives
/// the lowest ids the highest degrees) — the hub-heavy shape where row
/// placement actually matters.
fn hub_batch(k: u32) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for s in 0..6u32 {
        for t in 0..6u32 {
            if s != t {
                requests.push(QueryRequest::new(s, t, k));
            }
        }
    }
    requests
}

/// Dispatch-mode scheduler with BRAM graph caching off (rows stream from
/// DRAM) so the bank model sees every adjacency fetch.
fn nocache_scheduler(cus: usize, charge_banked: bool) -> BatchScheduler {
    BatchScheduler::new(SchedulerConfig {
        dispatch: true,
        variant: PefpVariant::NoCache,
        multi_cu: MultiCuConfig { compute_units: cus, charge_banked, ..MultiCuConfig::default() },
        ..SchedulerConfig::default()
    })
}

#[test]
fn charged_makespan_never_drops_below_uncharged() {
    for seed in SEEDS {
        let graph = chung_lu(400, 6.0, 2.2, seed).to_csr();
        let handle = GraphHandle::from_csr("prop", graph);
        let requests = hub_batch(5);

        // One CU: a single worker drains the queue serially, so the measured
        // makespan is deterministic and directly comparable across runs.
        let free = nocache_scheduler(1, false).run_batch(&handle, &requests).expect("uncharged");
        let charged = nocache_scheduler(1, true).run_batch(&handle, &requests).expect("charged");

        let free_measured = free.measured.as_ref().expect("dispatch is measured");
        let charged_measured = charged.measured.as_ref().expect("dispatch is measured");
        let stall: u64 = charged_measured.per_cu_bank_conflict_cycles.iter().sum::<u64>()
            + charged_measured.per_cu_turnaround_cycles.iter().sum::<u64>();
        assert!(
            stall > 0,
            "seed {seed}: the hub batch must exercise the bank model, \
             or the property is vacuous"
        );
        // The charged clock is the uncharged clock plus exactly the metered
        // banked stall — charging can never discount a cycle.
        assert_eq!(
            charged_measured.makespan_cycles,
            free_measured.makespan_cycles + stall,
            "seed {seed}: charged single-CU makespan must exceed uncharged \
             by the metered conflict + turnaround cycles"
        );

        // Multi-CU: the measured greedy makespan is wall-clock dependent,
        // but the LPT model over the measured workloads is deterministic —
        // charging adds per-query stall, so the modelled makespan and the
        // serial total are monotone in it.
        let free2 = nocache_scheduler(2, false).run_batch(&handle, &requests).expect("uncharged");
        let charged2 = nocache_scheduler(2, true).run_batch(&handle, &requests).expect("charged");
        let free2_predicted = &free2.measured.as_ref().expect("measured").predicted;
        let charged2_predicted = &charged2.measured.as_ref().expect("measured").predicted;
        assert!(
            charged2_predicted.makespan_cycles >= free2_predicted.makespan_cycles,
            "seed {seed}: charged LPT makespan fell below uncharged"
        );
        assert!(
            charged2_predicted.serial_cycles >= free2_predicted.serial_cycles,
            "seed {seed}: charged serial total fell below uncharged"
        );
    }
}

/// One streamed result path, tagged with the `(s, t)` query that produced it.
type TaggedPath = (u32, u32, Vec<u32>);

/// Collects every streamed path under the given placement, tagged with its
/// query, then sorts: the full multiset of answers in canonical order.
fn sorted_paths(
    handle: &GraphHandle,
    requests: &[QueryRequest],
    cus: usize,
) -> (Vec<TaggedPath>, Vec<u64>) {
    let scheduler = nocache_scheduler(cus, true);
    let mut paths: Vec<(u32, u32, Vec<u32>)> = Vec::new();
    let outcome = scheduler
        .run_batch_dispatch_streaming(handle, requests, |req, path| {
            paths.push((req.s.0, req.t.0, path.iter().map(|v| v.0).collect()));
            ControlFlow::Continue(())
        })
        .expect("charged batch");
    paths.sort();
    let counts = outcome.results.iter().map(|r| r.num_paths).collect();
    (paths, counts)
}

#[test]
fn enumeration_is_byte_identical_under_any_placement() {
    for seed in SEEDS {
        let graph = chung_lu(300, 6.0, 2.2, seed).to_csr();
        let requests = hub_batch(5);
        let natural =
            GraphHandle::from_csr("nat", graph.clone()).with_placement(PlacementPolicy::Natural);
        let aware =
            GraphHandle::from_csr("aware", graph).with_placement(PlacementPolicy::BankAware);

        for cus in [1usize, 2] {
            let (nat_paths, nat_counts) = sorted_paths(&natural, &requests, cus);
            let (aware_paths, aware_counts) = sorted_paths(&aware, &requests, cus);
            assert!(
                !nat_paths.is_empty(),
                "seed {seed}: the batch must produce paths, or the property is vacuous"
            );
            assert_eq!(
                nat_counts, aware_counts,
                "seed {seed} cus {cus}: per-query path counts diverged under placement"
            );
            assert_eq!(
                nat_paths, aware_paths,
                "seed {seed} cus {cus}: path sets diverged under placement"
            );
        }
    }
}
