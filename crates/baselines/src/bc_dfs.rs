//! BC-DFS: barrier-based DFS with "learning from mistakes" pruning.
//!
//! BC-DFS is the core pruning primitive of the JOIN algorithm (Peng et al.,
//! VLDB 2019), described in Section III-B of the PEFP paper and illustrated in
//! its Fig. 1. Every vertex `u` carries a *barrier* `bar[u]`, a lower bound on
//! the number of hops any path must still spend to reach the target after
//! entering `u`:
//!
//! * the barrier is initialised to `sd(u, t)` (shortest distance to the
//!   target, from a reverse k-hop BFS);
//! * a successor `u` of the current stack `S` is only explored when
//!   `len(S) + 1 + bar[u] <= k`;
//! * when the search below `u` (entered with `len(S)` hops used) produces no
//!   result, the algorithm learned that `k - len(S)` remaining hops are not
//!   enough, so it raises the barrier to `k + 1 - len(S)` — "never fall in the
//!   same trap twice".
//!
//! The learned barriers are sound lower bounds, so no valid path is pruned.

use pefp_graph::bfs::{khop_bfs, UNREACHED};
use pefp_graph::paths::Path;
use pefp_graph::sink::{CollectSink, PathSink};
use pefp_graph::{CsrGraph, VertexId};
use std::ops::ControlFlow;

/// Reusable BC-DFS searcher holding the barrier array for one `(graph, t, k)`
/// combination.
///
/// JOIN runs BC-DFS several times against the same target (once per middle
/// vertex side); keeping the learned barriers between runs is both faithful to
/// the original design and a significant optimisation.
#[derive(Debug, Clone)]
pub struct BcDfs {
    /// `bar[u]`: lower bound on the hops needed from `u` to the target.
    bar: Vec<u32>,
    /// Hop constraint the barriers were learned under.
    k: u32,
    /// Number of vertices pruned by the barrier check (for reports).
    pub pruned: u64,
    /// Number of vertices expanded (for reports).
    pub expanded: u64,
}

impl BcDfs {
    /// Prepares a searcher for queries towards `t` with hop constraint `k`:
    /// runs the k-hop reverse BFS that seeds the barrier array.
    pub fn new(g: &CsrGraph, t: VertexId, k: u32) -> Self {
        let rev = g.reverse();
        let mut bar = khop_bfs(&rev, t, k);
        for b in &mut bar {
            if *b == UNREACHED {
                *b = k + 1;
            }
        }
        BcDfs { bar, k, pruned: 0, expanded: 0 }
    }

    /// Prepares a searcher with an externally supplied barrier array
    /// (`bar[u] = sd(u, t)`, with `k + 1` for unreachable vertices).
    pub fn with_barrier(bar: Vec<u32>, k: u32) -> Self {
        BcDfs { bar, k, pruned: 0, expanded: 0 }
    }

    /// Current barrier of `u`.
    pub fn barrier(&self, u: VertexId) -> u32 {
        self.bar[u.index()]
    }

    /// Enumerates all simple paths from `s` to `t` with at most `max_hops`
    /// hops (`max_hops <= k`), using and updating the learned barriers.
    pub fn enumerate(
        &mut self,
        g: &CsrGraph,
        s: VertexId,
        t: VertexId,
        max_hops: u32,
    ) -> Vec<Path> {
        let mut sink = CollectSink::new();
        let _ = self.enumerate_into(g, s, t, max_hops, &mut sink);
        sink.into_paths()
    }

    /// Streams all simple paths from `s` to `t` with at most `max_hops` hops
    /// into `sink`, using and updating the learned barriers.
    ///
    /// Returns [`ControlFlow::Break`] when the sink stopped the enumeration
    /// early. An aborted subtree is *not* treated as a learning opportunity:
    /// its exploration was cut short, so "no path found below" would be a lie
    /// and raising a barrier from it could prune valid paths in later runs on
    /// the same searcher.
    pub fn enumerate_into<S: PathSink + ?Sized>(
        &mut self,
        g: &CsrGraph,
        s: VertexId,
        t: VertexId,
        max_hops: u32,
        sink: &mut S,
    ) -> ControlFlow<()> {
        assert!(max_hops <= self.k, "max_hops {} exceeds the preprocessed k {}", max_hops, self.k);
        if s.index() >= g.num_vertices() || t.index() >= g.num_vertices() {
            return ControlFlow::Continue(());
        }
        if s == t {
            return sink.emit(&[s]);
        }
        // The source itself must be able to reach t within the budget.
        if self.bar[s.index()] > max_hops {
            self.pruned += 1;
            return ControlFlow::Continue(());
        }
        let mut stack = vec![s];
        let mut on_path = vec![false; g.num_vertices()];
        on_path[s.index()] = true;
        let (_, _, aborted) = self.search(g, t, max_hops, &mut stack, &mut on_path, sink);
        if aborted {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }

    /// Recursive search.
    ///
    /// Returns `(found_any, conflicted, aborted)` for the subtree rooted at
    /// the current stack top: `found_any` is `true` when at least one result
    /// path was produced, `conflicted` is `true` when some branch was cut
    /// because a successor was already on the current stack, and `aborted` is
    /// `true` when the sink broke the enumeration. A barrier may only be
    /// raised for a failed subtree that is *not* conflicted and *not* aborted
    /// — otherwise the failure could be caused by the particular prefix on
    /// the stack (or by the early stop) rather than by the remaining hop
    /// budget, and raising the barrier would prune valid paths reached
    /// through other prefixes.
    fn search<S: PathSink + ?Sized>(
        &mut self,
        g: &CsrGraph,
        t: VertexId,
        max_hops: u32,
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        sink: &mut S,
    ) -> (bool, bool, bool) {
        let current = *stack.last().expect("stack never empty");
        let hops = (stack.len() - 1) as u32;
        self.expanded += 1;
        let mut found_any = false;
        let mut conflicted = false;
        for &next in g.successors(current) {
            if next == t {
                let mut path = stack.clone();
                path.push(t);
                found_any = true;
                if sink.emit(&path).is_break() {
                    return (found_any, conflicted, true);
                }
                continue;
            }
            if on_path[next.index()] {
                conflicted = true;
                continue;
            }
            // Barrier check: entering `next` uses one hop, then at least
            // bar[next] more hops are needed.
            if hops + 1 + self.bar[next.index()] > max_hops {
                self.pruned += 1;
                continue;
            }
            stack.push(next);
            on_path[next.index()] = true;
            let (found_below, conflict_below, aborted_below) =
                self.search(g, t, max_hops, stack, on_path, sink);
            stack.pop();
            on_path[next.index()] = false;
            if found_below {
                found_any = true;
            }
            if aborted_below {
                return (found_any, conflicted | conflict_below, true);
            }
            if !found_below && !conflict_below {
                // Learning from the mistake: `max_hops - (hops + 1)` remaining
                // hops were provably not enough below `next` (independently of
                // the current prefix), so any future visit needs a strictly
                // larger budget.
                let learned = max_hops.saturating_sub(hops + 1) + 1;
                let slot = &mut self.bar[next.index()];
                if learned > *slot {
                    *slot = learned;
                }
            }
            conflicted |= conflict_below;
        }
        (found_any, conflicted, false)
    }
}

/// One-shot streaming wrapper: builds a [`BcDfs`] and streams a single
/// query's result paths into `sink`. Returns [`ControlFlow::Break`] when the
/// sink stopped the enumeration early.
pub fn bc_dfs_stream<S: PathSink + ?Sized>(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    sink: &mut S,
) -> ControlFlow<()> {
    BcDfs::new(g, t, k).enumerate_into(g, s, t, k, sink)
}

/// One-shot convenience wrapper: builds a [`BcDfs`] and runs a single query.
pub fn bc_dfs_enumerate(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<Path> {
    BcDfs::new(g, t, k).enumerate(g, s, t, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dfs_enumerate;
    use pefp_graph::generators::{chung_lu, layered_dag, layered_sink, layered_source};
    use pefp_graph::paths::canonicalize;

    #[test]
    fn matches_naive_on_a_diamond() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let a = canonicalize(bc_dfs_enumerate(&g, VertexId(0), VertexId(3), 3));
        let b = canonicalize(naive_dfs_enumerate(&g, VertexId(0), VertexId(3), 3));
        assert_eq!(a, b);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..4u64 {
            let g = chung_lu(90, 4.0, 2.2, seed).to_csr();
            for &(s, t, k) in &[(0u32, 7u32, 4u32), (1, 50, 5), (5, 6, 6)] {
                let a = canonicalize(bc_dfs_enumerate(&g, VertexId(s), VertexId(t), k));
                let b = canonicalize(naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k));
                assert_eq!(a, b, "mismatch seed {seed} query ({s},{t},{k})");
            }
        }
    }

    #[test]
    fn trap_example_from_the_paper_is_pruned() {
        // Reconstruct the spirit of Fig. 1: a long tail that cannot reach t
        // within the budget, entered from many sibling branches.
        let mut edges = vec![(0u32, 1u32), (1, 2)];
        // u2 (=2) leads into a chain of 10 vertices that never reaches t.
        for i in 0..10u32 {
            edges.push((2 + i, 3 + i));
        }
        // siblings u3..u100 (= 20..40) all also point into the trap entrance 2.
        for i in 20..40u32 {
            edges.push((1, i));
            edges.push((i, 2));
        }
        // a real path: 1 -> 50 -> 51 -> t(=60)
        edges.push((1, 50));
        edges.push((50, 51));
        edges.push((51, 60));
        let g = CsrGraph::from_edges(61, &edges);
        let k = 7;
        let mut searcher = BcDfs::new(&g, VertexId(60), k);
        let results = searcher.enumerate(&g, VertexId(0), VertexId(60), k);
        assert_eq!(results.len(), 1);
        // The trap vertices behind 2 are never reachable to t, so the initial
        // reverse BFS already assigns them barrier k+1 and they are pruned.
        assert!(searcher.pruned > 0);
    }

    #[test]
    fn learned_barriers_increase_monotonically() {
        // A graph where vertex 2 can reach t but only via a path longer than
        // the remaining budget when entered deep in the search.
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 2), (5, 6)]);
        let t = VertexId(6);
        let mut searcher = BcDfs::new(&g, t, 4);
        let before = searcher.barrier(VertexId(2));
        let _ = searcher.enumerate(&g, VertexId(0), t, 4);
        assert!(searcher.barrier(VertexId(2)) >= before);
    }

    #[test]
    fn layered_dag_count_is_exact() {
        let g = layered_dag(3, 4, 4, 2).to_csr();
        let r = bc_dfs_enumerate(&g, layered_source(), layered_sink(3, 4), 4);
        assert_eq!(r.len(), 64);
    }

    #[test]
    fn unreachable_source_is_pruned_immediately() {
        let g = CsrGraph::from_edges(4, &[(1, 2), (2, 3)]);
        let mut searcher = BcDfs::new(&g, VertexId(3), 5);
        assert!(searcher.enumerate(&g, VertexId(0), VertexId(3), 5).is_empty());
        assert_eq!(searcher.expanded, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds the preprocessed k")]
    fn larger_query_than_preprocessing_panics() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        BcDfs::new(&g, VertexId(1), 2).enumerate(&g, VertexId(0), VertexId(1), 3);
    }

    #[test]
    fn streaming_matches_collected_enumeration() {
        let g = chung_lu(90, 4.0, 2.2, 7).to_csr();
        for &(s, t, k) in &[(0u32, 7u32, 4u32), (1, 50, 5), (5, 6, 6)] {
            let mut sink = CollectSink::new();
            let flow = bc_dfs_stream(&g, VertexId(s), VertexId(t), k, &mut sink);
            assert_eq!(flow, ControlFlow::Continue(()));
            let expected = canonicalize(bc_dfs_enumerate(&g, VertexId(s), VertexId(t), k));
            assert_eq!(canonicalize(sink.into_paths()), expected);
        }
    }

    #[test]
    fn early_stop_does_not_poison_barriers() {
        use pefp_graph::sink::FirstN;
        // Diamond: two paths 0->1->3 and 0->2->3. Stop after the first one,
        // then re-run the same searcher to completion: the aborted subtree
        // must not have raised any barrier that hides the second path.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut searcher = BcDfs::new(&g, VertexId(3), 3);
        let mut sink = FirstN::new(1, CollectSink::new());
        let flow = searcher.enumerate_into(&g, VertexId(0), VertexId(3), 3, &mut sink);
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(sink.emitted(), 1);
        let full = searcher.enumerate(&g, VertexId(0), VertexId(3), 3);
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn smaller_max_hops_than_k_is_respected() {
        let g = CsrGraph::from_edges(4, &[(0, 3), (0, 1), (1, 2), (2, 3)]);
        let mut searcher = BcDfs::new(&g, VertexId(3), 5);
        assert_eq!(searcher.enumerate(&g, VertexId(0), VertexId(3), 1).len(), 1);
        assert_eq!(searcher.enumerate(&g, VertexId(0), VertexId(3), 5).len(), 2);
    }
}
