//! Yen's k-shortest loopless paths, adapted to hop-constrained enumeration.
//!
//! Section II-B of the paper sketches (and dismisses) a naive reduction: keep
//! asking a top-k' shortest *simple* path algorithm for the next shortest
//! path and stop as soon as the returned path is longer than the hop
//! constraint `k`. Because every s-t k-path must eventually be produced in
//! non-decreasing length order, the reduction is correct — it is just not
//! competitive, since the ranking machinery (spur paths, a candidate heap,
//! repeated shortest-path probes on edge-restricted graphs) does a lot of
//! work the problem never asked for. The reproduction implements it anyway:
//! it is an independent oracle for correctness tests and lets the benches
//! quantify exactly how uncompetitive the reduction is.
//!
//! Distances here are hop counts (every edge has weight 1), so the inner
//! shortest-path probe is a plain BFS.

use pefp_graph::{CsrGraph, Path, VertexId};
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// A candidate path ordered by (length, lexicographic vertex sequence) so the
/// heap pops a deterministic shortest candidate first.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Candidate {
    path: Vec<VertexId>,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so shorter paths pop first.
        other.path.len().cmp(&self.path.len()).then_with(|| other.path.cmp(&self.path))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shortest (by hops) simple path from `s` to `t` in `g` that avoids the
/// vertices in `forbidden_vertices` and the edges in `forbidden_edges`,
/// found by BFS. Returns `None` when no such path exists.
fn restricted_shortest_path(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    forbidden_vertices: &HashSet<VertexId>,
    forbidden_edges: &HashSet<(VertexId, VertexId)>,
) -> Option<Vec<VertexId>> {
    if forbidden_vertices.contains(&s) || forbidden_vertices.contains(&t) {
        return None;
    }
    let n = g.num_vertices();
    if s.index() >= n || t.index() >= n {
        return None;
    }
    let mut parent: Vec<Option<VertexId>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::new();
    visited[s.index()] = true;
    queue.push_back(s);
    while let Some(u) = queue.pop_front() {
        if u == t {
            break;
        }
        for &v in g.successors(u) {
            if visited[v.index()]
                || forbidden_vertices.contains(&v)
                || forbidden_edges.contains(&(u, v))
            {
                continue;
            }
            visited[v.index()] = true;
            parent[v.index()] = Some(u);
            queue.push_back(v);
        }
    }
    if !visited[t.index()] {
        return None;
    }
    let mut path = vec![t];
    let mut cur = t;
    while cur != s {
        let p = parent[cur.index()].expect("parent chain must reach s");
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

/// Enumerates all s-t simple paths with at most `k` hops by repeatedly asking
/// Yen's algorithm for the next shortest loopless path and stopping once the
/// next path exceeds the hop constraint (the Section II-B reduction).
///
/// The output is the complete result set `R`; its order is by non-decreasing
/// path length.
pub fn yen_enumerate(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<Path> {
    let mut results: Vec<Path> = Vec::new();
    if g.num_vertices() == 0 || s.index() >= g.num_vertices() || t.index() >= g.num_vertices() {
        return results;
    }
    if s == t {
        // The trivial path has zero hops; the problem statement looks for
        // paths from s to t with s != t in practice, but handle it anyway.
        return vec![vec![s]];
    }

    // First shortest path.
    let Some(first) = restricted_shortest_path(g, s, t, &HashSet::new(), &HashSet::new()) else {
        return results;
    };
    if (first.len() - 1) as u32 > k {
        return results;
    }
    results.push(first);

    let mut candidates: BinaryHeap<Candidate> = BinaryHeap::new();
    let mut seen: HashSet<Vec<VertexId>> = HashSet::new();
    seen.insert(results[0].clone());

    loop {
        let last = results.last().expect("at least the first path").clone();
        // Generate spur candidates from every prefix of the last result path.
        for i in 0..last.len() - 1 {
            let spur_node = last[i];
            let root_path = &last[..=i];

            // Edges removed: for every previous result sharing this root, the
            // edge it takes out of the spur node.
            let mut forbidden_edges: HashSet<(VertexId, VertexId)> = HashSet::new();
            for r in &results {
                if r.len() > i + 1 && r[..=i] == *root_path {
                    forbidden_edges.insert((r[i], r[i + 1]));
                }
            }
            // Vertices removed: the root path minus the spur node itself.
            let forbidden_vertices: HashSet<VertexId> = root_path[..i].iter().copied().collect();

            if let Some(spur) =
                restricted_shortest_path(g, spur_node, t, &forbidden_vertices, &forbidden_edges)
            {
                let mut total: Vec<VertexId> = root_path[..i].to_vec();
                total.extend_from_slice(&spur);
                if (total.len() - 1) as u32 <= k && seen.insert(total.clone()) {
                    candidates.push(Candidate { path: total });
                }
            }
        }

        match candidates.pop() {
            Some(c) => {
                if (c.path.len() - 1) as u32 > k {
                    break;
                }
                results.push(c.path);
            }
            None => break,
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dfs_enumerate;
    use pefp_graph::generators::{chung_lu, erdos_renyi};
    use pefp_graph::paths::canonicalize;

    fn vid(v: u32) -> VertexId {
        VertexId(v)
    }

    #[test]
    fn diamond_paths_come_out_in_length_order() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)]);
        let paths = yen_enumerate(&g, vid(0), vid(4), 4);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0], vec![vid(0), vid(1), vid(4)]);
        assert_eq!(paths[1], vec![vid(0), vid(2), vid(3), vid(4)]);
    }

    #[test]
    fn hop_constraint_is_respected() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 4), (0, 2), (2, 3), (3, 4)]);
        let paths = yen_enumerate(&g, vid(0), vid(4), 2);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0], vec![vid(0), vid(1), vid(4)]);
        assert!(yen_enumerate(&g, vid(0), vid(4), 1).is_empty());
    }

    #[test]
    fn unreachable_target_gives_no_paths() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        assert!(yen_enumerate(&g, vid(0), vid(2), 5).is_empty());
        assert!(yen_enumerate(&g, vid(2), vid(0), 5).is_empty());
    }

    #[test]
    fn source_equal_target_returns_the_trivial_path() {
        let g = CsrGraph::from_edges(2, &[(0, 1), (1, 0)]);
        let paths = yen_enumerate(&g, vid(0), vid(0), 3);
        assert_eq!(paths, vec![vec![vid(0)]]);
    }

    #[test]
    fn agrees_with_the_naive_oracle_on_random_power_law_graphs() {
        for seed in [3u64, 17, 51] {
            let g = chung_lu(90, 4.0, 2.2, seed).to_csr();
            let s = vid(0);
            let t = vid(45);
            for k in 2..=4 {
                let yen = canonicalize(yen_enumerate(&g, s, t, k));
                let oracle = canonicalize(naive_dfs_enumerate(&g, s, t, k));
                assert_eq!(yen, oracle, "seed {seed} k {k}");
            }
        }
    }

    #[test]
    fn agrees_with_the_naive_oracle_on_a_dense_random_graph() {
        let g = erdos_renyi(40, 240, 5).to_csr();
        let s = vid(1);
        let t = vid(30);
        let k = 4;
        let yen = canonicalize(yen_enumerate(&g, s, t, k));
        let oracle = canonicalize(naive_dfs_enumerate(&g, s, t, k));
        assert_eq!(yen.len(), oracle.len());
        assert_eq!(yen, oracle);
    }

    #[test]
    fn all_paths_are_simple_and_within_bounds() {
        let g = erdos_renyi(30, 150, 9).to_csr();
        let paths = yen_enumerate(&g, vid(0), vid(20), 5);
        for p in &paths {
            assert!(pefp_graph::paths::is_simple(p));
            assert!(p.len() >= 2);
            assert!((p.len() - 1) as u32 <= 5);
            assert_eq!(p[0], vid(0));
            assert_eq!(*p.last().unwrap(), vid(20));
        }
        // Lengths are non-decreasing.
        for w in paths.windows(2) {
            assert!(w[0].len() <= w[1].len());
        }
    }

    #[test]
    fn no_duplicate_paths_are_emitted() {
        let g = erdos_renyi(25, 120, 13).to_csr();
        let paths = yen_enumerate(&g, vid(0), vid(10), 5);
        let mut dedup = paths.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), paths.len());
    }
}
