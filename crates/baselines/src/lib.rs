//! # pefp-baselines
//!
//! CPU baselines for k-hop constrained s-t simple path enumeration, as
//! surveyed and compared against in the PEFP paper (Section III-B):
//!
//! * [`naive`] — plain bounded DFS/BFS enumeration without pruning beyond the
//!   hop budget and the simple-path check. Used as the correctness oracle.
//! * [`bc_dfs`] — *barrier-and-checkpoint* DFS, the pruning primitive of the
//!   JOIN algorithm ("never fall in the same trap twice").
//! * [`join`] — the state-of-the-art CPU algorithm JOIN (Peng et al.,
//!   VLDB 2019): BC-DFS from both ends joined on middle vertices. This is the
//!   baseline every figure of the paper compares PEFP against.
//! * [`tdfs`] / [`tdfs2`] — the aggressive-verification algorithms T-DFS and
//!   T-DFS2, which guarantee every search branch yields a result by computing
//!   path-avoiding shortest distances.
//! * [`hp_index`] — the hot-point index of Qiu et al. (VLDB 2018), which
//!   precomputes paths between high-degree vertices.
//!
//! All entry points take a [`pefp_graph::CsrGraph`], a source, a target and a
//! hop constraint `k`, and return the complete set of simple paths of length
//! `<= k` as `Vec<Vec<VertexId>>`. The routable engines additionally offer
//! streaming forms ([`naive_dfs_stream`], [`bc_dfs_stream`], [`join_stream`])
//! that push into a [`pefp_graph::PathSink`] instead of materialising, so the
//! host's adaptive engine router can run any of them through the exact result
//! pipeline the device engine uses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bc_dfs;
pub mod hp_index;
pub mod join;
pub mod naive;
pub mod tdfs;
pub mod tdfs2;
pub mod yen;

pub use bc_dfs::{bc_dfs_enumerate, bc_dfs_stream, BcDfs};
pub use hp_index::HpIndex;
pub use join::{join_stream, Join, JoinPreprocess};
pub use naive::{naive_bfs_enumerate, naive_dfs_enumerate, naive_dfs_stream};
pub use tdfs::tdfs_enumerate;
pub use tdfs2::tdfs2_enumerate;
pub use yen::yen_enumerate;
