//! JOIN: the state-of-the-art CPU algorithm (Peng et al., VLDB 2019).
//!
//! JOIN is the baseline every experiment of the PEFP paper compares against.
//! It combines two ideas (Section III-B of the PEFP paper):
//!
//! 1. **BC-DFS** pruning ("never fall in the same trap twice"), provided by
//!    [`crate::bc_dfs`].
//! 2. A **middle-vertex join**: every s-t path of length `l` has a unique
//!    middle vertex (the `⌈(l+1)/2⌉`-th vertex, i.e. at `⌊l/2⌋` hops from `s`).
//!    JOIN enumerates *prefixes* from `s` to candidate middle vertices
//!    (length `≤ ⌊k/2⌋`) and *suffixes* from candidate middle vertices to `t`
//!    (length `≤ ⌈k/2⌉`), then joins the two sides on the middle vertex. A
//!    joined pair is emitted iff the concatenation is simple, within the hop
//!    budget and the join vertex really is its middle vertex — which makes
//!    every result appear exactly once.
//!
//! The preprocessing phase (timed separately in Fig. 9/10 of the paper) runs
//! the two k-hop BFS passes and computes the middle-vertex candidate set; the
//! query phase runs the two BC-DFS enumerations and the join.

use crate::bc_dfs::BcDfs;
use pefp_graph::bfs::{khop_bfs, khop_bfs_multi, UNREACHED};
use pefp_graph::paths::Path;
use pefp_graph::sink::{CollectSink, PathSink};
use pefp_graph::{CsrGraph, VertexId};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// Output of JOIN's preprocessing phase.
#[derive(Debug, Clone)]
pub struct JoinPreprocess {
    /// `sd(s, u)` clamped to `k + 1` for unreachable vertices.
    pub sds: Vec<u32>,
    /// `sd(u, t)` clamped to `k + 1` for unreachable vertices.
    pub sdt: Vec<u32>,
    /// Candidate middle vertices: `sds[u] ≤ ⌊k/2⌋`, `sdt[u] ≤ ⌈k/2⌉` and
    /// `sds[u] + sdt[u] ≤ k`.
    pub middle_vertices: Vec<VertexId>,
    /// Hop constraint this preprocessing was computed for.
    pub k: u32,
}

/// The JOIN enumerator.
#[derive(Debug, Clone, Default)]
pub struct Join {
    /// Number of (prefix, suffix) pairs considered by the join phase in the
    /// last query (for reports).
    pub join_candidates: u64,
    /// Number of joined pairs rejected by the simplicity / middle-vertex
    /// checks in the last query.
    pub join_rejected: u64,
}

impl Join {
    /// Creates a JOIN runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Preprocessing: two k-hop BFS passes plus the middle-vertex cut.
    pub fn preprocess(&self, g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> JoinPreprocess {
        let mut sds = khop_bfs(g, s, k);
        let mut sdt = khop_bfs(&g.reverse(), t, k);
        for d in sds.iter_mut().chain(sdt.iter_mut()) {
            if *d == UNREACHED {
                *d = k + 1;
            }
        }
        let half_floor = k / 2;
        let half_ceil = k - half_floor;
        let middle_vertices = g
            .vertices()
            .filter(|u| {
                let ds = sds[u.index()];
                let dt = sdt[u.index()];
                ds <= half_floor && dt <= half_ceil && ds + dt <= k
            })
            .collect();
        JoinPreprocess { sds, sdt, middle_vertices, k }
    }

    /// Query phase: prefix/suffix enumeration plus the join.
    pub fn query(
        &mut self,
        g: &CsrGraph,
        s: VertexId,
        t: VertexId,
        k: u32,
        prep: &JoinPreprocess,
    ) -> Vec<Path> {
        let mut sink = CollectSink::new();
        let _ = self.query_into(g, s, t, k, prep, &mut sink);
        sink.into_paths()
    }

    /// Query phase, streaming each joined result into `sink` as it is
    /// produced. The prefix/suffix sides are still materialised (the join is
    /// inherently a materialising algorithm), but the *result* set never is,
    /// and the sink can stop the join early ([`ControlFlow::Break`]).
    pub fn query_into<S: PathSink + ?Sized>(
        &mut self,
        g: &CsrGraph,
        s: VertexId,
        t: VertexId,
        k: u32,
        prep: &JoinPreprocess,
        sink: &mut S,
    ) -> ControlFlow<()> {
        assert_eq!(prep.k, k, "preprocessing was computed for a different k");
        self.join_candidates = 0;
        self.join_rejected = 0;
        if s.index() >= g.num_vertices() || t.index() >= g.num_vertices() {
            return ControlFlow::Continue(());
        }
        if s == t {
            return sink.emit(&[s]);
        }
        if prep.middle_vertices.is_empty() {
            return ControlFlow::Continue(());
        }
        let half_floor = k / 2;
        let half_ceil = k - half_floor;

        let mut is_middle = vec![false; g.num_vertices()];
        for &m in &prep.middle_vertices {
            is_middle[m.index()] = true;
        }

        // Prefixes: s ⇝ u (u ∈ M) with at most ⌊k/2⌋ hops, grouped by u.
        let prefixes = self.enumerate_prefixes(g, s, half_floor, &is_middle);
        if prefixes.is_empty() {
            return ControlFlow::Continue(());
        }

        // Suffixes: u ⇝ t with at most ⌈k/2⌉ hops, only for middle vertices
        // that actually received a prefix. The BC-DFS barrier state (seeded
        // from sdt) is shared across all suffix enumerations.
        let mut searcher = BcDfs::with_barrier(prep.sdt.clone(), k);
        let mut suffixes: HashMap<VertexId, Vec<Path>> = HashMap::new();
        for &u in prefixes.keys() {
            let paths = searcher.enumerate(g, u, t, half_ceil);
            if !paths.is_empty() {
                suffixes.insert(u, paths);
            }
        }

        // Join on the middle vertex.
        for (u, pres) in &prefixes {
            let Some(sufs) = suffixes.get(u) else { continue };
            for pre in pres {
                for suf in sufs {
                    self.join_candidates += 1;
                    let total_len = (pre.len() - 1) + (suf.len() - 1);
                    if total_len as u32 > k || total_len == 0 {
                        self.join_rejected += 1;
                        continue;
                    }
                    // Middle-vertex condition: the join vertex must sit at
                    // exactly ⌊total_len/2⌋ hops from s, which de-duplicates
                    // paths that could otherwise be split at several vertices.
                    if pre.len() - 1 != total_len / 2 {
                        self.join_rejected += 1;
                        continue;
                    }
                    // Simplicity: prefix and suffix may only share the join vertex.
                    if Self::overlaps(pre, suf) {
                        self.join_rejected += 1;
                        continue;
                    }
                    let mut path = pre.clone();
                    path.extend_from_slice(&suf[1..]);
                    sink.emit(&path)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    /// Convenience: preprocessing followed by a query.
    pub fn enumerate(&mut self, g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<Path> {
        let prep = self.preprocess(g, s, t, k);
        self.query(g, s, t, k, &prep)
    }

    /// Convenience: preprocessing followed by a streaming query into `sink`.
    pub fn enumerate_into<S: PathSink + ?Sized>(
        &mut self,
        g: &CsrGraph,
        s: VertexId,
        t: VertexId,
        k: u32,
        sink: &mut S,
    ) -> ControlFlow<()> {
        let prep = self.preprocess(g, s, t, k);
        self.query_into(g, s, t, k, &prep, sink)
    }

    /// Enumerates all simple paths from `s` of length `≤ max_hops` ending at a
    /// middle vertex, grouped by their final vertex.
    ///
    /// Exploration is pruned with the distance-to-the-nearest-middle-vertex
    /// map (a multi-source BFS on the reverse graph), the analogue of the
    /// virtual-target trick in the original paper.
    fn enumerate_prefixes(
        &self,
        g: &CsrGraph,
        s: VertexId,
        max_hops: u32,
        is_middle: &[bool],
    ) -> HashMap<VertexId, Vec<Path>> {
        let middles: Vec<VertexId> = g.vertices().filter(|v| is_middle[v.index()]).collect();
        let rev = g.reverse();
        let dist_to_middle = khop_bfs_multi(&rev, &middles, max_hops);

        let mut grouped: HashMap<VertexId, Vec<Path>> = HashMap::new();
        if dist_to_middle[s.index()] == UNREACHED {
            return grouped;
        }
        let mut stack = vec![s];
        let mut on_path = vec![false; g.num_vertices()];
        on_path[s.index()] = true;
        if is_middle[s.index()] {
            grouped.entry(s).or_default().push(vec![s]);
        }
        Self::prefix_dfs(
            g,
            max_hops,
            is_middle,
            &dist_to_middle,
            &mut stack,
            &mut on_path,
            &mut grouped,
        );
        grouped
    }

    fn prefix_dfs(
        g: &CsrGraph,
        max_hops: u32,
        is_middle: &[bool],
        dist_to_middle: &[u32],
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        grouped: &mut HashMap<VertexId, Vec<Path>>,
    ) {
        let current = *stack.last().expect("stack never empty");
        let hops = (stack.len() - 1) as u32;
        if hops >= max_hops {
            return;
        }
        for &next in g.successors(current) {
            if on_path[next.index()] {
                continue;
            }
            let to_middle = dist_to_middle[next.index()];
            if to_middle == UNREACHED || hops + 1 + to_middle > max_hops {
                continue;
            }
            stack.push(next);
            on_path[next.index()] = true;
            if is_middle[next.index()] {
                grouped.entry(next).or_default().push(stack.clone());
            }
            Self::prefix_dfs(g, max_hops, is_middle, dist_to_middle, stack, on_path, grouped);
            stack.pop();
            on_path[next.index()] = false;
        }
    }

    /// Whether prefix and suffix share any vertex besides the join vertex
    /// (`prefix.last() == suffix.first()`).
    fn overlaps(prefix: &[VertexId], suffix: &[VertexId]) -> bool {
        // Both sides are short (≤ k/2 + 1 vertices), so the quadratic check is
        // faster than building a hash set.
        for v in &prefix[..prefix.len() - 1] {
            if suffix[1..].contains(v) {
                return true;
            }
        }
        false
    }
}

/// One-shot streaming wrapper: preprocesses and streams a single JOIN query's
/// result paths into `sink`. Returns [`ControlFlow::Break`] when the sink
/// stopped the enumeration early.
pub fn join_stream<S: PathSink + ?Sized>(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    sink: &mut S,
) -> ControlFlow<()> {
    Join::new().enumerate_into(g, s, t, k, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dfs_enumerate;
    use pefp_graph::generators::{
        chung_lu, layered_dag, layered_sink, layered_source, small_world,
    };
    use pefp_graph::paths::{canonicalize, validate_result};

    fn check_against_naive(g: &CsrGraph, s: u32, t: u32, k: u32) {
        let mut join = Join::new();
        let a = canonicalize(join.enumerate(g, VertexId(s), VertexId(t), k));
        let b = canonicalize(naive_dfs_enumerate(g, VertexId(s), VertexId(t), k));
        assert_eq!(a, b, "JOIN mismatch for ({s},{t},{k})");
        assert!(validate_result(g, VertexId(s), VertexId(t), k as usize, &a).is_empty());
    }

    #[test]
    fn diamond_and_chain() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        check_against_naive(&g, 0, 3, 3);
        let chain = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        check_against_naive(&chain, 0, 4, 4);
        check_against_naive(&chain, 0, 4, 3);
    }

    #[test]
    fn direct_edge_paths_are_found() {
        // s -> t direct plus a 2-hop detour: middle vertices include s itself.
        let g = CsrGraph::from_edges(3, &[(0, 2), (0, 1), (1, 2)]);
        check_against_naive(&g, 0, 2, 1);
        check_against_naive(&g, 0, 2, 2);
    }

    #[test]
    fn odd_and_even_hop_constraints() {
        let g = chung_lu(80, 5.0, 2.2, 11).to_csr();
        for k in [2, 3, 4, 5] {
            check_against_naive(&g, 0, 17, k);
        }
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..3u64 {
            let g = chung_lu(100, 4.0, 2.3, seed).to_csr();
            check_against_naive(&g, 2, 33, 5);
            check_against_naive(&g, 7, 8, 4);
        }
        let g = small_world(120, 2, 0.2, 9).to_csr();
        check_against_naive(&g, 0, 60, 5);
        check_against_naive(&g, 5, 100, 6);
    }

    #[test]
    fn layered_dag_is_exact() {
        let g = layered_dag(3, 3, 3, 4).to_csr();
        let mut join = Join::new();
        let r = join.enumerate(&g, layered_source(), layered_sink(3, 3), 4);
        assert_eq!(r.len(), 27);
    }

    #[test]
    fn preprocessing_middle_set_respects_the_cut() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let join = Join::new();
        let prep = join.preprocess(&g, VertexId(0), VertexId(4), 4);
        // Only vertex 2 is at ⌊k/2⌋ = 2 hops from s and ⌈k/2⌉ = 2 hops to t.
        assert_eq!(prep.middle_vertices, vec![VertexId(2)]);
    }

    #[test]
    fn unreachable_queries_return_empty() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut join = Join::new();
        assert!(join.enumerate(&g, VertexId(0), VertexId(3), 6).is_empty());
    }

    #[test]
    fn source_equals_target() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut join = Join::new();
        assert_eq!(join.enumerate(&g, VertexId(1), VertexId(1), 3), vec![vec![VertexId(1)]]);
    }

    #[test]
    fn streaming_matches_collected_enumeration() {
        use pefp_graph::sink::FirstN;
        let g = chung_lu(80, 5.0, 2.2, 11).to_csr();
        let (s, t, k) = (VertexId(0), VertexId(17), 4);
        let expected = canonicalize(Join::new().enumerate(&g, s, t, k));
        let mut sink = CollectSink::new();
        assert_eq!(join_stream(&g, s, t, k, &mut sink), ControlFlow::Continue(()));
        assert_eq!(canonicalize(sink.into_paths()), expected);
        // A saturated FirstN stops the join early.
        if expected.len() > 1 {
            let mut first = FirstN::new(1, CollectSink::new());
            assert_eq!(join_stream(&g, s, t, k, &mut first), ControlFlow::Break(()));
            assert_eq!(first.emitted(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "different k")]
    fn mismatched_preprocessing_is_rejected() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut join = Join::new();
        let prep = join.preprocess(&g, VertexId(0), VertexId(2), 3);
        let _ = join.query(&g, VertexId(0), VertexId(2), 4, &prep);
    }
}
