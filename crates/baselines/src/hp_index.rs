//! HP-Index: hot-point indexing for constrained path enumeration
//! (Qiu et al., VLDB 2018).
//!
//! HP-Index designates high-degree vertices as *hot points* and maintains an
//! index of the pairwise paths among them. A query is answered by
//!
//! 1. a forward DFS from `s` that records segments ending at the *first* hot
//!    point encountered (or directly at `t`),
//! 2. a backward DFS from `t` that records segments starting at the *last*
//!    hot point encountered,
//! 3. looking up the indexed hot-point-to-hot-point paths, and
//! 4. concatenating the three pieces and validating length and simplicity.
//!
//! Because the forward segments contain no hot point after their first vertex
//! following `s` reaches one, and the backward segments contain none before
//! their last, the decomposition *(s-segment, indexed middle, t-segment)* of a
//! result path is unique, so no deduplication is required.
//!
//! The PEFP paper notes that HP-Index only wins on extremely skewed graphs
//! with few results (Section III-B); it is included here for completeness and
//! as a further correctness cross-check.

use pefp_graph::paths::Path;
use pefp_graph::{CsrGraph, VertexId};
use std::collections::HashMap;

/// Hot-point index for one graph and a maximum path length.
#[derive(Debug, Clone)]
pub struct HpIndex {
    /// Hot-point flag per vertex.
    is_hot: Vec<bool>,
    /// The hot points in id order.
    hot_points: Vec<VertexId>,
    /// Indexed simple paths between ordered pairs of hot points, keyed by
    /// `(from, to)`. Paths may pass through other hot points.
    pairwise: HashMap<(VertexId, VertexId), Vec<Path>>,
    /// Maximum number of hops the index covers.
    max_hops: u32,
}

impl HpIndex {
    /// Builds an index over the `hot_count` highest-out-degree vertices,
    /// storing all pairwise hot-point paths of length `≤ max_hops`.
    ///
    /// Index construction enumerates paths between hot points and is therefore
    /// expensive — exactly the maintenance cost the original system pays
    /// continuously and the PEFP paper criticises.
    pub fn build(g: &CsrGraph, hot_count: usize, max_hops: u32) -> Self {
        let mut by_degree: Vec<VertexId> = g.vertices().collect();
        by_degree.sort_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
        let hot_points: Vec<VertexId> = by_degree.into_iter().take(hot_count).collect();
        let mut is_hot = vec![false; g.num_vertices()];
        for &h in &hot_points {
            is_hot[h.index()] = true;
        }

        let mut pairwise: HashMap<(VertexId, VertexId), Vec<Path>> = HashMap::new();
        for &h in &hot_points {
            // Bounded DFS from each hot point, recording every arrival at a hot
            // point (paths may continue through it, so recursion does not stop).
            let mut stack = vec![h];
            let mut on_path = vec![false; g.num_vertices()];
            on_path[h.index()] = true;
            Self::index_dfs(g, max_hops, &is_hot, &mut stack, &mut on_path, &mut pairwise);
        }
        HpIndex { is_hot, hot_points, pairwise, max_hops }
    }

    fn index_dfs(
        g: &CsrGraph,
        max_hops: u32,
        is_hot: &[bool],
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        pairwise: &mut HashMap<(VertexId, VertexId), Vec<Path>>,
    ) {
        let current = *stack.last().expect("stack never empty");
        let hops = (stack.len() - 1) as u32;
        if hops >= max_hops {
            return;
        }
        for &next in g.successors(current) {
            if on_path[next.index()] {
                continue;
            }
            stack.push(next);
            on_path[next.index()] = true;
            if is_hot[next.index()] {
                pairwise.entry((stack[0], next)).or_default().push(stack.clone());
            }
            Self::index_dfs(g, max_hops, is_hot, stack, on_path, pairwise);
            stack.pop();
            on_path[next.index()] = false;
        }
    }

    /// The hot points of this index.
    pub fn hot_points(&self) -> &[VertexId] {
        &self.hot_points
    }

    /// Number of indexed hot-point-to-hot-point paths.
    pub fn indexed_paths(&self) -> usize {
        self.pairwise.values().map(Vec::len).sum()
    }

    /// Enumerates all s-t simple paths with at most `k` hops (`k` must not
    /// exceed the `max_hops` the index was built for).
    pub fn enumerate(&self, g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<Path> {
        assert!(k <= self.max_hops, "index only covers paths up to {} hops", self.max_hops);
        let mut results = Vec::new();
        if s.index() >= g.num_vertices() || t.index() >= g.num_vertices() {
            return results;
        }
        if s == t {
            results.push(vec![s]);
            return results;
        }

        // Step 1: forward segments from s. Each ends at the first hot point
        // reached after leaving s, or at t with no hot point in between.
        let forward = self.collect_forward(g, s, t, k);
        // Step 2: backward segments to t (computed on the reverse graph), each
        // starting at the last hot point before t, or at s.
        let backward = self.collect_backward(g, s, t, k);

        // Case A: segments that already run from s to t without internal hot points.
        for seg in forward.direct.iter() {
            results.push(seg.clone());
        }

        // Case B: s-segment to hot point h1 + t-segment from hot point h2,
        // where h1 == h2 (no indexed middle needed).
        for (h, pres) in &forward.to_hot {
            if let Some(sufs) = backward.from_hot.get(h) {
                for pre in pres {
                    for suf in sufs {
                        Self::try_emit(&mut results, k, &[pre, suf]);
                    }
                }
            }
        }

        // Case C: s-segment to h1 + indexed path h1 ⇝ h2 + t-segment from h2.
        for (h1, pres) in &forward.to_hot {
            for (h2, sufs) in &backward.from_hot {
                if h1 == h2 {
                    continue;
                }
                let Some(middles) = self.pairwise.get(&(*h1, *h2)) else { continue };
                for pre in pres {
                    for mid in middles {
                        for suf in sufs {
                            Self::try_emit(&mut results, k, &[pre, mid, suf]);
                        }
                    }
                }
            }
        }
        results
    }

    /// Concatenates the segments (adjacent segments share exactly one vertex),
    /// and emits the result if it is simple and within the hop budget.
    fn try_emit(results: &mut Vec<Path>, k: u32, segments: &[&Path]) {
        let total_hops: usize = segments.iter().map(|s| s.len() - 1).sum();
        if total_hops as u32 > k {
            return;
        }
        let mut path: Path = Vec::with_capacity(total_hops + 1);
        path.extend_from_slice(segments[0]);
        for seg in &segments[1..] {
            debug_assert_eq!(path.last(), seg.first(), "segments must chain on a shared vertex");
            path.extend_from_slice(&seg[1..]);
        }
        if pefp_graph::paths::is_simple(&path) {
            results.push(path);
        }
    }

    fn collect_forward(&self, g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> ForwardSegments {
        let mut out = ForwardSegments::default();
        let mut stack = vec![s];
        let mut on_path = vec![false; g.num_vertices()];
        on_path[s.index()] = true;
        // Note: even when `s` itself is hot, segments still run until the
        // first hot vertex *strictly after* `s` — the decomposition is defined
        // on internal hot vertices only, which keeps it unique.
        self.forward_dfs(g, t, k, &mut stack, &mut on_path, &mut out);
        out
    }

    /// Forward DFS that *stops* at hot points and at `t` (segments have no
    /// internal hot vertices).
    fn forward_dfs(
        &self,
        g: &CsrGraph,
        t: VertexId,
        k: u32,
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        out: &mut ForwardSegments,
    ) {
        let current = *stack.last().expect("stack never empty");
        let hops = (stack.len() - 1) as u32;
        if hops >= k {
            return;
        }
        for &next in g.successors(current) {
            if on_path[next.index()] {
                continue;
            }
            if next == t {
                let mut seg = stack.clone();
                seg.push(t);
                out.direct.push(seg);
                continue;
            }
            if self.is_hot[next.index()] {
                let mut seg = stack.clone();
                seg.push(next);
                out.to_hot.entry(next).or_default().push(seg);
                continue; // backtrack at the hot point
            }
            stack.push(next);
            on_path[next.index()] = true;
            self.forward_dfs(g, t, k, stack, on_path, out);
            stack.pop();
            on_path[next.index()] = false;
        }
    }

    fn collect_backward(&self, g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> BackwardSegments {
        let rev = g.reverse();
        let mut out = BackwardSegments::default();
        let mut stack = vec![t];
        let mut on_path = vec![false; g.num_vertices()];
        on_path[t.index()] = true;
        // Symmetric to the forward pass: `t`'s own hotness is irrelevant, the
        // decomposition is anchored on the last hot vertex strictly before `t`.
        self.backward_dfs(&rev, s, k, &mut stack, &mut on_path, &mut out);
        // Reverse every collected segment so it reads hot-point → … → t.
        for segs in out.from_hot.values_mut() {
            for seg in segs {
                seg.reverse();
            }
        }
        out
    }

    /// Backward DFS on the reverse graph, stopping at hot points (segments are
    /// recorded reversed and flipped afterwards). Segments that reach `s`
    /// without a hot point are *not* recorded here — they are exactly the
    /// `direct` forward segments and would be double-counted.
    fn backward_dfs(
        &self,
        rev: &CsrGraph,
        s: VertexId,
        k: u32,
        stack: &mut Vec<VertexId>,
        on_path: &mut [bool],
        out: &mut BackwardSegments,
    ) {
        let current = *stack.last().expect("stack never empty");
        let hops = (stack.len() - 1) as u32;
        if hops >= k {
            return;
        }
        for &next in rev.successors(current) {
            if on_path[next.index()] || next == s {
                continue;
            }
            if self.is_hot[next.index()] {
                let mut seg = stack.clone();
                seg.push(next);
                out.from_hot.entry(next).or_default().push(seg);
                continue;
            }
            stack.push(next);
            on_path[next.index()] = true;
            self.backward_dfs(rev, s, k, stack, on_path, out);
            stack.pop();
            on_path[next.index()] = false;
        }
    }
}

#[derive(Default)]
struct ForwardSegments {
    /// Segments from s that reach t with no internal hot point.
    direct: Vec<Path>,
    /// Segments from s ending at their first hot point, grouped by that vertex.
    to_hot: HashMap<VertexId, Vec<Path>>,
}

#[derive(Default)]
struct BackwardSegments {
    /// Segments from a hot point to t with no other hot point after it.
    from_hot: HashMap<VertexId, Vec<Path>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::paths::{canonicalize, validate_result};

    fn check(g: &CsrGraph, hot: usize, s: u32, t: u32, k: u32) {
        let index = HpIndex::build(g, hot, k);
        let a = canonicalize(index.enumerate(g, VertexId(s), VertexId(t), k));
        let b = canonicalize(naive_dfs_enumerate(g, VertexId(s), VertexId(t), k));
        assert_eq!(a, b, "HP-Index mismatch for ({s},{t},{k}) with {hot} hot points");
        assert!(validate_result(g, VertexId(s), VertexId(t), k as usize, &a).is_empty());
    }

    #[test]
    fn matches_naive_with_various_hot_point_counts() {
        let g = CsrGraph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 7), (0, 3), (3, 4), (4, 7), (1, 4), (3, 2), (2, 5), (5, 7)],
        );
        for hot in [0, 1, 2, 4, 8] {
            check(&g, hot, 0, 7, 4);
            check(&g, hot, 0, 7, 6);
        }
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..3u64 {
            let g = chung_lu(60, 4.0, 2.1, seed + 300).to_csr();
            check(&g, 5, 0, 31, 4);
            check(&g, 10, 2, 17, 5);
        }
    }

    #[test]
    fn hot_endpoints_are_handled() {
        // Make both s and t the highest-degree vertices so they become hot.
        let g = CsrGraph::from_edges(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 5), (2, 5), (3, 5), (1, 2), (2, 3)],
        );
        check(&g, 2, 0, 5, 3);
        check(&g, 2, 0, 5, 4);
    }

    #[test]
    fn index_statistics_are_reported() {
        let g = chung_lu(60, 5.0, 2.1, 9).to_csr();
        let index = HpIndex::build(&g, 6, 4);
        assert_eq!(index.hot_points().len(), 6);
        // With 6 hot points on a graph this dense there is at least one indexed path.
        assert!(index.indexed_paths() > 0);
    }

    #[test]
    #[should_panic(expected = "index only covers")]
    fn querying_beyond_the_index_bound_panics() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let index = HpIndex::build(&g, 1, 2);
        let _ = index.enumerate(&g, VertexId(0), VertexId(2), 3);
    }

    #[test]
    fn trivial_queries() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let index = HpIndex::build(&g, 1, 3);
        assert_eq!(index.enumerate(&g, VertexId(1), VertexId(1), 3), vec![vec![VertexId(1)]]);
        assert!(index.enumerate(&g, VertexId(2), VertexId(0), 3).is_empty());
    }
}
