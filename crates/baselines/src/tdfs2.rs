//! T-DFS2: T-DFS with reduced shortest-distance recomputation
//! (Grossi, Marino, Versari — LATIN 2018).
//!
//! T-DFS2 keeps T-DFS's guarantee that every explored branch produces at least
//! one result but avoids many of the expensive path-avoiding BFS computations.
//! The reproduction implements the central idea as a *certificate reuse*
//! shortcut: a shortest s-t path tree towards `t` is computed once; when the
//! tree path from a successor `u` to `t` does not touch the current stack, the
//! unconstrained distance `sd(u, t)` is already a valid certificate and no
//! per-step BFS is needed. Only when the certificate is invalidated by the
//! current path does the algorithm fall back to the constrained BFS that
//! T-DFS performs on every step.

use pefp_graph::bfs::{constrained_distance, UNREACHED};
use pefp_graph::paths::Path;
use pefp_graph::{CsrGraph, VertexId};

/// Enumerates all s-t simple paths with at most `k` hops using T-DFS2.
pub fn tdfs2_enumerate(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<Path> {
    let mut results = Vec::new();
    if s.index() >= g.num_vertices() || t.index() >= g.num_vertices() {
        return results;
    }
    if s == t {
        results.push(vec![s]);
        return results;
    }

    // Shortest-path certificates towards t: distances and BFS parents on the
    // reverse graph. parent[u] is the next vertex on one shortest u -> t path.
    let rev = g.reverse();
    let (dist_to_t, next_on_sp) = bfs_with_parents(&rev, t, k);
    if dist_to_t[s.index()] == UNREACHED {
        return results;
    }

    let mut ctx = Ctx { g, t, k, dist_to_t, next_on_sp, results: &mut results, fallback_bfs: 0 };
    let mut stack = vec![s];
    let mut on_path = vec![false; g.num_vertices()];
    on_path[s.index()] = true;
    ctx.search(&mut stack, &mut on_path);
    results
}

/// BFS from `t` on the reverse graph returning `(distance, next-hop)` arrays:
/// `next_on_sp[u]` is the successor of `u` (in the original graph) on one
/// shortest path from `u` to `t`.
fn bfs_with_parents(rev: &CsrGraph, t: VertexId, k: u32) -> (Vec<u32>, Vec<VertexId>) {
    let n = rev.num_vertices();
    let mut dist = vec![UNREACHED; n];
    let mut next = vec![VertexId::INVALID; n];
    let mut queue = std::collections::VecDeque::new();
    dist[t.index()] = 0;
    queue.push_back(t);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        if du >= k {
            continue;
        }
        for &v in rev.successors(u) {
            if dist[v.index()] == UNREACHED {
                dist[v.index()] = du + 1;
                // In the original graph the edge is v -> u, so u is v's next hop.
                next[v.index()] = u;
                queue.push_back(v);
            }
        }
    }
    (dist, next)
}

struct Ctx<'a> {
    g: &'a CsrGraph,
    t: VertexId,
    k: u32,
    dist_to_t: Vec<u32>,
    next_on_sp: Vec<VertexId>,
    results: &'a mut Vec<Path>,
    /// Number of constrained-BFS fallbacks performed (certificate misses).
    fallback_bfs: u64,
}

impl Ctx<'_> {
    fn search(&mut self, stack: &mut Vec<VertexId>, on_path: &mut [bool]) {
        let current = *stack.last().expect("stack never empty");
        let hops = (stack.len() - 1) as u32;
        if hops >= self.k {
            return;
        }
        for i in 0..self.g.successors(current).len() {
            let next = self.g.successors(current)[i];
            if next == self.t {
                let mut path = stack.clone();
                path.push(self.t);
                self.results.push(path);
                continue;
            }
            if on_path[next.index()] {
                continue;
            }
            let remaining = self.k - (hops + 1);
            if !self.feasible(next, remaining, on_path) {
                continue;
            }
            stack.push(next);
            on_path[next.index()] = true;
            self.search(stack, on_path);
            stack.pop();
            on_path[next.index()] = false;
        }
    }

    /// Is there a simple path from `u` to `t` of length `≤ remaining` that
    /// avoids the current stack?
    fn feasible(&mut self, u: VertexId, remaining: u32, on_path: &[bool]) -> bool {
        let d = self.dist_to_t[u.index()];
        if d == UNREACHED || d > remaining {
            // The unconstrained distance is a lower bound on the constrained one.
            return false;
        }
        // Certificate check: walk the shortest-path tree towards t; if it does
        // not touch the current path, the unconstrained distance is achievable.
        let mut v = u;
        let mut clean = true;
        while v != self.t {
            if on_path[v.index()] && v != u {
                clean = false;
                break;
            }
            v = self.next_on_sp[v.index()];
            if !v.is_valid() {
                clean = false;
                break;
            }
        }
        if clean {
            return true;
        }
        // Certificate invalidated: fall back to the constrained BFS (T-DFS step).
        self.fallback_bfs += 1;
        constrained_distance(self.g, u, self.t, remaining, |v| on_path[v.index()])
            .is_some_and(|d| d <= remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dfs_enumerate;
    use crate::tdfs::tdfs_enumerate;
    use pefp_graph::generators::{chung_lu, small_world};
    use pefp_graph::paths::canonicalize;

    #[test]
    fn matches_naive_and_tdfs_on_small_graphs() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)]);
        for k in [2, 3, 4, 5] {
            let a = canonicalize(tdfs2_enumerate(&g, VertexId(0), VertexId(5), k));
            let b = canonicalize(naive_dfs_enumerate(&g, VertexId(0), VertexId(5), k));
            let c = canonicalize(tdfs_enumerate(&g, VertexId(0), VertexId(5), k));
            assert_eq!(a, b, "k = {k}");
            assert_eq!(a, c, "k = {k}");
        }
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..3u64 {
            let g = chung_lu(70, 4.0, 2.2, seed + 200).to_csr();
            let a = canonicalize(tdfs2_enumerate(&g, VertexId(3), VertexId(30), 5));
            let b = canonicalize(naive_dfs_enumerate(&g, VertexId(3), VertexId(30), 5));
            assert_eq!(a, b, "seed {seed}");
        }
        let g = small_world(90, 2, 0.3, 17).to_csr();
        let a = canonicalize(tdfs2_enumerate(&g, VertexId(0), VertexId(45), 5));
        let b = canonicalize(naive_dfs_enumerate(&g, VertexId(0), VertexId(45), 5));
        assert_eq!(a, b);
    }

    #[test]
    fn certificate_avoids_fallbacks_on_a_dag() {
        // A wide DAG where shortest paths never clash with the current stack.
        let g = pefp_graph::generators::layered_dag(3, 4, 4, 3).to_csr();
        let s = pefp_graph::generators::layered_source();
        let t = pefp_graph::generators::layered_sink(3, 4);
        let r = tdfs2_enumerate(&g, s, t, 4);
        assert_eq!(r.len(), 64);
    }

    #[test]
    fn trivial_and_unreachable_cases() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        assert_eq!(tdfs2_enumerate(&g, VertexId(1), VertexId(1), 2), vec![vec![VertexId(1)]]);
        assert!(tdfs2_enumerate(&g, VertexId(0), VertexId(2), 4).is_empty());
        assert!(tdfs2_enumerate(&g, VertexId(7), VertexId(1), 4).is_empty());
    }
}
