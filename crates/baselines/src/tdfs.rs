//! T-DFS: aggressive verification with path-avoiding shortest distances
//! (Rizzi, Sacomoto, Sagot — IWOCA 2014).
//!
//! T-DFS guarantees that every search branch eventually emits at least one
//! result ("never fall in the trap", Section III-B of the PEFP paper): before
//! exploring a successor `u` of the current path `p`, it computes the shortest
//! distance `sd(u, t | p)` that avoids every vertex already on `p`, and prunes
//! `u` when `len(p) + 1 + sd(u, t | p) > k`. This yields polynomial delay but
//! each check is a full (bounded) BFS, which is why T-DFS loses to JOIN in
//! practice.

use pefp_graph::bfs::constrained_distance;
use pefp_graph::paths::Path;
use pefp_graph::{CsrGraph, VertexId};

/// Enumerates all s-t simple paths with at most `k` hops using T-DFS.
pub fn tdfs_enumerate(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<Path> {
    let mut results = Vec::new();
    if s.index() >= g.num_vertices() || t.index() >= g.num_vertices() {
        return results;
    }
    if s == t {
        results.push(vec![s]);
        return results;
    }
    // The initial feasibility check: is t reachable from s at all within k hops?
    if constrained_distance(g, s, t, k, |_| false).is_none() {
        return results;
    }
    let mut stack = vec![s];
    let mut on_path = vec![false; g.num_vertices()];
    on_path[s.index()] = true;
    search(g, t, k, &mut stack, &mut on_path, &mut results);
    results
}

fn search(
    g: &CsrGraph,
    t: VertexId,
    k: u32,
    stack: &mut Vec<VertexId>,
    on_path: &mut [bool],
    results: &mut Vec<Path>,
) {
    let current = *stack.last().expect("stack never empty");
    let hops = (stack.len() - 1) as u32;
    if hops >= k {
        return;
    }
    for &next in g.successors(current) {
        if next == t {
            let mut path = stack.clone();
            path.push(t);
            results.push(path);
            continue;
        }
        if on_path[next.index()] {
            continue;
        }
        let remaining = k - (hops + 1);
        // Aggressive verification: sd(next, t | p) avoiding the current path.
        let feasible = constrained_distance(g, next, t, remaining, |v| on_path[v.index()])
            .is_some_and(|d| d <= remaining);
        if !feasible {
            continue;
        }
        stack.push(next);
        on_path[next.index()] = true;
        search(g, t, k, stack, on_path, results);
        stack.pop();
        on_path[next.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dfs_enumerate;
    use pefp_graph::generators::chung_lu;
    use pefp_graph::paths::canonicalize;

    #[test]
    fn matches_naive_on_small_graphs() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5), (1, 4)]);
        for k in [2, 3, 4, 5] {
            let a = canonicalize(tdfs_enumerate(&g, VertexId(0), VertexId(5), k));
            let b = canonicalize(naive_dfs_enumerate(&g, VertexId(0), VertexId(5), k));
            assert_eq!(a, b, "k = {k}");
        }
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..3u64 {
            let g = chung_lu(70, 4.0, 2.2, seed + 100).to_csr();
            let a = canonicalize(tdfs_enumerate(&g, VertexId(1), VertexId(42), 5));
            let b = canonicalize(naive_dfs_enumerate(&g, VertexId(1), VertexId(42), 5));
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn every_branch_yields_a_result_on_a_trap_graph() {
        // A graph with a long dead-end branch: T-DFS must not enter it.
        let mut edges = vec![(0u32, 1u32), (1, 5)];
        for i in 0..20u32 {
            edges.push((1, 6 + i)); // 1 -> 6.., dead ends
        }
        let g = CsrGraph::from_edges(30, &edges);
        let r = tdfs_enumerate(&g, VertexId(0), VertexId(5), 3);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn trivial_and_unreachable_cases() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        assert_eq!(tdfs_enumerate(&g, VertexId(2), VertexId(2), 2), vec![vec![VertexId(2)]]);
        assert!(tdfs_enumerate(&g, VertexId(0), VertexId(2), 4).is_empty());
        assert!(tdfs_enumerate(&g, VertexId(5), VertexId(1), 4).is_empty());
    }
}
