//! Naive enumeration algorithms used as correctness oracles.
//!
//! These implement the problem definition directly with no pruning other than
//! the hop budget and the simple-path requirement. They are exponentially
//! slower than the real algorithms on large inputs but are obviously correct,
//! which makes them the reference every optimised implementation is compared
//! against in tests.

use pefp_graph::paths::Path;
use pefp_graph::sink::{CollectSink, PathSink};
use pefp_graph::{CsrGraph, VertexId};
use std::ops::ControlFlow;

/// Enumerates all s-t simple paths with at most `k` hops by depth-first
/// search, checking the simple-path property against the current stack.
pub fn naive_dfs_enumerate(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<Path> {
    let mut sink = CollectSink::new();
    naive_dfs_stream(g, s, t, k, &mut sink);
    sink.into_paths()
}

/// Streaming form of [`naive_dfs_enumerate`]: each result path is pushed into
/// `sink` as it is found (the search stack plus `t`, no per-path allocation),
/// and a sink break stops the search immediately.
///
/// This gives the CPU baseline the same result pipeline as the PEFP engine,
/// so memory comparisons between the two are apples-to-apples. Returns the
/// number of emission attempts, matching the engine's `EngineStats::results`
/// convention: when the sink breaks, the breaking path is included (for
/// `FirstN(n >= 1)` it was delivered; a sink that refuses its very first
/// path, i.e. a saturated `FirstN(0)`, still counts one).
pub fn naive_dfs_stream<S: PathSink + ?Sized>(
    g: &CsrGraph,
    s: VertexId,
    t: VertexId,
    k: u32,
    sink: &mut S,
) -> u64 {
    if s.index() >= g.num_vertices() || t.index() >= g.num_vertices() {
        return 0;
    }
    let mut emitted = 0u64;
    if s == t {
        // A single vertex is a 0-hop path from s to itself.
        let _ = sink.emit(&[s]);
        return 1;
    }
    let mut stack = vec![s];
    let mut on_path = vec![false; g.num_vertices()];
    on_path[s.index()] = true;
    let _ = dfs(g, t, k, &mut stack, &mut on_path, sink, &mut emitted);
    emitted
}

fn dfs<S: PathSink + ?Sized>(
    g: &CsrGraph,
    t: VertexId,
    k: u32,
    stack: &mut Vec<VertexId>,
    on_path: &mut [bool],
    sink: &mut S,
    emitted: &mut u64,
) -> ControlFlow<()> {
    let current = *stack.last().expect("stack never empty");
    let hops = (stack.len() - 1) as u32;
    if hops >= k {
        return ControlFlow::Continue(());
    }
    for &next in g.successors(current) {
        if next == t {
            stack.push(t);
            *emitted += 1;
            let flow = sink.emit(stack);
            stack.pop();
            flow?;
            continue;
        }
        if on_path[next.index()] {
            continue;
        }
        stack.push(next);
        on_path[next.index()] = true;
        let flow = dfs(g, t, k, stack, on_path, sink, emitted);
        stack.pop();
        on_path[next.index()] = false;
        flow?;
    }
    ControlFlow::Continue(())
}

/// Enumerates all s-t simple paths with at most `k` hops by breadth-first
/// expansion of partial paths (the unoptimised version of what PEFP does on
/// the device).
///
/// Memory usage is proportional to the number of intermediate paths, which is
/// exactly the blow-up the paper's buffer-and-batch design addresses.
pub fn naive_bfs_enumerate(g: &CsrGraph, s: VertexId, t: VertexId, k: u32) -> Vec<Path> {
    let mut results = Vec::new();
    if s.index() >= g.num_vertices() || t.index() >= g.num_vertices() {
        return results;
    }
    if s == t {
        results.push(vec![s]);
        return results;
    }
    let mut frontier: Vec<Path> = vec![vec![s]];
    for _hop in 0..k {
        let mut next_frontier = Vec::new();
        for path in &frontier {
            let last = *path.last().expect("paths are non-empty");
            for &succ in g.successors(last) {
                if succ == t {
                    let mut done = path.clone();
                    done.push(t);
                    results.push(done);
                } else if !path.contains(&succ) {
                    let mut extended = path.clone();
                    extended.push(succ);
                    next_frontier.push(extended);
                }
            }
        }
        frontier = next_frontier;
        if frontier.is_empty() {
            break;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_graph::generators::{
        layered_dag, layered_full_path_count, layered_sink, layered_source,
    };
    use pefp_graph::paths::{canonicalize, validate_result};

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn diamond_has_two_paths() {
        let g = diamond();
        let r = naive_dfs_enumerate(&g, VertexId(0), VertexId(3), 3);
        assert_eq!(r.len(), 2);
        assert!(validate_result(&g, VertexId(0), VertexId(3), 3, &r).is_empty());
    }

    #[test]
    fn hop_constraint_excludes_long_paths() {
        // 0->3 direct plus 0->1->2->3
        let g = CsrGraph::from_edges(4, &[(0, 3), (0, 1), (1, 2), (2, 3)]);
        assert_eq!(naive_dfs_enumerate(&g, VertexId(0), VertexId(3), 1).len(), 1);
        assert_eq!(naive_dfs_enumerate(&g, VertexId(0), VertexId(3), 3).len(), 2);
        assert_eq!(naive_dfs_enumerate(&g, VertexId(0), VertexId(3), 2).len(), 1);
    }

    #[test]
    fn cycles_are_not_traversed_twice() {
        // 0 -> 1 -> 0 cycle plus 1 -> 2
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let r = naive_dfs_enumerate(&g, VertexId(0), VertexId(2), 5);
        assert_eq!(r, vec![vec![VertexId(0), VertexId(1), VertexId(2)]]);
    }

    #[test]
    fn dfs_and_bfs_agree() {
        let g = pefp_graph::generators::chung_lu(120, 4.0, 2.2, 7).to_csr();
        for (s, t, k) in [(0u32, 5u32, 4u32), (3, 40, 5), (10, 11, 3)] {
            let a = canonicalize(naive_dfs_enumerate(&g, VertexId(s), VertexId(t), k));
            let b = canonicalize(naive_bfs_enumerate(&g, VertexId(s), VertexId(t), k));
            assert_eq!(a, b, "mismatch for ({s},{t},{k})");
        }
    }

    #[test]
    fn layered_dag_count_matches_formula() {
        let g = layered_dag(3, 3, 3, 1).to_csr();
        let s = layered_source();
        let t = layered_sink(3, 3);
        let r = naive_dfs_enumerate(&g, s, t, 4);
        assert_eq!(r.len() as u64, layered_full_path_count(3, 3));
        // With a hop budget below the only possible length there are no paths.
        assert_eq!(naive_dfs_enumerate(&g, s, t, 3).len(), 0);
    }

    #[test]
    fn source_equals_target_yields_the_trivial_path() {
        let g = diamond();
        let r = naive_dfs_enumerate(&g, VertexId(1), VertexId(1), 3);
        assert_eq!(r, vec![vec![VertexId(1)]]);
        let r = naive_bfs_enumerate(&g, VertexId(1), VertexId(1), 3);
        assert_eq!(r, vec![vec![VertexId(1)]]);
    }

    #[test]
    fn streaming_oracle_matches_and_stops_early() {
        use pefp_graph::sink::{CollectSink, CountingSink, FirstN};
        let g = pefp_graph::generators::chung_lu(100, 5.0, 2.2, 11).to_csr();
        let (s, t, k) = (VertexId(0), VertexId(40), 5);
        let expected = naive_dfs_enumerate(&g, s, t, k);

        let mut counter = CountingSink::new();
        assert_eq!(naive_dfs_stream(&g, s, t, k, &mut counter), expected.len() as u64);
        assert_eq!(counter.count(), expected.len() as u64);

        let mut collect = CollectSink::new();
        naive_dfs_stream(&g, s, t, k, &mut collect);
        assert_eq!(collect.into_paths(), expected);

        if expected.len() >= 2 {
            let mut first = FirstN::new(2, CollectSink::new());
            let emitted = naive_dfs_stream(&g, s, t, k, &mut first);
            assert_eq!(emitted, 2, "the DFS must stop at the sink's break");
            assert_eq!(first.into_inner().paths(), &expected[..2]);
        }
    }

    #[test]
    fn unreachable_target_gives_empty_result() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        assert!(naive_dfs_enumerate(&g, VertexId(0), VertexId(2), 10).is_empty());
        assert!(naive_bfs_enumerate(&g, VertexId(0), VertexId(2), 10).is_empty());
    }

    #[test]
    fn out_of_range_endpoints_are_rejected_gracefully() {
        let g = diamond();
        assert!(naive_dfs_enumerate(&g, VertexId(9), VertexId(3), 3).is_empty());
        assert!(naive_bfs_enumerate(&g, VertexId(0), VertexId(9), 3).is_empty());
    }

    #[test]
    fn zero_hop_budget_only_allows_trivial_queries() {
        let g = diamond();
        assert!(naive_dfs_enumerate(&g, VertexId(0), VertexId(3), 0).is_empty());
        assert_eq!(naive_dfs_enumerate(&g, VertexId(2), VertexId(2), 0).len(), 1);
    }
}
