//! Query-pair generation.
//!
//! Section VII-A: "We randomly generate 1,000 query pairs {s, t} for each
//! dataset with hop constraint k, where the source vertex s could reach target
//! vertex t in k hops." This module reproduces that sampling procedure with a
//! seedable RNG so every experiment is repeatable.

use pefp_graph::bfs::{khop_bfs, UNREACHED};
use pefp_graph::{CsrGraph, VertexId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One query: enumerate all s-t simple paths with at most `k` hops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryPair {
    /// Source vertex.
    pub s: VertexId,
    /// Target vertex.
    pub t: VertexId,
}

/// Generates `count` query pairs such that `t` is reachable from `s` within
/// `k` hops and `s != t`.
///
/// Sources are sampled uniformly; for each accepted source a target is drawn
/// uniformly from its k-hop forward ball. Sources whose ball contains no other
/// vertex are rejected and re-drawn (bounded retries so pathological graphs
/// cannot loop forever — if the graph has no reachable pair at all the
/// returned vector is simply shorter than requested).
pub fn generate_queries(g: &CsrGraph, k: u32, count: usize, seed: u64) -> Vec<QueryPair> {
    let n = g.num_vertices();
    if n < 2 {
        return Vec::new();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(count);
    let max_attempts = count * 50 + 100;
    let mut attempts = 0;
    while queries.len() < count && attempts < max_attempts {
        attempts += 1;
        let s = VertexId(rng.gen_range(0..n as u32));
        let dist = khop_bfs(g, s, k);
        let reachable: Vec<VertexId> =
            g.vertices().filter(|v| *v != s && dist[v.index()] != UNREACHED).collect();
        if reachable.is_empty() {
            continue;
        }
        let t = *reachable.choose(&mut rng).expect("non-empty");
        queries.push(QueryPair { s, t });
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_graph::generators::chung_lu;

    #[test]
    fn queries_are_reachable_within_k() {
        let g = chung_lu(200, 5.0, 2.2, 1).to_csr();
        let k = 4;
        let qs = generate_queries(&g, k, 25, 7);
        assert_eq!(qs.len(), 25);
        for q in &qs {
            assert_ne!(q.s, q.t);
            let dist = khop_bfs(&g, q.s, k);
            assert_ne!(dist[q.t.index()], UNREACHED, "target not reachable for {q:?}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = chung_lu(150, 5.0, 2.2, 2).to_csr();
        let a = generate_queries(&g, 4, 10, 99);
        let b = generate_queries(&g, 4, 10, 99);
        let c = generate_queries(&g, 4, 10, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn graphs_without_reachable_pairs_return_fewer_queries() {
        let g = CsrGraph::empty(10);
        assert!(generate_queries(&g, 3, 5, 1).is_empty());
        let tiny = CsrGraph::empty(1);
        assert!(generate_queries(&tiny, 3, 5, 1).is_empty());
    }
}
