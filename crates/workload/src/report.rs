//! Report formatting: ASCII tables and figure series.
//!
//! The figure harness prints the same rows/series the paper reports and also
//! serialises them to JSON so `EXPERIMENTS.md` can be regenerated without
//! scraping stdout.

use serde::{Deserialize, Serialize};

/// One plotted line of a figure: an x-axis (usually the hop constraint `k`)
/// and the measured values for one method.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"PEFP"` or `"JOIN"`.
    pub label: String,
    /// X values (e.g. `k = 5..=8`).
    pub x: Vec<f64>,
    /// Y values (milliseconds unless stated otherwise).
    pub y: Vec<f64>,
}

impl Series {
    /// Creates a series, checking that `x` and `y` have equal length.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series x/y length mismatch");
        Series { label: label.into(), x, y }
    }

    /// Element-wise speedup of `baseline` over `self` (baseline time divided
    /// by this series' time) — the blue dotted line in the paper's figures.
    pub fn speedup_against(&self, baseline: &Series) -> Series {
        assert_eq!(self.x, baseline.x, "speedup requires matching x axes");
        let y = baseline
            .y
            .iter()
            .zip(&self.y)
            .map(|(b, a)| if *a > 0.0 { b / a } else { f64::INFINITY })
            .collect();
        Series {
            label: format!("speedup ({} / {})", baseline.label, self.label),
            x: self.x.clone(),
            y,
        }
    }

    /// Geometric mean of the series values (ignoring non-positive entries).
    pub fn geomean(&self) -> f64 {
        let positive: Vec<f64> = self.y.iter().copied().filter(|v| *v > 0.0).collect();
        if positive.is_empty() {
            return 0.0;
        }
        let log_sum: f64 = positive.iter().map(|v| v.ln()).sum();
        (log_sum / positive.len() as f64).exp()
    }
}

/// A simple ASCII table with a caption, used for Table II / Table III style
/// output and for per-figure numeric dumps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableReport {
    /// Caption printed above the table.
    pub caption: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row values (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl TableReport {
    /// Creates an empty table with the given caption and headers.
    pub fn new(caption: impl Into<String>, headers: &[&str]) -> Self {
        TableReport {
            caption: caption.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row; panics if the arity does not match the header.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity must match headers");
        self.rows.push(row);
    }

    /// Renders the table as aligned ASCII text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.caption);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a milliseconds value the way the paper's plots label ticks
/// (`0.42 ms`, `3.1 ms`, `120 ms`, `2.4 s`).
pub fn format_millis(ms: f64) -> String {
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1000.0)
    } else if ms >= 100.0 {
        format!("{ms:.0} ms")
    } else if ms >= 1.0 {
        format!("{ms:.1} ms")
    } else {
        format!("{ms:.3} ms")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_divides_baseline_by_self() {
        let pefp = Series::new("PEFP", vec![3.0, 4.0], vec![1.0, 2.0]);
        let join = Series::new("JOIN", vec![3.0, 4.0], vec![10.0, 40.0]);
        let s = pefp.speedup_against(&join);
        assert_eq!(s.y, vec![10.0, 20.0]);
    }

    #[test]
    fn geomean_ignores_zeros() {
        let s = Series::new("x", vec![1.0, 2.0, 3.0], vec![1.0, 100.0, 0.0]);
        assert!((s.geomean() - 10.0).abs() < 1e-9);
        let empty = Series::new("y", vec![1.0], vec![0.0]);
        assert_eq!(empty.geomean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_is_rejected() {
        Series::new("bad", vec![1.0], vec![1.0, 2.0]);
    }

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TableReport::new("Table II", &["Dataset", "|V|", "|E|"]);
        t.push_row(vec!["Amazon".into(), "334K".into(), "925K".into()]);
        t.push_row(vec!["RT".into(), "6.3K".into(), "147K".into()]);
        let text = t.render();
        assert!(text.contains("Table II"));
        assert!(text.contains("Dataset"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn wrong_arity_row_is_rejected() {
        let mut t = TableReport::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn millis_formatting_covers_the_ranges() {
        assert_eq!(format_millis(0.1234), "0.123 ms");
        assert_eq!(format_millis(12.34), "12.3 ms");
        assert_eq!(format_millis(123.4), "123 ms");
        assert_eq!(format_millis(2400.0), "2.40 s");
    }
}
