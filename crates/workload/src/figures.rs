//! Per-figure experiment drivers.
//!
//! Every table and figure of the paper's evaluation (Section VII) has a
//! driver here that produces the same rows/series, at the reduced scale of
//! the synthetic stand-ins. The `figures` binary in `pefp-bench` is a thin
//! CLI wrapper around [`run_figure`]; the Criterion benches exercise the same
//! underlying runner methods.

use crate::report::{format_millis, Series, TableReport};
use crate::runner::Runner;
use pefp_core::PefpVariant;
use pefp_graph::{Dataset, GraphStats};
use serde::{Deserialize, Serialize};

/// Identifiers of the reproducible tables and figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FigureSpec {
    /// Table II — dataset statistics.
    Table2,
    /// Fig. 8 — query processing time vs `k`, PEFP vs JOIN, all datasets.
    Fig8,
    /// Fig. 9 — preprocessing time vs `k` on four datasets.
    Fig9,
    /// Fig. 10 — total time vs `k` on four datasets.
    Fig10,
    /// Fig. 11 — average total time on all datasets at a fixed `k`.
    Fig11,
    /// Fig. 12 — Pre-BFS ablation.
    Fig12,
    /// Table III — newly generated intermediate paths per path length.
    Table3,
    /// Fig. 13 — Batch-DFS ablation.
    Fig13,
    /// Fig. 14 — caching ablation.
    Fig14,
    /// Fig. 15 — data-separation ablation.
    Fig15,
}

impl FigureSpec {
    /// All reproducible artefacts in paper order.
    pub fn all() -> [FigureSpec; 10] {
        [
            FigureSpec::Table2,
            FigureSpec::Fig8,
            FigureSpec::Fig9,
            FigureSpec::Fig10,
            FigureSpec::Fig11,
            FigureSpec::Fig12,
            FigureSpec::Table3,
            FigureSpec::Fig13,
            FigureSpec::Fig14,
            FigureSpec::Fig15,
        ]
    }

    /// Parses a CLI name such as `fig8`, `table2`, `fig-13`.
    pub fn parse(name: &str) -> Option<FigureSpec> {
        let normal: String =
            name.to_ascii_lowercase().chars().filter(|c| c.is_ascii_alphanumeric()).collect();
        Some(match normal.as_str() {
            "table2" | "tableii" => FigureSpec::Table2,
            "fig8" | "figure8" => FigureSpec::Fig8,
            "fig9" | "figure9" => FigureSpec::Fig9,
            "fig10" | "figure10" => FigureSpec::Fig10,
            "fig11" | "figure11" => FigureSpec::Fig11,
            "fig12" | "figure12" => FigureSpec::Fig12,
            "table3" | "tableiii" => FigureSpec::Table3,
            "fig13" | "figure13" => FigureSpec::Fig13,
            "fig14" | "figure14" => FigureSpec::Fig14,
            "fig15" | "figure15" => FigureSpec::Fig15,
            _ => return None,
        })
    }

    /// Short identifier used in filenames and report headings.
    pub fn id(self) -> &'static str {
        match self {
            FigureSpec::Table2 => "table2",
            FigureSpec::Fig8 => "fig8",
            FigureSpec::Fig9 => "fig9",
            FigureSpec::Fig10 => "fig10",
            FigureSpec::Fig11 => "fig11",
            FigureSpec::Fig12 => "fig12",
            FigureSpec::Table3 => "table3",
            FigureSpec::Fig13 => "fig13",
            FigureSpec::Fig14 => "fig14",
            FigureSpec::Fig15 => "fig15",
        }
    }

    /// The paper's caption, abbreviated.
    pub fn title(self) -> &'static str {
        match self {
            FigureSpec::Table2 => "Table II: statistics of datasets (synthetic stand-ins)",
            FigureSpec::Fig8 => "Fig. 8: query processing time of tuning k for all datasets",
            FigureSpec::Fig9 => "Fig. 9: preprocessing time of tuning k",
            FigureSpec::Fig10 => "Fig. 10: total time of tuning k",
            FigureSpec::Fig11 => "Fig. 11: average total time of all datasets",
            FigureSpec::Fig12 => "Fig. 12: evaluation of Pre-BFS technique",
            FigureSpec::Table3 => "Table III: newly generated intermediate paths per path length",
            FigureSpec::Fig13 => "Fig. 13: evaluation of Batch-DFS technique",
            FigureSpec::Fig14 => "Fig. 14: evaluation of caching technique",
            FigureSpec::Fig15 => "Fig. 15: evaluation of data separation technique",
        }
    }
}

/// One panel of a figure: a dataset with its measured series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigurePanel {
    /// Dataset code (e.g. `"AM"`).
    pub dataset: String,
    /// Measured series (e.g. JOIN, PEFP and the speedup line).
    pub series: Vec<Series>,
}

/// Result of regenerating one table or figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Figure identifier (`fig8`, `table2`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Per-dataset panels (empty for pure tables).
    pub panels: Vec<FigurePanel>,
    /// Tabular renderings (always at least one, so every figure also has a
    /// textual form for EXPERIMENTS.md).
    pub tables: Vec<TableReport>,
}

impl FigureResult {
    /// Renders all tables of the figure as text.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }
}

/// Runs one figure/table experiment against the given runner.
pub fn run_figure(spec: FigureSpec, runner: &mut Runner) -> FigureResult {
    match spec {
        FigureSpec::Table2 => table2(runner),
        FigureSpec::Fig8 => comparison_figure(spec, runner, &Dataset::all(), Metric::Query),
        FigureSpec::Fig9 => comparison_figure(spec, runner, &four_datasets(), Metric::Preprocess),
        FigureSpec::Fig10 => comparison_figure(spec, runner, &four_datasets(), Metric::Total),
        FigureSpec::Fig11 => fig11(runner),
        FigureSpec::Fig12 => ablation_figure(
            spec,
            runner,
            &[Dataset::BerkStan, Dataset::Baidu],
            PefpVariant::NoPreBfs,
        ),
        FigureSpec::Table3 => table3(runner),
        FigureSpec::Fig13 => ablation_figure(
            spec,
            runner,
            &[Dataset::BerkStan, Dataset::Baidu],
            PefpVariant::NoBatchDfs,
        ),
        FigureSpec::Fig14 => ablation_figure(
            spec,
            runner,
            &[Dataset::Reactome, Dataset::WebGoogle],
            PefpVariant::NoCache,
        ),
        FigureSpec::Fig15 => ablation_figure(
            spec,
            runner,
            &[Dataset::Reactome, Dataset::WebGoogle],
            PefpVariant::NoDataSep,
        ),
    }
}

/// The four datasets used by Fig. 9 and Fig. 10.
fn four_datasets() -> [Dataset; 4] {
    [Dataset::Amazon, Dataset::WikiTalk, Dataset::Skitter, Dataset::TwitterSocial]
}

/// Which timing column a comparison figure plots.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Metric {
    Query,
    Preprocess,
    Total,
}

/// Hop constraints evaluated for one dataset, filtered to the harness budget.
fn k_values(runner: &mut Runner, dataset: Dataset) -> Vec<u32> {
    let (lo, hi) = dataset.spec().k_range;
    (lo..=hi).filter(|&k| !runner.exceeds_budget(dataset, k)).collect()
}

fn table2(runner: &mut Runner) -> FigureResult {
    let mut table = TableReport::new(
        "Synthetic stand-in statistics next to the published Table II values",
        &[
            "Code",
            "Name",
            "|V|",
            "|E|",
            "d_avg",
            "D",
            "D90",
            "paper |V|",
            "paper |E|",
            "paper d_avg",
            "paper D",
            "paper D90",
        ],
    );
    for dataset in Dataset::all() {
        let spec = dataset.spec();
        let g = runner.graph(dataset).clone();
        let stats = GraphStats::compute(&g, 24);
        table.push_row(vec![
            spec.code.to_string(),
            spec.name.to_string(),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            format!("{:.2}", stats.avg_degree),
            stats.diameter_estimate.to_string(),
            format!("{:.2}", stats.effective_diameter_90),
            spec.paper.num_vertices.to_string(),
            spec.paper.num_edges.to_string(),
            format!("{:.2}", spec.paper.avg_degree),
            spec.paper.diameter.to_string(),
            format!("{:.2}", spec.paper.effective_diameter_90),
        ]);
    }
    FigureResult {
        id: FigureSpec::Table2.id().to_string(),
        title: FigureSpec::Table2.title().to_string(),
        panels: Vec::new(),
        tables: vec![table],
    }
}

fn comparison_figure(
    spec: FigureSpec,
    runner: &mut Runner,
    datasets: &[Dataset],
    metric: Metric,
) -> FigureResult {
    let metric_name = match metric {
        Metric::Query => "query time",
        Metric::Preprocess => "preprocessing time",
        Metric::Total => "total time",
    };
    let mut panels = Vec::new();
    let mut table = TableReport::new(
        format!("{} — average {metric_name} per query (ms)", spec.title()),
        &["Dataset", "k", "JOIN", "PEFP", "speedup"],
    );
    for &dataset in datasets {
        let ks = k_values(runner, dataset);
        let mut join_y = Vec::new();
        let mut pefp_y = Vec::new();
        let mut xs = Vec::new();
        for &k in &ks {
            let Some(cmp) = runner.compare(dataset, k) else { continue };
            let (join_v, pefp_v) = match metric {
                Metric::Query => (cmp.join.query_ms, cmp.pefp.query_ms),
                Metric::Preprocess => (cmp.join.preprocess_ms, cmp.pefp.preprocess_ms),
                Metric::Total => (cmp.join.total_ms(), cmp.pefp.total_ms()),
            };
            xs.push(k as f64);
            join_y.push(join_v);
            pefp_y.push(pefp_v);
            let speedup = if pefp_v > 0.0 { join_v / pefp_v } else { f64::INFINITY };
            table.push_row(vec![
                dataset.code().to_string(),
                k.to_string(),
                format_millis(join_v),
                format_millis(pefp_v),
                format!("{speedup:.1}x"),
            ]);
        }
        if xs.is_empty() {
            continue;
        }
        let join_series = Series::new("JOIN", xs.clone(), join_y);
        let pefp_series = Series::new("PEFP", xs.clone(), pefp_y);
        let speedup = pefp_series.speedup_against(&join_series);
        panels.push(FigurePanel {
            dataset: dataset.code().to_string(),
            series: vec![join_series, pefp_series, speedup],
        });
    }
    FigureResult {
        id: spec.id().to_string(),
        title: spec.title().to_string(),
        panels,
        tables: vec![table],
    }
}

fn fig11(runner: &mut Runner) -> FigureResult {
    let mut table = TableReport::new(
        "Fig. 11 — average total time per query (preprocess + query, ms); k = 5 (8 for AM/TS)",
        &[
            "Dataset",
            "k",
            "JOIN pre",
            "JOIN query",
            "JOIN total",
            "PEFP pre",
            "PEFP query",
            "PEFP total",
            "speedup",
        ],
    );
    let mut panels = Vec::new();
    for dataset in Dataset::all() {
        // The paper uses k = 8 for the two sparse graphs (AM, TS) and 5 elsewhere.
        let k = match dataset {
            Dataset::Amazon | Dataset::TwitterSocial => 8,
            _ => 5,
        };
        let k = if runner.exceeds_budget(dataset, k) {
            // Fall back to the largest affordable k for that dataset.
            match k_values(runner, dataset).last() {
                Some(&k) => k,
                None => continue,
            }
        } else {
            k
        };
        let Some(cmp) = runner.compare(dataset, k) else { continue };
        table.push_row(vec![
            dataset.code().to_string(),
            k.to_string(),
            format_millis(cmp.join.preprocess_ms),
            format_millis(cmp.join.query_ms),
            format_millis(cmp.join.total_ms()),
            format_millis(cmp.pefp.preprocess_ms),
            format_millis(cmp.pefp.query_ms),
            format_millis(cmp.pefp.total_ms()),
            format!("{:.1}x", cmp.total_speedup()),
        ]);
        panels.push(FigurePanel {
            dataset: dataset.code().to_string(),
            series: vec![
                Series::new("JOIN total", vec![k as f64], vec![cmp.join.total_ms()]),
                Series::new("PEFP total", vec![k as f64], vec![cmp.pefp.total_ms()]),
            ],
        });
    }
    FigureResult {
        id: FigureSpec::Fig11.id().to_string(),
        title: FigureSpec::Fig11.title().to_string(),
        panels,
        tables: vec![table],
    }
}

fn ablation_figure(
    spec: FigureSpec,
    runner: &mut Runner,
    datasets: &[Dataset],
    degraded: PefpVariant,
) -> FigureResult {
    let mut panels = Vec::new();
    let mut table = TableReport::new(
        format!("{} — simulated device query time per query (ms)", spec.title()),
        &["Dataset", "k", degraded.name(), "PEFP", "speedup"],
    );
    for &dataset in datasets {
        let ks = k_values(runner, dataset);
        let mut xs = Vec::new();
        let mut full_y = Vec::new();
        let mut degraded_y = Vec::new();
        for &k in &ks {
            let full = runner.time_pefp_variant(dataset, k, PefpVariant::Full);
            let other = runner.time_pefp_variant(dataset, k, degraded);
            // The Pre-BFS ablation is reported on total time (its benefit
            // includes preprocessing and transfer); the others on query time.
            let (full_v, other_v) = if degraded == PefpVariant::NoPreBfs {
                (full.total_ms(), other.total_ms())
            } else {
                (full.query_ms, other.query_ms)
            };
            xs.push(k as f64);
            full_y.push(full_v);
            degraded_y.push(other_v);
            let speedup = if full_v > 0.0 { other_v / full_v } else { f64::INFINITY };
            table.push_row(vec![
                dataset.code().to_string(),
                k.to_string(),
                format_millis(other_v),
                format_millis(full_v),
                format!("{speedup:.1}x"),
            ]);
        }
        if xs.is_empty() {
            continue;
        }
        let full_series = Series::new("PEFP", xs.clone(), full_y);
        let degraded_series = Series::new(degraded.name(), xs.clone(), degraded_y);
        let speedup = full_series.speedup_against(&degraded_series);
        panels.push(FigurePanel {
            dataset: dataset.code().to_string(),
            series: vec![degraded_series, full_series, speedup],
        });
    }
    FigureResult {
        id: spec.id().to_string(),
        title: spec.title().to_string(),
        panels,
        tables: vec![table],
    }
}

fn table3(runner: &mut Runner) -> FigureResult {
    let k = 8;
    let samples = (runner.config.queries_per_point * 10).max(50);
    let datasets = [Dataset::Baidu, Dataset::BerkStan, Dataset::WikiTalk, Dataset::LiveJournal];
    let mut headers: Vec<String> = vec!["Dataset".to_string()];
    for l in 2..k {
        headers.push(format!("l = {l}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TableReport::new(
        format!(
            "Table III — newly generated intermediate paths when expanding {samples} paths of length l (k = {k})"
        ),
        &header_refs,
    );
    for dataset in datasets {
        let rows = runner.intermediate_path_counts(dataset, k, samples);
        let mut cells = vec![dataset.code().to_string()];
        for l in 2..k {
            let value = rows.iter().find(|(ll, _)| *ll == l).map(|(_, c)| *c).unwrap_or(0);
            cells.push(value.to_string());
        }
        table.push_row(cells);
    }
    FigureResult {
        id: FigureSpec::Table3.id().to_string(),
        title: FigureSpec::Table3.title().to_string(),
        panels: Vec::new(),
        tables: vec![table],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentConfig;
    use pefp_graph::ScaleProfile;

    fn fast_runner() -> Runner {
        Runner::new(ExperimentConfig {
            scale: ScaleProfile::Tiny,
            queries_per_point: 2,
            max_expected_paths: 5.0e4,
            ..ExperimentConfig::default()
        })
    }

    #[test]
    fn spec_parsing_round_trips() {
        for spec in FigureSpec::all() {
            assert_eq!(FigureSpec::parse(spec.id()), Some(spec), "{}", spec.id());
        }
        assert_eq!(FigureSpec::parse("Figure 8"), Some(FigureSpec::Fig8));
        assert_eq!(FigureSpec::parse("TABLE-III"), Some(FigureSpec::Table3));
        assert_eq!(FigureSpec::parse("nonsense"), None);
    }

    #[test]
    fn table2_lists_all_datasets() {
        let mut runner = fast_runner();
        let result = run_figure(FigureSpec::Table2, &mut runner);
        assert_eq!(result.tables[0].rows.len(), 12);
        assert!(result.render().contains("Reactome"));
    }

    #[test]
    fn fig9_produces_panels_with_speedups() {
        let mut runner = fast_runner();
        let result = run_figure(FigureSpec::Fig9, &mut runner);
        assert!(!result.panels.is_empty());
        for panel in &result.panels {
            assert_eq!(panel.series.len(), 3);
            assert!(panel.series[2].label.contains("speedup"));
        }
    }

    #[test]
    fn fig15_ablation_never_beats_the_full_system() {
        let mut runner = fast_runner();
        let result = run_figure(FigureSpec::Fig15, &mut runner);
        for panel in &result.panels {
            let degraded = &panel.series[0];
            let full = &panel.series[1];
            for (d, f) in degraded.y.iter().zip(&full.y) {
                assert!(d >= f, "data separation should not slow the system down ({d} < {f})");
            }
        }
    }
}
