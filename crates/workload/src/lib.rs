//! # pefp-workload
//!
//! Experiment infrastructure for the PEFP reproduction: query-pair generation
//! matching the paper's methodology, a runner that times PEFP (and its
//! ablation variants) against the JOIN baseline, and per-figure drivers that
//! regenerate every table and figure of the paper's evaluation (Section VII).
//!
//! The crate deliberately mirrors the paper's measurement conventions:
//!
//! * `T1` — preprocessing time (host wall-clock for both systems),
//! * `T2` — query processing time (simulated device time for PEFP, host
//!   wall-clock for JOIN),
//! * `T = T1 + T2` — total time,
//! * 1 000 random reachable `(s, t)` pairs per dataset in the paper; the
//!   number is configurable here so the suite stays laptop-sized.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod json;
pub mod queries;
pub mod report;
pub mod routing_io;
pub mod runner;

pub use figures::{FigureResult, FigureSpec};
pub use json::{JsonValue, ToJson};
pub use queries::{generate_queries, QueryPair};
pub use report::{Series, TableReport};
pub use routing_io::{parse_routing_table, routing_table_from_json};
pub use runner::{ExperimentConfig, MethodTiming, QueryComparison, Runner};
