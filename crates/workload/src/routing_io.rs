//! JSON (de)serialisation for the adaptive engine router.
//!
//! `pefp-core` owns the routing *logic* ([`RoutingTable`], [`RouteDecision`])
//! but cannot depend on this crate, so the hand-rolled JSON round-trip for
//! the committed `docs/routing_table.json` — and the rendering the server's
//! `EXPLAIN` command ships over the wire — live here, next to the rest of the
//! [`crate::json`] vocabulary. No serde: the offline shims cannot serialise,
//! so the file format is plain [`JsonValue`] like every other artefact.

use crate::json::{JsonValue, ToJson};
use pefp_core::routing::{RouteDecision, RoutingTable};

impl ToJson for RoutingTable {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("version", JsonValue::Number(self.version as f64)),
            ("bcdfs_us_per_unit", JsonValue::Number(self.bcdfs_us_per_unit)),
            ("bcdfs_fixed_us", JsonValue::Number(self.bcdfs_fixed_us)),
            ("join_us_per_unit", JsonValue::Number(self.join_us_per_unit)),
            ("join_fixed_us", JsonValue::Number(self.join_fixed_us)),
            ("device_us_per_unit", JsonValue::Number(self.device_us_per_unit)),
            ("device_fixed_us", JsonValue::Number(self.device_fixed_us)),
            ("transfer_us_per_kib", JsonValue::Number(self.transfer_us_per_kib)),
            ("cpu_work_ceiling", JsonValue::Number(self.cpu_work_ceiling)),
            ("multi_cu_work_cutoff", JsonValue::Number(self.multi_cu_work_cutoff)),
            ("multi_cu_efficiency", JsonValue::Number(self.multi_cu_efficiency)),
        ])
    }
}

/// Parses a [`RoutingTable`] from its committed JSON form. Every field is
/// required; unknown keys are rejected so a typo'd calibration cannot
/// silently fall back to a default coefficient.
pub fn routing_table_from_json(value: &JsonValue) -> Result<RoutingTable, String> {
    let JsonValue::Object(pairs) = value else {
        return Err("routing table must be a JSON object".to_string());
    };
    let known = [
        "version",
        "bcdfs_us_per_unit",
        "bcdfs_fixed_us",
        "join_us_per_unit",
        "join_fixed_us",
        "device_us_per_unit",
        "device_fixed_us",
        "transfer_us_per_kib",
        "cpu_work_ceiling",
        "multi_cu_work_cutoff",
        "multi_cu_efficiency",
    ];
    for (key, _) in pairs {
        if !known.contains(&key.as_str()) {
            return Err(format!("unknown routing table key {key:?}"));
        }
    }
    let number = |key: &str| -> Result<f64, String> {
        value
            .get(key)
            .and_then(|v| v.as_number())
            .ok_or_else(|| format!("routing table is missing numeric key {key:?}"))
    };
    let table = RoutingTable {
        version: number("version")? as u32,
        bcdfs_us_per_unit: number("bcdfs_us_per_unit")?,
        bcdfs_fixed_us: number("bcdfs_fixed_us")?,
        join_us_per_unit: number("join_us_per_unit")?,
        join_fixed_us: number("join_fixed_us")?,
        device_us_per_unit: number("device_us_per_unit")?,
        device_fixed_us: number("device_fixed_us")?,
        transfer_us_per_kib: number("transfer_us_per_kib")?,
        cpu_work_ceiling: number("cpu_work_ceiling")?,
        multi_cu_work_cutoff: number("multi_cu_work_cutoff")?,
        multi_cu_efficiency: number("multi_cu_efficiency")?,
    };
    let problems = table.validate();
    if !problems.is_empty() {
        return Err(format!("invalid routing table: {}", problems.join("; ")));
    }
    Ok(table)
}

/// Parses a [`RoutingTable`] from JSON text (the contents of
/// `docs/routing_table.json`).
pub fn parse_routing_table(text: &str) -> Result<RoutingTable, String> {
    let value = JsonValue::parse(text).map_err(|e| format!("routing table JSON: {e}"))?;
    routing_table_from_json(&value)
}

impl ToJson for RouteDecision {
    /// The `EXPLAIN` wire format: decision, predicted per-engine costs, the
    /// full feature vector and the rationale, as one JSON object.
    fn to_json(&self) -> JsonValue {
        let f = &self.features;
        JsonValue::object(vec![
            ("engine", JsonValue::String(self.choice.name().to_string())),
            ("cpu", JsonValue::Bool(self.choice.is_cpu())),
            ("cost_estimate_us", JsonValue::Number(self.cost_estimate_us)),
            (
                "costs_us",
                JsonValue::object(vec![
                    ("bc_dfs", JsonValue::Number(self.costs.bc_dfs_us)),
                    ("join", JsonValue::Number(self.costs.join_us)),
                    ("device", JsonValue::Number(self.costs.device_us)),
                    ("device_multi_cu", JsonValue::Number(self.costs.device_multi_us)),
                ]),
            ),
            (
                "features",
                JsonValue::object(vec![
                    ("vertices", JsonValue::Number(f.vertices as f64)),
                    ("edges", JsonValue::Number(f.edges as f64)),
                    ("k", JsonValue::Number(f.k as f64)),
                    ("transfer_bytes", JsonValue::Number(f.transfer_bytes as f64)),
                    ("feasible", JsonValue::Bool(f.feasible)),
                    ("max_results", JsonValue::Number(f.estimate.max_results as f64)),
                    (
                        "max_intermediate_paths",
                        JsonValue::Number(f.estimate.max_intermediate_paths as f64),
                    ),
                    ("saturated", JsonValue::Bool(f.estimate.saturated)),
                    ("dfs_work", JsonValue::Number(f.dfs_work)),
                    ("join_work", JsonValue::Number(f.join_work)),
                    (
                        "barrier_histogram",
                        JsonValue::numbers(
                            &f.barrier_histogram.iter().map(|&c| c as f64).collect::<Vec<_>>(),
                        ),
                    ),
                ]),
            ),
            ("rationale", JsonValue::strings(&self.rationale)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_table_round_trips() {
        let table = RoutingTable::builtin();
        let text = table.to_json().render_pretty();
        let parsed = parse_routing_table(&text).expect("round trip");
        assert_eq!(parsed, table);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let mut value = RoutingTable::builtin().to_json();
        if let JsonValue::Object(pairs) = &mut value {
            pairs.push(("typo_coefficient".to_string(), JsonValue::Number(1.0)));
        }
        assert!(routing_table_from_json(&value).is_err());
    }

    #[test]
    fn missing_keys_are_rejected() {
        let mut value = RoutingTable::builtin().to_json();
        if let JsonValue::Object(pairs) = &mut value {
            pairs.retain(|(k, _)| k != "device_us_per_unit");
        }
        let err = routing_table_from_json(&value).unwrap_err();
        assert!(err.contains("device_us_per_unit"), "{err}");
    }

    #[test]
    fn invalid_coefficients_are_rejected() {
        let mut table = RoutingTable::builtin();
        table.device_us_per_unit = -1.0;
        let text = table.to_json().render();
        assert!(parse_routing_table(&text).is_err());
    }

    #[test]
    fn decisions_render_as_real_json() {
        use pefp_core::preprocess::pre_bfs;
        use pefp_core::routing::{route_query, RouteContext};
        use pefp_graph::{CsrGraph, VertexId};
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let prepared = pre_bfs(&g, VertexId(0), VertexId(3), 3);
        let decision = route_query(
            &prepared,
            &RoutingTable::builtin(),
            &RouteContext { compute_units: 2, charge_banked: false },
        );
        let rendered = decision.to_json().render();
        let parsed = JsonValue::parse(&rendered).expect("EXPLAIN output must be valid JSON");
        assert_eq!(parsed.get("engine").and_then(|v| v.as_str()), Some(decision.choice.name()));
        assert!(parsed.get("rationale").and_then(|v| v.as_array()).is_some());
    }
}
