//! Experiment runner: times PEFP variants and the JOIN baseline on the
//! dataset stand-ins, mirroring the paper's measurement methodology.

use crate::queries::{generate_queries, QueryPair};
use pefp_baselines::Join;
use pefp_core::{prepare_with, run_prepared, PefpVariant, PrepareContext};
use pefp_fpga::DeviceConfig;
use pefp_graph::{CsrGraph, Dataset, ScaleProfile, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Configuration shared by all experiments of one harness invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Scale of the dataset stand-ins.
    pub scale: ScaleProfile,
    /// Number of query pairs averaged per (dataset, k) point. The paper uses
    /// 1 000; the default here keeps the full figure sweep laptop-sized.
    pub queries_per_point: usize,
    /// RNG seed for query generation.
    pub seed: u64,
    /// Device profile used for the simulated PEFP runs.
    pub device: DeviceConfig,
    /// A (dataset, k) point whose *expected* result count `d_avg^k / |V|`
    /// exceeds this cap is skipped and reported as `INF`, playing the role of
    /// the paper's 10 000 s timeout.
    pub max_expected_paths: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: ScaleProfile::Tiny,
            queries_per_point: 10,
            seed: 0x5EED,
            device: DeviceConfig::alveo_u200(),
            max_expected_paths: 3.0e5,
        }
    }
}

/// Timing of one method averaged over the query set, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MethodTiming {
    /// Average preprocessing time (`T1`).
    pub preprocess_ms: f64,
    /// Average query processing time (`T2`).
    pub query_ms: f64,
    /// Average number of result paths per query.
    pub avg_paths: f64,
}

impl MethodTiming {
    /// Average total time `T = T1 + T2`.
    pub fn total_ms(&self) -> f64 {
        self.preprocess_ms + self.query_ms
    }
}

/// A PEFP-vs-JOIN comparison at one (dataset, k) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryComparison {
    /// PEFP timings (simulated device query time).
    pub pefp: MethodTiming,
    /// JOIN timings (host wall-clock).
    pub join: MethodTiming,
}

impl QueryComparison {
    /// Query-time speedup of PEFP over JOIN.
    pub fn query_speedup(&self) -> f64 {
        safe_ratio(self.join.query_ms, self.pefp.query_ms)
    }

    /// Preprocessing-time speedup of PEFP over JOIN.
    pub fn preprocess_speedup(&self) -> f64 {
        safe_ratio(self.join.preprocess_ms, self.pefp.preprocess_ms)
    }

    /// Total-time speedup of PEFP over JOIN.
    pub fn total_speedup(&self) -> f64 {
        safe_ratio(self.join.total_ms(), self.pefp.total_ms())
    }
}

fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        f64::INFINITY
    } else {
        num / den
    }
}

/// The experiment runner. Generated graphs and query sets are cached so a
/// figure that sweeps `k` reuses the same stand-in and workload.
pub struct Runner {
    /// Harness configuration.
    pub config: ExperimentConfig,
    graphs: HashMap<Dataset, Arc<CsrGraph>>,
    queries: HashMap<(Dataset, u32), Vec<QueryPair>>,
}

impl Runner {
    /// Creates a runner with the given configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        Runner { config, graphs: HashMap::new(), queries: HashMap::new() }
    }

    /// Returns (generating and caching on first use) the stand-in graph for a
    /// dataset at the configured scale. Shared, so callers clone the `Arc`
    /// rather than the CSR arrays.
    pub fn graph(&mut self, dataset: Dataset) -> &Arc<CsrGraph> {
        let scale = self.config.scale;
        self.graphs.entry(dataset).or_insert_with(|| Arc::new(dataset.generate(scale).to_csr()))
    }

    /// Returns the cached query workload for `(dataset, k)`.
    pub fn queries(&mut self, dataset: Dataset, k: u32) -> Vec<QueryPair> {
        if !self.queries.contains_key(&(dataset, k)) {
            let count = self.config.queries_per_point;
            let seed = self.config.seed ^ (dataset.spec().seed << 8) ^ k as u64;
            let g = self.graph(dataset).clone();
            let qs = generate_queries(&g, k, count, seed);
            self.queries.insert((dataset, k), qs);
        }
        self.queries[&(dataset, k)].clone()
    }

    /// Whether the (dataset, k) point exceeds the harness budget and should be
    /// reported as `INF` (the paper's 10 000 s timeout analogue).
    pub fn exceeds_budget(&mut self, dataset: Dataset, k: u32) -> bool {
        let g = self.graph(dataset);
        let n = g.num_vertices() as f64;
        let d = g.num_edges() as f64 / n.max(1.0);
        let expected = d.powi(k as i32) / n.max(1.0);
        expected > self.config.max_expected_paths
    }

    /// Times one PEFP variant at `(dataset, k)`, averaged over the workload.
    /// Result paths are only counted, not materialised.
    pub fn time_pefp_variant(
        &mut self,
        dataset: Dataset,
        k: u32,
        variant: PefpVariant,
    ) -> MethodTiming {
        let queries = self.queries(dataset, k);
        let g = self.graph(dataset).clone();
        let device = self.config.device.clone();
        let mut options = variant.engine_options();
        options.collect_paths = false;
        let mut acc = MethodTiming::default();
        if queries.is_empty() {
            return acc;
        }
        // One context for the whole point: BFS scratch and the reverse CSR
        // amortise across the query set, like a real batch server.
        let mut ctx = PrepareContext::new();
        for q in &queries {
            let prep = prepare_with(&mut ctx, &g, q.s, q.t, k, variant);
            let result = run_prepared(&prep, options.clone(), &device);
            acc.preprocess_ms += result.preprocess_millis;
            acc.query_ms += result.query_millis;
            acc.avg_paths += result.num_paths as f64;
        }
        let n = queries.len() as f64;
        acc.preprocess_ms /= n;
        acc.query_ms /= n;
        acc.avg_paths /= n;
        acc
    }

    /// Times the JOIN baseline at `(dataset, k)`, averaged over the workload.
    pub fn time_join(&mut self, dataset: Dataset, k: u32) -> MethodTiming {
        let queries = self.queries(dataset, k);
        let g = self.graph(dataset).clone();
        let mut acc = MethodTiming::default();
        if queries.is_empty() {
            return acc;
        }
        for q in &queries {
            let mut join = Join::new();
            let t0 = Instant::now();
            let prep = join.preprocess(&g, q.s, q.t, k);
            acc.preprocess_ms += t0.elapsed().as_secs_f64() * 1e3;
            let t1 = Instant::now();
            let paths = join.query(&g, q.s, q.t, k, &prep);
            acc.query_ms += t1.elapsed().as_secs_f64() * 1e3;
            acc.avg_paths += paths.len() as f64;
        }
        let n = queries.len() as f64;
        acc.preprocess_ms /= n;
        acc.query_ms /= n;
        acc.avg_paths /= n;
        acc
    }

    /// Full PEFP-vs-JOIN comparison at one point, or `None` when the point
    /// exceeds the harness budget.
    pub fn compare(&mut self, dataset: Dataset, k: u32) -> Option<QueryComparison> {
        if self.exceeds_budget(dataset, k) {
            return None;
        }
        let pefp = self.time_pefp_variant(dataset, k, PefpVariant::Full);
        let join = self.time_join(dataset, k);
        Some(QueryComparison { pefp, join })
    }

    /// Table III experiment: the number of newly generated intermediate paths
    /// produced by one-hop expansion of `samples` random simple paths of each
    /// length `l ∈ [2, k-1]`, under the barrier of a random query.
    pub fn intermediate_path_counts(
        &mut self,
        dataset: Dataset,
        k: u32,
        samples: usize,
    ) -> Vec<(u32, u64)> {
        use pefp_core::{pre_bfs, TempPath};
        use rand::{Rng, SeedableRng};
        let g = self.graph(dataset).clone();
        let queries = self.queries(dataset, k);
        let Some(q) = queries.first() else { return Vec::new() };
        let prep = pre_bfs(&g, q.s, q.t, k);
        if !prep.feasible || prep.graph.num_edges() == 0 {
            return Vec::new();
        }
        let sub = &prep.graph;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(self.config.seed ^ 0xA11CE);
        let mut out = Vec::new();
        for l in 2..k {
            let mut generated = 0u64;
            let mut found = 0usize;
            let mut attempts = 0usize;
            while found < samples && attempts < samples * 40 {
                attempts += 1;
                // Random simple walk of length l starting at the query source
                // (falling back to a random vertex when the source stalls).
                let start = if attempts.is_multiple_of(4) {
                    VertexId(rng.gen_range(0..sub.num_vertices() as u32))
                } else {
                    prep.s
                };
                let Some(path) = random_simple_walk(sub, start, l, &mut rng) else { continue };
                found += 1;
                // One-hop expansion with the verification of Algorithm 2.
                let mut temp = TempPath::initial(sub, path[0]);
                for &v in &path[1..] {
                    temp = temp.extended(sub, v);
                }
                for &succ in sub.successors(*path.last().expect("non-empty")) {
                    let verdict = pefp_core::engine::verify::verify(
                        &temp,
                        succ,
                        prep.t,
                        k,
                        prep.barrier[succ.index()],
                    );
                    if verdict == pefp_core::engine::verify::Verdict::Valid {
                        generated += 1;
                    }
                }
            }
            out.push((l, generated));
        }
        out
    }
}

/// Attempts one random simple walk of exactly `len` hops from `start`.
fn random_simple_walk<R: rand::Rng>(
    g: &CsrGraph,
    start: VertexId,
    len: u32,
    rng: &mut R,
) -> Option<Vec<VertexId>> {
    let mut path = vec![start];
    let mut current = start;
    for _ in 0..len {
        let succs = g.successors(current);
        if succs.is_empty() {
            return None;
        }
        // A few tries to step to an unvisited successor.
        let mut next = None;
        for _ in 0..8 {
            let candidate = succs[rng.gen_range(0..succs.len())];
            if !path.contains(&candidate) {
                next = Some(candidate);
                break;
            }
        }
        let next = next?;
        path.push(next);
        current = next;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_runner() -> Runner {
        Runner::new(ExperimentConfig {
            scale: ScaleProfile::Tiny,
            queries_per_point: 3,
            ..ExperimentConfig::default()
        })
    }

    #[test]
    fn graphs_and_queries_are_cached() {
        let mut r = tiny_runner();
        let v1 = r.graph(Dataset::WikiTalk).num_vertices();
        let v2 = r.graph(Dataset::WikiTalk).num_vertices();
        assert_eq!(v1, v2);
        let q1 = r.queries(Dataset::WikiTalk, 3);
        let q2 = r.queries(Dataset::WikiTalk, 3);
        assert_eq!(q1, q2);
        assert_eq!(q1.len(), 3);
    }

    #[test]
    fn comparison_produces_positive_timings() {
        let mut r = tiny_runner();
        let cmp = r.compare(Dataset::WikiTalk, 3).expect("within budget");
        assert!(cmp.pefp.query_ms > 0.0);
        assert!(cmp.join.query_ms > 0.0);
        assert!(cmp.pefp.preprocess_ms >= 0.0);
        // Both systems enumerate the same number of paths on average.
        assert!((cmp.pefp.avg_paths - cmp.join.avg_paths).abs() < 1e-9);
    }

    #[test]
    fn budget_guard_trips_for_excessive_k() {
        let mut r = tiny_runner();
        assert!(!r.exceeds_budget(Dataset::WikiTalk, 3));
        assert!(r.exceeds_budget(Dataset::Reactome, 12));
    }

    #[test]
    fn variant_timing_runs_for_every_variant() {
        let mut r = tiny_runner();
        for variant in PefpVariant::all() {
            let timing = r.time_pefp_variant(Dataset::TwitterSocial, 4, variant);
            assert!(timing.query_ms > 0.0, "{} produced no device time", variant.name());
        }
    }

    #[test]
    fn intermediate_path_counts_drop_to_zero_at_k_minus_one() {
        let mut r = tiny_runner();
        let rows = r.intermediate_path_counts(Dataset::WikiTalk, 6, 50);
        assert!(!rows.is_empty());
        let (last_l, last_count) = *rows.last().expect("non-empty");
        assert_eq!(last_l, 5);
        assert_eq!(last_count, 0, "expanding (k-1)-hop paths must generate no intermediates");
    }
}
