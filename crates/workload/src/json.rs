//! Hand-rolled JSON for the figure/report artefacts.
//!
//! The build environment serves `serde`/`serde_json` from offline shims whose
//! derives are no-ops, so `serde_json::to_string_pretty` falls back to Rust
//! `{:#?}` debug text — structured, but not machine-readable. The figure
//! harness needs *real* JSON (CI parses it, EXPERIMENTS.md regeneration diffs
//! it), so this module provides a small, dependency-free JSON document model:
//!
//! * [`JsonValue`] — build documents programmatically and [`JsonValue::render`]
//!   them (RFC 8259 escaping, stable key order, pretty or compact);
//! * [`JsonValue::parse`] — a strict recursive-descent parser, used by the
//!   tests and the bench-regression gate to read the artefacts back;
//! * [`ToJson`] — implemented for the figure/report types, so
//!   `figures --json` emits documents any JSON tool can consume.
//!
//! Numbers are stored as `f64` (ample for cycle counts below 2^53 and every
//! timing the harness produces); non-finite floats render as `null`, matching
//! `serde_json`'s behaviour.

use crate::figures::{FigurePanel, FigureResult};
use crate::report::{Series, TableReport};
use std::fmt::Write as _;

/// A JSON document: the usual six value kinds, with objects as ordered
/// key/value pairs (insertion order is preserved when rendering).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for an array of strings.
    pub fn strings<S: AsRef<str>>(items: &[S]) -> JsonValue {
        JsonValue::Array(items.iter().map(|s| JsonValue::String(s.as_ref().to_string())).collect())
    }

    /// Convenience constructor for an array of numbers.
    pub fn numbers(items: &[f64]) -> JsonValue {
        JsonValue::Array(items.iter().map(|&v| JsonValue::Number(v)).collect())
    }

    /// Looks a key up in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the document as pretty JSON (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (newline, pad, pad_close, colon) = match indent {
            Some(width) => ("\n", " ".repeat(width * (depth + 1)), " ".repeat(width * depth), ": "),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => write_number(out, *v),
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(newline);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(newline);
                out.push_str(&pad_close);
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(newline);
                    out.push_str(&pad);
                    write_escaped(out, key);
                    out.push_str(colon);
                    value.write(out, indent, depth + 1);
                }
                out.push_str(newline);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON text into a document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// Parse error with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn write_number(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(JsonValue::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(JsonValue::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(JsonValue::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our artefacts;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.error("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.error("invalid UTF-8 in string"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| JsonError { message: format!("invalid number {text:?}"), offset: start })
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_whitespace();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xf0 => 4,
        b if b >= 0xe0 => 3,
        _ => 2,
    }
}

/// Conversion into the [`JsonValue`] document model.
pub trait ToJson {
    /// Builds the JSON representation of `self`.
    fn to_json(&self) -> JsonValue;
}

impl ToJson for Series {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("label", JsonValue::String(self.label.clone())),
            ("x", JsonValue::numbers(&self.x)),
            ("y", JsonValue::numbers(&self.y)),
        ])
    }
}

impl ToJson for TableReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("caption", JsonValue::String(self.caption.clone())),
            ("headers", JsonValue::strings(&self.headers)),
            (
                "rows",
                JsonValue::Array(self.rows.iter().map(|row| JsonValue::strings(row)).collect()),
            ),
        ])
    }
}

impl ToJson for FigurePanel {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("dataset", JsonValue::String(self.dataset.clone())),
            ("series", JsonValue::Array(self.series.iter().map(ToJson::to_json).collect())),
        ])
    }
}

impl ToJson for FigureResult {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("id", JsonValue::String(self.id.clone())),
            ("title", JsonValue::String(self.title.clone())),
            ("panels", JsonValue::Array(self.panels.iter().map(ToJson::to_json).collect())),
            ("tables", JsonValue::Array(self.tables.iter().map(ToJson::to_json).collect())),
        ])
    }
}

// --- device/report types -----------------------------------------------------
//
// The serde shims cannot serialise these (their derives are no-ops), so the
// device-facing report types get explicit `ToJson` impls here; the host
// server's `STATS` command and report tooling emit real JSON through them
// instead of `{:#?}` debug text.

impl ToJson for pefp_fpga::MemoryCounters {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("bram_reads", JsonValue::Number(self.bram_reads as f64)),
            ("bram_writes", JsonValue::Number(self.bram_writes as f64)),
            ("dram_reads", JsonValue::Number(self.dram_reads as f64)),
            ("dram_writes", JsonValue::Number(self.dram_writes as f64)),
            ("dram_words_read", JsonValue::Number(self.dram_words_read as f64)),
            ("dram_words_written", JsonValue::Number(self.dram_words_written as f64)),
            ("buffer_flushes", JsonValue::Number(self.buffer_flushes as f64)),
            ("dram_batch_fetches", JsonValue::Number(self.dram_batch_fetches as f64)),
            ("cache_hits", JsonValue::Number(self.cache_hits as f64)),
            ("cache_misses", JsonValue::Number(self.cache_misses as f64)),
        ])
    }
}

impl ToJson for pefp_fpga::DeviceReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("cycles", JsonValue::Number(self.cycles as f64)),
            ("kernel_millis", JsonValue::Number(self.kernel_millis)),
            ("pcie_millis", JsonValue::Number(self.pcie_millis)),
            ("total_millis", JsonValue::Number(self.total_millis)),
            ("counters", self.counters.to_json()),
            ("bram_used", JsonValue::Number(self.bram_used as f64)),
            ("bram_capacity", JsonValue::Number(self.bram_capacity as f64)),
            ("dram_cycles", JsonValue::Number(self.dram_cycles as f64)),
            ("contention_cycles", JsonValue::Number(self.contention_cycles as f64)),
            ("bank_conflict_cycles", JsonValue::Number(self.bank_conflict_cycles as f64)),
            ("turnaround_cycles", JsonValue::Number(self.turnaround_cycles as f64)),
        ])
    }
}

impl ToJson for pefp_fpga::ArbiterStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("refills", JsonValue::Number(self.refills as f64)),
            ("words", JsonValue::Number(self.words as f64)),
            ("penalty_cycles", JsonValue::Number(self.penalty_cycles as f64)),
            ("bank_conflicts", JsonValue::Number(self.bank_conflicts as f64)),
            ("bank_conflict_cycles", JsonValue::Number(self.bank_conflict_cycles as f64)),
            ("turnarounds", JsonValue::Number(self.turnarounds as f64)),
            ("turnaround_cycles", JsonValue::Number(self.turnaround_cycles as f64)),
        ])
    }
}

impl ToJson for pefp_fpga::MultiCuSchedule {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("compute_units", JsonValue::Number(self.compute_units as f64)),
            (
                "per_cu_cycles",
                JsonValue::numbers(
                    &self.per_cu_cycles.iter().map(|&c| c as f64).collect::<Vec<_>>(),
                ),
            ),
            ("makespan_cycles", JsonValue::Number(self.makespan_cycles as f64)),
            ("serial_cycles", JsonValue::Number(self.serial_cycles as f64)),
            ("contention_factor", JsonValue::Number(self.contention_factor)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let doc = JsonValue::object(vec![
            ("name", JsonValue::String("fig8 \"query\"\nline".to_string())),
            ("count", JsonValue::Number(42.0)),
            ("ratio", JsonValue::Number(1.5)),
            ("flag", JsonValue::Bool(true)),
            ("missing", JsonValue::Null),
            ("xs", JsonValue::numbers(&[1.0, 2.5, -3.0])),
            ("empty_array", JsonValue::Array(Vec::new())),
            ("empty_object", JsonValue::Object(Vec::new())),
        ]);
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(JsonValue::parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(JsonValue::Number(3.0).render(), "3");
        assert_eq!(JsonValue::Number(-17.0).render(), "-17");
        assert_eq!(JsonValue::Number(0.5).render(), "0.5");
        assert_eq!(JsonValue::Number(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Number(f64::INFINITY).render(), "null");
    }

    #[test]
    fn escapes_cover_the_json_control_set() {
        let s = JsonValue::String("a\"b\\c\nd\te".to_string());
        assert_eq!(s.render(), r#""a\"b\\c\nd\te""#);
        assert_eq!(JsonValue::parse(&s.render()).unwrap(), s);
        // Other control characters take the \uXXXX form and survive parsing.
        let ctrl = JsonValue::String("\u{1}".to_string());
        assert_eq!(ctrl.render(), "\"\\u0001\"");
        assert_eq!(JsonValue::parse(&ctrl.render()).unwrap(), ctrl);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a': 1}"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parser_accepts_unicode_and_nesting() {
        let text = r#"{"π": [1, {"nested": "héllo ☃"}], "u": "A"}"#;
        let doc = JsonValue::parse(text).unwrap();
        assert_eq!(doc.get("u").and_then(JsonValue::as_str), Some("A"));
        let items = doc.get("π").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items[0].as_number(), Some(1.0));
        assert_eq!(items[1].get("nested").and_then(JsonValue::as_str), Some("héllo ☃"));
    }

    #[test]
    fn figure_result_serialises_to_parseable_json() {
        let mut table = TableReport::new("caption", &["a", "b"]);
        table.push_row(vec!["1".into(), "2".into()]);
        let result = FigureResult {
            id: "fig8".to_string(),
            title: "Fig. 8".to_string(),
            panels: vec![FigurePanel {
                dataset: "AM".to_string(),
                series: vec![Series::new("PEFP", vec![5.0, 6.0], vec![0.5, 1.25])],
            }],
            tables: vec![table],
        };
        let text = result.to_json().render_pretty();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed.get("id").and_then(JsonValue::as_str), Some("fig8"));
        let panels = parsed.get("panels").and_then(JsonValue::as_array).unwrap();
        let series = panels[0].get("series").and_then(JsonValue::as_array).unwrap();
        assert_eq!(series[0].get("label").and_then(JsonValue::as_str), Some("PEFP"));
        assert_eq!(
            series[0].get("y").and_then(JsonValue::as_array).unwrap()[1].as_number(),
            Some(1.25)
        );
        let tables = parsed.get("tables").and_then(JsonValue::as_array).unwrap();
        assert_eq!(tables[0].get("rows").and_then(JsonValue::as_array).unwrap().len(), 1);
    }

    #[test]
    fn device_report_serialises_to_parseable_json() {
        use pefp_core::{run_query, PefpVariant};
        use pefp_fpga::DeviceConfig;
        use pefp_graph::{CsrGraph, VertexId};

        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let result = run_query(
            &g,
            VertexId(0),
            VertexId(3),
            3,
            PefpVariant::Full,
            &DeviceConfig::alveo_u200(),
        );
        let text = result.device.to_json().render_pretty();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(
            parsed.get("cycles").and_then(JsonValue::as_number),
            Some(result.device.cycles as f64)
        );
        let counters = parsed.get("counters").expect("nested counters object");
        assert!(counters.get("dram_words_read").and_then(JsonValue::as_number).is_some());

        let stats = pefp_fpga::ArbiterStats::default().to_json().render();
        let parsed = JsonValue::parse(&stats).unwrap();
        assert_eq!(parsed.get("bank_conflict_cycles").and_then(JsonValue::as_number), Some(0.0));
    }
}
