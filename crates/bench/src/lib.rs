//! # pefp-bench
//!
//! Benchmark harness for the PEFP reproduction. Two kinds of artefacts live
//! here:
//!
//! * the **`figures` binary** (`cargo run -p pefp-bench --release --bin
//!   figures -- <fig8|table2|all|...>`), which regenerates every table and
//!   figure of the paper's evaluation section and writes both a textual report
//!   and machine-readable JSON series;
//! * the **Criterion benches** (`cargo bench -p pefp-bench`), which measure
//!   the same workloads with statistical rigour: `query_time`
//!   (Fig. 8), `preprocess_time` (Fig. 9), `total_time` (Fig. 10/11),
//!   `ablations` (Fig. 12–15) and `microbench` (component-level costs).
//!
//! Shared helpers for both live in this library crate, together with the
//! [`gate`] module backing the **`bench_gate` binary** — the CI
//! bench-regression comparator that measures a fixed case set and fails when
//! a median regresses more than 25% against the committed `BENCH_04.json`
//! baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gate;
pub mod loadgen;
pub mod routing_fit;

use pefp_fpga::DeviceConfig;
use pefp_graph::ScaleProfile;
use pefp_workload::{ExperimentConfig, Runner};

/// Builds the experiment configuration used by benches and the figures binary.
///
/// `scale` and `queries` come from the CLI (or bench defaults); everything
/// else mirrors the paper's setup (Alveo U200 profile).
pub fn harness_config(scale: ScaleProfile, queries: usize) -> ExperimentConfig {
    ExperimentConfig {
        scale,
        queries_per_point: queries,
        seed: 0x5EED,
        device: DeviceConfig::alveo_u200(),
        max_expected_paths: 2.0e5,
    }
}

/// Convenience constructor for a runner at the given scale.
pub fn make_runner(scale: ScaleProfile, queries: usize) -> Runner {
    Runner::new(harness_config(scale, queries))
}

/// The scale the Criterion benches run at: [`ScaleProfile::Tiny`] (the CI
/// smoke size) unless the `PEFP_BENCH_SCALE` environment variable names
/// another profile (`tiny`/`small`/`medium`). The wall-clock budgets per
/// profile are recorded in this crate's `README.md`.
pub fn bench_scale() -> ScaleProfile {
    std::env::var("PEFP_BENCH_SCALE")
        .ok()
        .and_then(|v| parse_scale(&v))
        .unwrap_or(ScaleProfile::Tiny)
}

/// Parses a `--scale` CLI value.
pub fn parse_scale(value: &str) -> Option<ScaleProfile> {
    match value.to_ascii_lowercase().as_str() {
        "tiny" => Some(ScaleProfile::Tiny),
        "small" => Some(ScaleProfile::Small),
        "medium" => Some(ScaleProfile::Medium),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(parse_scale("tiny"), Some(ScaleProfile::Tiny));
        assert_eq!(parse_scale("SMALL"), Some(ScaleProfile::Small));
        assert_eq!(parse_scale("medium"), Some(ScaleProfile::Medium));
        assert_eq!(parse_scale("huge"), None);
    }

    #[test]
    fn harness_config_uses_the_u200_profile() {
        let cfg = harness_config(ScaleProfile::Tiny, 5);
        assert_eq!(cfg.queries_per_point, 5);
        assert_eq!(cfg.device, DeviceConfig::alveo_u200());
    }
}
