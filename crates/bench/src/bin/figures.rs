//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pefp-bench --release --bin figures -- all
//! cargo run -p pefp-bench --release --bin figures -- fig8 fig12 table3
//! cargo run -p pefp-bench --release --bin figures -- all --scale small --queries 20 --json out/
//! ```
//!
//! Options:
//!
//! * `--scale tiny|small|medium` — size of the synthetic dataset stand-ins
//!   (default `tiny`, which finishes in seconds; `small` is the EXPERIMENTS.md
//!   setting).
//! * `--queries N` — query pairs averaged per (dataset, k) point (default 5).
//! * `--json DIR` — additionally write each figure's series/tables as JSON.

use pefp_bench::{make_runner, parse_scale};
use pefp_graph::ScaleProfile;
use pefp_workload::figures::{run_figure, FigureSpec};
use pefp_workload::ToJson;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut specs: Vec<FigureSpec> = Vec::new();
    let mut scale = ScaleProfile::Tiny;
    let mut queries = 5usize;
    let mut json_dir: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|v| parse_scale(v))
                    .unwrap_or_else(|| die("--scale expects tiny|small|medium"));
            }
            "--queries" => {
                i += 1;
                queries = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--queries expects a positive integer"));
            }
            "--json" => {
                i += 1;
                json_dir =
                    Some(args.get(i).cloned().unwrap_or_else(|| die("--json expects a directory")));
            }
            "all" => specs.extend(FigureSpec::all()),
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => match FigureSpec::parse(other) {
                Some(spec) => specs.push(spec),
                None => die(&format!("unknown figure `{other}` (try --help)")),
            },
        }
        i += 1;
    }
    if specs.is_empty() {
        print_help();
        return;
    }
    specs.dedup();

    eprintln!(
        "# regenerating {} artefact(s) at scale {:?} with {} queries per point",
        specs.len(),
        scale,
        queries
    );
    let mut runner = make_runner(scale, queries);
    for spec in specs {
        let started = std::time::Instant::now();
        let result = run_figure(spec, &mut runner);
        println!("{}", result.render());
        eprintln!("# {} finished in {:.1} s", spec.id(), started.elapsed().as_secs_f64());
        if let Some(dir) = &json_dir {
            std::fs::create_dir_all(dir).expect("create json output directory");
            let path = format!("{dir}/{}.json", spec.id());
            // Hand-rolled JSON (pefp_workload::json): the offline serde shim
            // cannot produce machine-readable output.
            let json = result.to_json().render_pretty();
            std::fs::write(&path, json).expect("write figure json");
            eprintln!("# wrote {path}");
        }
    }
}

fn print_help() {
    println!(
        "figures — regenerate the PEFP paper's tables and figures\n\n\
         usage: figures [all | table2 fig8 fig9 fig10 fig11 fig12 table3 fig13 fig14 fig15]...\n\
         \u{20}       [--scale tiny|small|medium] [--queries N] [--json DIR]"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
