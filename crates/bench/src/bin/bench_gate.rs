//! CI bench-regression gate.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pefp-bench --release --bin bench_gate -- --write BENCH_04.json
//! cargo run -p pefp-bench --release --bin bench_gate -- --check BENCH_04.json
//! ```
//!
//! `--write` measures the gate cases (see `pefp_bench::gate`) and records
//! them, together with the machine's calibration time, as the committed
//! baseline. `--check` re-measures the same cases and fails (exit code 1)
//! when a median regresses more than 25% against the calibrated baseline, a
//! deterministic cycle count grows more than 25%, or a hard floor (the
//! ≥1.5× measured 4-CU speedup) is violated.

use pefp_bench::gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "--write" || mode == "--check" => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: bench_gate --write <BENCH_04.json> | --check <BENCH_04.json>");
            std::process::exit(2);
        }
    };

    eprintln!("# calibrating machine speed ...");
    let calibration_ns = gate::calibration_median_ns();
    eprintln!("# calibration median: {calibration_ns:.0} ns");
    eprintln!("# running gate cases ...");
    let cases = gate::run_gate_cases();
    for case in &cases {
        let cycles = case.cycles.map(|c| format!(", {c} cycles")).unwrap_or_default();
        let floor = case
            .floor
            .as_ref()
            .map(|f| format!(", {} {:.2} (floor {:.2})", f.label, f.value, f.min))
            .unwrap_or_default();
        eprintln!("#   {}: median {:.0} ns{cycles}{floor}", case.name, case.median_ns);
    }

    match mode {
        "--write" => {
            let note = "bench-regression baseline: medians over 5 samples on the 10k Chung-Lu \
                        batch profile (56 hub-pair dispatch queries at k=6; k=7 hub-to-hub \
                        streaming query). Wall-clock budgets are rescaled at check time by \
                        calibration_now/calibration_ns; cycles are deterministic.";
            let json = gate::to_json(calibration_ns, &cases, note).render_pretty();
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("# wrote {path}");
        }
        "--check" => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let baseline = gate::parse_baseline(&text).unwrap_or_else(|e| {
                eprintln!("error: {path} is not a valid baseline: {e}");
                std::process::exit(2);
            });
            let failures = gate::compare(&baseline, calibration_ns, &cases);
            if failures.is_empty() {
                println!("bench gate PASSED ({} cases)", cases.len());
            } else {
                for failure in &failures {
                    eprintln!("REGRESSION: {failure}");
                }
                eprintln!("bench gate FAILED ({} of {} cases)", failures.len(), cases.len());
                std::process::exit(1);
            }
        }
        _ => unreachable!(),
    }
}
