//! CI bench-regression gate.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pefp-bench --release --bin bench_gate -- --write BENCH_04.json
//! cargo run -p pefp-bench --release --bin bench_gate -- --check BENCH_04.json
//! cargo run -p pefp-bench --release --bin bench_gate -- --check BENCH_05.json
//! cargo run -p pefp-bench --release --bin bench_gate -- --check BENCH_06.json
//! ```
//!
//! The suite is selected by the baseline's file name:
//!
//! * `BENCH_04*` — the multi-CU dispatch + streaming cases of PR 4.
//! * `BENCH_05*` — the host-concurrency cases: 1 vs 4 closed-loop sessions on
//!   one shared 4-CU `HostRuntime`, with the ≥2× aggregate-throughput floor.
//! * `BENCH_06*` — the closed-loop fraud stream: a `RuntimeCycleDetector`
//!   ingesting the fixed 400-transaction workload through incremental graph
//!   deltas, gated on sustained tx/sec at the fixed p99 latency budget.
//! * `BENCH_07*` — the fault-storm cases: the fixed 12-query pool on a 2-CU
//!   fault-tolerant `HostRuntime` under the seeded fault mix, gated on
//!   goodput and the 1.0 correct-answer fraction vs a fault-free oracle.
//! * `BENCH_08*` — the mixed-workload router cases: the tiny + heavy pool on
//!   a 2-CU `HostRuntime`, gated on the adaptive router beating the best
//!   fixed engine policy (device-always, bc-dfs-always, join-always, and the
//!   best-CPU oracle) ≥1.2× and routed-CPU tiny queries beating forced-device
//!   placement ≥5× in summed serve latency.
//! * `BENCH_09*` — the open-loop TCP load cases: 3000 binary COUNT requests
//!   offered at 1000/s over 256 loopback connections into a warm 4-CU
//!   `NetServer` front door, gated on the calibrated p999 latency, a goodput
//!   floor and the exact 1.0 answered fraction (zero protocol errors).
//! * `BENCH_10*` — the bank-layout cases: the hub-pair batch under
//!   bank-conflict charging with the BRAM graph cache off, natural vs
//!   bank-aware CSR placement at 2/4 CUs, gated on the ≥20% charged
//!   conflict-cycle reduction, the charged makespan win, the ≤30% LPT model
//!   error under charging, and exact banking-off cycle equality with the
//!   sibling `BENCH_04.json` anchor.
//!
//! `--write` measures the suite's cases and records them, together with the
//! machine's calibration time, as the committed baseline. `--check`
//! re-measures the same cases and fails (exit code 1) when a median regresses
//! more than 25% against the calibrated baseline, a deterministic cycle count
//! grows more than 25%, or a hard floor (the ≥1.5× measured 4-CU dispatch
//! speedup; the ≥2× 4-session throughput) is violated.

use pefp_bench::gate;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "--write" || mode == "--check" => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!("usage: bench_gate --write <BENCH_0x.json> | --check <BENCH_0x.json>");
            std::process::exit(2);
        }
    };
    let file_name = std::path::Path::new(path).file_name().and_then(|n| n.to_str()).unwrap_or(path);
    type CaseRunner = Box<dyn Fn() -> Vec<gate::GateCase>>;
    let (artefact, run_cases, note): (&str, CaseRunner, &str) = if file_name.starts_with("BENCH_10")
    {
        // The banking-off determinism floor pins this suite to the committed
        // BENCH_04 dispatch_cus1 cycle count: read the anchor from the
        // sibling baseline so the two files cannot drift apart silently.
        let sibling = std::path::Path::new(path).with_file_name("BENCH_04.json");
        let anchor = std::fs::read_to_string(&sibling)
            .map_err(|e| e.to_string())
            .and_then(|text| gate::parse_baseline(&text))
            .ok()
            .and_then(|baseline| {
                baseline
                    .cases
                    .iter()
                    .find(|case| case.name == "multi_cu/dispatch_cus1")
                    .and_then(|case| case.cycles)
            });
        match anchor {
            Some(anchor) => {
                eprintln!("# BENCH_04 dispatch_cus1 anchor: {anchor} cycles");
            }
            None => {
                eprintln!(
                    "error: {} must hold a multi_cu/dispatch_cus1 case with cycles \
                     (the BENCH_10 banking-off determinism floor anchors against it)",
                    sibling.display()
                );
                std::process::exit(2);
            }
        }
        (
            "BENCH_10",
            Box::new(move || gate::run_bank_layout_cases(anchor)) as CaseRunner,
            "bank-layout baseline: the 10k Chung-Lu 56-hub-pair k=6 batch under \
                 bank-conflict charging (BRAM graph cache off, so adjacency rows stream \
                 from banked DRAM), natural vs bank-aware CSR placement at 2/4 CUs. \
                 Floors gate the >=20% charged-conflict-cycle reduction, the charged \
                 makespan win and the <=30% LPT model error under charging; the \
                 banking-off case must reproduce the committed BENCH_04 dispatch_cus1 \
                 cycle count bit-identically (exact-equality floor).",
        )
    } else if file_name.starts_with("BENCH_05") {
        (
            "BENCH_05",
            Box::new(gate::run_host_concurrency_cases) as CaseRunner,
            "host-concurrency baseline: medians over 5 samples of 1 vs 4 closed-loop \
                 sessions sharing one 4-CU HostRuntime on the 10k Chung-Lu 56-hub-pair k=6 \
                 pool. The sessions1 virtual makespan is deterministic; sessions4 carries the \
                 >=2x aggregate-throughput (queries per virtual-makespan cycle) floor.",
        )
    } else if file_name.starts_with("BENCH_06") {
        (
            "BENCH_06",
            Box::new(gate::run_fraud_stream_cases) as CaseRunner,
            "fraud-stream baseline: medians over 5 samples of the 400-transaction \
                 closed-loop RuntimeCycleDetector round (256 accounts, 5% fraud rings, k=6, \
                 window 10k) on a 2-CU HostRuntime with incremental epoch updates. Device \
                 cycles are deterministic; the floor gates sustained tx/sec under the fixed \
                 50 ms p99 detection-latency budget.",
        )
    } else if file_name.starts_with("BENCH_07") {
        (
            "BENCH_07",
            Box::new(gate::run_fault_storm_cases) as CaseRunner,
            "fault-storm baseline: medians over 5 samples of the 12-query pool on a 2-CU \
                 HostRuntime under the fixed seeded fault mix (DRAM corruption, PCIe errors, \
                 hangs, crashes) with retries, quarantine and CPU fallback enabled. Floors gate \
                 goodput (correct queries/sec under faults) and the 1.0 correct-answer fraction \
                 against a fault-free oracle round; no cycle signal (retry placement is \
                 scheduling-dependent).",
        )
    } else if file_name.starts_with("BENCH_08") {
        (
            "BENCH_08",
            Box::new(gate::run_mixed_workload_cases) as CaseRunner,
            "mixed-workload baseline: medians over 5 samples of the 24-tiny + 5-heavy query \
                 pool on a 2-CU HostRuntime under the adaptive router (builtin table). Device \
                 cycles are deterministic and placement-sensitive. Floors gate the router's \
                 summed serve latency (transfer + engine) against the best fixed engine policy \
                 (device-always, bc-dfs-always, join-always, best-CPU oracle; >=1.2x) and \
                 routed-CPU tiny queries against forced-device placement (>=5x).",
        )
    } else if file_name.starts_with("BENCH_09") {
        (
            "BENCH_09",
            Box::new(gate::run_tcp_load_cases) as CaseRunner,
            "tcp-load baseline: medians over 5 measured open-loop rounds (after one warm-up) \
                 of 3000 binary-protocol COUNT requests offered at 1000/s across 256 loopback \
                 connections into a warm 4-CU NetServer front door on the 10k Chung-Lu gate \
                 graph. The median p999 must stay under a runner-speed-calibrated budget \
                 (75 ms at the anchor machine's calibration, scaled by the check machine's \
                 own calibration probe); a violation zeroes the goodput floor. The p50 \
                 median carries the calibrated 25% regression rule (the round wall clock is \
                 pinned by the open-loop schedule and is not a signal). Floors gate the \
                 worst round's goodput (answers/sec) and the exact 1.0 answered fraction \
                 (any dropped connection, corrupt frame or unexpected ERR fails). No cycle \
                 signal (admission interleaving is scheduling-dependent).",
        )
    } else if file_name.starts_with("BENCH_04") {
        (
            "BENCH_04",
            Box::new(gate::run_gate_cases) as CaseRunner,
            "bench-regression baseline: medians over 5 samples on the 10k Chung-Lu batch \
                 profile (56 hub-pair dispatch queries at k=6; k=7 hub-to-hub streaming query). \
                 Wall-clock budgets are rescaled at check time by calibration_now/calibration_ns; \
                 cycles are deterministic.",
        )
    } else {
        eprintln!(
            "error: cannot infer the suite from {file_name:?} (want BENCH_04*, BENCH_05*, BENCH_06*, BENCH_07*, BENCH_08*, BENCH_09* or BENCH_10*)"
        );
        std::process::exit(2);
    };

    eprintln!("# calibrating machine speed ...");
    let calibration_ns = gate::calibration_median_ns();
    eprintln!("# calibration median: {calibration_ns:.0} ns");
    eprintln!("# running {artefact} gate cases ...");
    let cases = run_cases();
    for case in &cases {
        let cycles = case.cycles.map(|c| format!(", {c} cycles")).unwrap_or_default();
        let floor = case
            .floor
            .as_ref()
            .map(|f| format!(", {} {:.2} (floor {:.2})", f.label, f.value, f.min))
            .unwrap_or_default();
        eprintln!("#   {}: median {:.0} ns{cycles}{floor}", case.name, case.median_ns);
    }

    match mode {
        "--write" => {
            let json = gate::to_json_named(artefact, calibration_ns, &cases, note).render_pretty();
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("# wrote {path}");
        }
        "--check" => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let baseline = gate::parse_baseline(&text).unwrap_or_else(|e| {
                eprintln!("error: {path} is not a valid baseline: {e}");
                std::process::exit(2);
            });
            let failures = gate::compare(&baseline, calibration_ns, &cases);
            if failures.is_empty() {
                println!("bench gate PASSED ({artefact}, {} cases)", cases.len());
            } else {
                for failure in &failures {
                    eprintln!("REGRESSION: {failure}");
                }
                eprintln!("bench gate FAILED ({} of {} cases)", failures.len(), cases.len());
                std::process::exit(1);
            }
        }
        _ => unreachable!(),
    }
}
