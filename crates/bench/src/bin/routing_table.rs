//! Offline calibration of the adaptive router's cost table.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pefp-bench --release --bin routing_table -- --write docs/routing_table.json
//! cargo run -p pefp-bench --release --bin routing_table -- --check docs/routing_table.json
//! ```
//!
//! `--write` runs the fixed calibration sweep: it times BC-DFS and JOIN on
//! each query (normalised to the `BENCH_04.json` reference machine via the
//! bench gate's calibration probe), takes the modelled device latency and
//! PCIe transfer curve (deterministic), fits one `fixed + unit × work` line
//! per engine, rounds aggressively and writes the table together with the
//! routing decision of every sweep query.
//!
//! `--check` is what CI runs and is **fully deterministic** — no timing: the
//! committed table must parse, validate, equal [`RoutingTable::builtin`]
//! (so the in-code fallback can never drift from the committed file) and
//! reproduce every recorded sweep decision. Whether the table routes *well*
//! is gated separately by the `BENCH_08` mixed-workload floors.
//!
//! [`RoutingTable::builtin`]: pefp_core::RoutingTable::builtin

use pefp_bench::{gate, routing_fit};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match args.as_slice() {
        [mode, path] if mode == "--write" || mode == "--check" => (mode.as_str(), path.as_str()),
        _ => {
            eprintln!(
                "usage: routing_table --write <routing_table.json> | --check <routing_table.json>"
            );
            std::process::exit(2);
        }
    };

    match mode {
        "--write" => {
            eprintln!("# calibrating machine speed ...");
            let calibration_ns = gate::calibration_median_ns();
            let cpu_scale = routing_fit::REFERENCE_CALIBRATION_NS / calibration_ns;
            eprintln!(
                "# calibration median: {calibration_ns:.0} ns (reference scale {cpu_scale:.3})"
            );
            eprintln!("# measuring the calibration sweep ...");
            let measurements = routing_fit::measure_sweep(cpu_scale);
            for m in &measurements {
                let fmt = |us: Option<f64>| {
                    us.map(|v| format!("{v:.1} µs")).unwrap_or_else(|| "-".to_string())
                };
                eprintln!(
                    "#   {}: dfs work {:.0}, join work {:.0} | bc_dfs {}, join {}, device {}",
                    m.name,
                    m.features.dfs_work,
                    m.features.join_work,
                    fmt(m.bcdfs_us),
                    fmt(m.join_us),
                    fmt(m.device_us),
                );
            }
            let table = routing_fit::fit_table(&measurements);
            let problems = table.validate();
            if !problems.is_empty() {
                for p in &problems {
                    eprintln!("error: fitted table invalid: {p}");
                }
                std::process::exit(1);
            }
            let decisions = routing_fit::sweep_decisions(&table);
            for (name, engine) in &decisions {
                eprintln!("#   {name} -> {engine}");
            }
            let note = "adaptive-router calibration: per-engine `fixed + unit x work` \
                        latencies fitted on the fixed sweep (CPU wall times rescaled to the \
                        BENCH_04 reference machine, device/transfer from the deterministic \
                        model), rounded to 2 significant digits. The sweep records each \
                        query's decision; --check re-derives them without timing.";
            let json = routing_fit::table_document(&table, &decisions, note).render_pretty();
            std::fs::write(path, json).unwrap_or_else(|e| {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("# wrote {path}");
            if table != pefp_core::RoutingTable::builtin() {
                eprintln!(
                    "# NOTE: the fitted table differs from RoutingTable::builtin(); update \
                     crates/core/src/routing.rs to match or --check will fail"
                );
            }
        }
        "--check" => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            });
            let (table, recorded) = routing_fit::parse_table_document(&text).unwrap_or_else(|e| {
                eprintln!("error: cannot parse {path}: {e}");
                std::process::exit(2);
            });
            let failures = routing_fit::check_document(&table, &recorded);
            if failures.is_empty() {
                eprintln!(
                    "# routing table OK: {} sweep decisions reproduced, builtin in sync",
                    recorded.len()
                );
            } else {
                for failure in &failures {
                    eprintln!("FAIL: {failure}");
                }
                std::process::exit(1);
            }
        }
        _ => unreachable!(),
    }
}
