//! Open-loop TCP load generator for the PEFP network front door.
//!
//! Usage:
//!
//! ```text
//! # Self-hosted: spin up a front door on the gate graph, drive it, report.
//! cargo run -p pefp-bench --release --bin loadgen -- \
//!     --connections 256 --rate 1000 --requests 3000
//!
//! # Against an already-running server:
//! cargo run -p pefp-bench --release --bin loadgen -- \
//!     --addr 127.0.0.1:7070 --protocol line --json
//! ```
//!
//! Without `--addr` the generator binds its own [`NetServer`] on an
//! ephemeral loopback port over the BENCH_09 gate runtime (the 10k Chung-Lu
//! gate graph, 4 CUs, warm prepared-query cache) and tears it down after the
//! run — the same setup the committed `BENCH_09.json` baseline measures.
//! Latency percentiles are scheduled-to-completion (coordinated omission
//! counts against the server), and `--json` emits the report as a single
//! machine-readable document.

use pefp_bench::gate;
use pefp_bench::loadgen::{run_open_loop, LoadConfig, LoadProtocol};
use pefp_host::{HostRuntime, NetConfig, NetServer, QueryRequest, RuntimeConfig};
use pefp_workload::ToJson;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

struct Args {
    addr: Option<SocketAddr>,
    connections: usize,
    rate: f64,
    requests: usize,
    protocol: LoadProtocol,
    json: bool,
}

const USAGE: &str = "usage: loadgen [--addr HOST:PORT] [--connections N] [--rate REQ_PER_SEC] \
     [--requests N] [--protocol binary|line] [--json]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        connections: gate::TCP_LOAD_CONNECTIONS,
        rate: gate::TCP_LOAD_RATE_PER_SEC,
        requests: gate::TCP_LOAD_REQUESTS,
        protocol: LoadProtocol::Binary,
        json: false,
    };
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        let mut value = |name: &str| raw.next().ok_or(format!("{name} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--addr" => {
                let spec = value("--addr")?;
                args.addr = Some(
                    spec.to_socket_addrs()
                        .map_err(|e| format!("bad --addr {spec}: {e}"))?
                        .next()
                        .ok_or(format!("--addr {spec} resolves to nothing"))?,
                );
            }
            "--connections" => {
                args.connections = value("--connections")?
                    .parse()
                    .map_err(|e| format!("bad --connections: {e}"))?
            }
            "--rate" => {
                args.rate = value("--rate")?.parse().map_err(|e| format!("bad --rate: {e}"))?
            }
            "--requests" => {
                args.requests =
                    value("--requests")?.parse().map_err(|e| format!("bad --requests: {e}"))?
            }
            "--protocol" => {
                let spec = value("--protocol")?;
                args.protocol = LoadProtocol::parse(&spec)
                    .ok_or(format!("bad --protocol {spec} (binary|line)"))?;
            }
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if args.connections == 0 || args.requests == 0 || args.rate <= 0.0 {
        return Err("--connections, --requests and --rate must be positive".to_string());
    }
    Ok(args)
}

/// The self-hosted front door: the BENCH_09 gate runtime with a pre-warmed
/// prepared-query cache.
fn self_hosted() -> NetServer {
    let runtime = HostRuntime::launch(
        gate::gate_graph(),
        RuntimeConfig { compute_units: 4, queue_capacity: 4096, ..RuntimeConfig::default() },
    );
    let session = runtime.register_session();
    for (s, t, k) in gate::tcp_load_pool() {
        runtime
            .submit_query(session, QueryRequest::new(s, t, k), false)
            .expect("warm query admitted")
            .wait()
            .expect("warm query completes");
    }
    NetServer::bind(Arc::clone(&runtime), "127.0.0.1:0", NetConfig::default())
        .expect("bind loopback front door")
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };
    let config = LoadConfig {
        connections: args.connections,
        rate_per_sec: args.rate,
        requests: args.requests,
        protocol: args.protocol,
        pool: gate::tcp_load_pool(),
    };
    let server = if args.addr.is_none() { Some(self_hosted()) } else { None };
    let addr = args.addr.unwrap_or_else(|| server.as_ref().expect("self-hosted").local_addr());
    eprintln!(
        "loadgen: {} requests at {}/s over {} {} connections -> {addr}",
        config.requests,
        config.rate_per_sec,
        config.connections,
        config.protocol.name()
    );
    let report = match run_open_loop(addr, &config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen: load run failed: {e}");
            std::process::exit(1);
        }
    };
    if let Some(server) = server {
        server.shutdown();
    }
    if args.json {
        println!("{}", report.to_json().render_pretty());
    } else {
        println!(
            "offered={} ok={} busy={} protocol_errors={} wall={:.3}s goodput={:.1}/s",
            report.offered,
            report.completed_ok,
            report.busy,
            report.protocol_errors,
            report.wall_secs,
            report.goodput_per_sec
        );
        println!(
            "latency (scheduled-to-completion): p50={:.3}ms p90={:.3}ms p99={:.3}ms \
             p999={:.3}ms max={:.3}ms",
            report.p50_ns as f64 / 1e6,
            report.p90_ns as f64 / 1e6,
            report.p99_ns as f64 / 1e6,
            report.p999_ns as f64 / 1e6,
            report.max_ns as f64 / 1e6
        );
    }
    if report.protocol_errors > 0 {
        std::process::exit(1);
    }
}
