//! Open-loop TCP load generation against the [`pefp_host::net`] front door.
//!
//! The harness models an *open* system: requests arrive on a fixed global
//! schedule (`t_i = start + i / rate`) regardless of how fast the server
//! answers, the standard guard against coordinated omission — a slow server
//! does not slow the arrival process down, it accumulates lateness, and that
//! lateness is charged to the latency of every delayed request. Request `i`
//! is issued on persistent connection `i % connections`, so the connection
//! count bounds in-flight concurrency while the schedule fixes offered load.
//!
//! Latency is measured from the *scheduled* arrival time to reply
//! completion, so queueing delay inside the generator counts. Replies are
//! classified as `ok` (a well-formed answer), `busy` (the server's typed
//! backpressure reply for an admission-queue rejection) or a protocol error
//! (anything else: frame corruption, unexpected `ERR`, transport failure).
//! The BENCH_09 gate requires the protocol-error count to be exactly zero.

use pefp_host::wire::{Reply, Request};
use pefp_workload::{JsonValue, ToJson};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Which protocol the generator speaks to the front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadProtocol {
    /// The length-prefixed binary frame protocol ([`pefp_host::wire`]).
    Binary,
    /// The text line protocol ([`pefp_host::server`]).
    Line,
}

impl LoadProtocol {
    /// Parses `"binary"` / `"line"` (as accepted by the `loadgen` CLI).
    pub fn parse(s: &str) -> Option<LoadProtocol> {
        match s.to_ascii_lowercase().as_str() {
            "binary" | "bin" => Some(LoadProtocol::Binary),
            "line" | "text" => Some(LoadProtocol::Line),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            LoadProtocol::Binary => "binary",
            LoadProtocol::Line => "line",
        }
    }
}

/// An open-loop load profile.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent persistent connections (requests round-robin over them).
    pub connections: usize,
    /// Offered arrival rate, requests per second, across all connections.
    pub rate_per_sec: f64,
    /// Total requests to offer.
    pub requests: usize,
    /// Protocol to speak.
    pub protocol: LoadProtocol,
    /// `(s, t, k)` COUNT queries, cycled through in request order.
    pub pool: Vec<(u32, u32, u32)>,
}

/// The merged result of one open-loop run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests offered by the schedule.
    pub offered: u64,
    /// Requests answered with a well-formed result.
    pub completed_ok: u64,
    /// Requests answered with the typed BUSY backpressure reply.
    pub busy: u64,
    /// Requests that hit a protocol or transport failure.
    pub protocol_errors: u64,
    /// Wall-clock seconds from first scheduled arrival to last reply.
    pub wall_secs: f64,
    /// `completed_ok / wall_secs`.
    pub goodput_per_sec: f64,
    /// Median scheduled-to-completion latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency, nanoseconds.
    pub p999_ns: u64,
    /// Worst observed latency, nanoseconds.
    pub max_ns: u64,
}

impl ToJson for LoadReport {
    fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("offered", JsonValue::Number(self.offered as f64)),
            ("completed_ok", JsonValue::Number(self.completed_ok as f64)),
            ("busy", JsonValue::Number(self.busy as f64)),
            ("protocol_errors", JsonValue::Number(self.protocol_errors as f64)),
            ("wall_secs", JsonValue::Number(self.wall_secs)),
            ("goodput_per_sec", JsonValue::Number(self.goodput_per_sec)),
            ("p50_ns", JsonValue::Number(self.p50_ns as f64)),
            ("p90_ns", JsonValue::Number(self.p90_ns as f64)),
            ("p99_ns", JsonValue::Number(self.p99_ns as f64)),
            ("p999_ns", JsonValue::Number(self.p999_ns as f64)),
            ("max_ns", JsonValue::Number(self.max_ns as f64)),
        ])
    }
}

/// The q-quantile (0 < q ≤ 1) of an ascending-sorted sample, by the
/// nearest-rank method.
pub fn percentile(sorted_ns: &[u64], q: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (q * sorted_ns.len() as f64).ceil() as usize;
    sorted_ns[rank.clamp(1, sorted_ns.len()) - 1]
}

#[derive(Clone)]
enum Outcome {
    Ok(u64),
    Busy(u64),
    Error,
}

/// One worker's request loop: issue every request assigned to this
/// connection at its scheduled time, classify the replies.
fn drive_connection(
    stream: TcpStream,
    start: Instant,
    conn_idx: usize,
    config: &LoadConfig,
) -> Vec<Outcome> {
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return vec![Outcome::Error; requests_for(conn_idx, config)],
    });
    let mut writer = stream;
    let mut outcomes = Vec::with_capacity(requests_for(conn_idx, config));
    let mut dead = false;
    for i in (conn_idx..config.requests).step_by(config.connections) {
        if dead {
            outcomes.push(Outcome::Error);
            continue;
        }
        let scheduled = start + Duration::from_secs_f64(i as f64 / config.rate_per_sec);
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let (s, t, k) = config.pool[i % config.pool.len()];
        let outcome = match config.protocol {
            LoadProtocol::Binary => one_binary_request(&mut reader, &mut writer, s, t, k),
            LoadProtocol::Line => one_line_request(&mut reader, &mut writer, s, t, k),
        };
        match outcome {
            Some(class) => {
                let latency = scheduled.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                outcomes.push(match class {
                    Class::Ok => Outcome::Ok(latency),
                    Class::Busy => Outcome::Busy(latency),
                });
            }
            None => {
                // Transport or framing failure: the connection is unusable,
                // every remaining request on it is charged as an error.
                outcomes.push(Outcome::Error);
                dead = true;
            }
        }
    }
    outcomes
}

fn requests_for(conn_idx: usize, config: &LoadConfig) -> usize {
    if config.connections == 0 || conn_idx >= config.requests {
        0
    } else {
        (config.requests - conn_idx - 1) / config.connections + 1
    }
}

enum Class {
    Ok,
    Busy,
}

fn one_binary_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    s: u32,
    t: u32,
    k: u32,
) -> Option<Class> {
    Request::Count { s, t, k }.write_to(writer).ok()?;
    match Reply::read_from(reader) {
        Ok(Some(Reply::Summary { .. })) => Some(Class::Ok),
        Ok(Some(Reply::Busy)) => Some(Class::Busy),
        _ => None,
    }
}

fn one_line_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    s: u32,
    t: u32,
    k: u32,
) -> Option<Class> {
    writeln!(writer, "COUNT {s} {t} {k}").ok()?;
    writer.flush().ok()?;
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    if line.starts_with("OK") {
        Some(Class::Ok)
    } else if line.starts_with("ERR") && line.contains("admission queue full") {
        Some(Class::Busy)
    } else {
        None
    }
}

/// Runs one open-loop load profile against `addr` and merges the
/// per-connection outcomes into a [`LoadReport`].
///
/// All connections are established before the clock starts; a connect
/// failure aborts the run (the server under test should be up).
pub fn run_open_loop(addr: SocketAddr, config: &LoadConfig) -> std::io::Result<LoadReport> {
    assert!(config.connections > 0, "need at least one connection");
    assert!(config.rate_per_sec > 0.0, "need a positive arrival rate");
    assert!(!config.pool.is_empty(), "need a non-empty query pool");
    let streams: Vec<TcpStream> = (0..config.connections)
        .map(|_| TcpStream::connect(addr))
        .collect::<std::io::Result<_>>()?;
    let start = Instant::now();
    let outcomes: Vec<Vec<Outcome>> = std::thread::scope(|scope| {
        let workers: Vec<_> = streams
            .into_iter()
            .enumerate()
            .map(|(conn_idx, stream)| {
                scope.spawn(move || drive_connection(stream, start, conn_idx, config))
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("load worker panicked")).collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let mut report =
        LoadReport { offered: config.requests as u64, wall_secs, ..LoadReport::default() };
    let mut latencies: Vec<u64> = Vec::with_capacity(config.requests);
    for outcome in outcomes.iter().flatten() {
        match outcome {
            Outcome::Ok(ns) => {
                report.completed_ok += 1;
                latencies.push(*ns);
            }
            Outcome::Busy(ns) => {
                report.busy += 1;
                latencies.push(*ns);
            }
            Outcome::Error => report.protocol_errors += 1,
        }
    }
    latencies.sort_unstable();
    report.goodput_per_sec =
        if wall_secs > 0.0 { report.completed_ok as f64 / wall_secs } else { 0.0 };
    report.p50_ns = percentile(&latencies, 0.50);
    report.p90_ns = percentile(&latencies, 0.90);
    report.p99_ns = percentile(&latencies, 0.99);
    report.p999_ns = percentile(&latencies, 0.999);
    report.max_ns = latencies.last().copied().unwrap_or(0);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pefp_graph::CsrGraph;
    use pefp_host::loader::GraphHandle;
    use pefp_host::net::{NetConfig, NetServer};
    use pefp_host::runtime::{HostRuntime, RuntimeConfig};

    fn diamond_front_door() -> NetServer {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let runtime = HostRuntime::launch(
            GraphHandle::from_csr("diamond", g),
            RuntimeConfig { compute_units: 2, queue_capacity: 256, ..RuntimeConfig::default() },
        );
        NetServer::bind(runtime, "127.0.0.1:0", NetConfig::default()).expect("bind loopback")
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.50), 50);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&sorted, 0.999), 100);
        assert_eq!(percentile(&sorted, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[42], 0.999), 42);
    }

    #[test]
    fn requests_split_evenly_over_connections() {
        let config = LoadConfig {
            connections: 4,
            rate_per_sec: 1.0,
            requests: 10,
            protocol: LoadProtocol::Binary,
            pool: vec![(0, 3, 3)],
        };
        let total: usize = (0..4).map(|c| requests_for(c, &config)).sum();
        assert_eq!(total, 10);
        assert_eq!(requests_for(0, &config), 3);
        assert_eq!(requests_for(3, &config), 2);
    }

    #[test]
    fn both_protocols_drive_a_live_front_door_cleanly() {
        let server = diamond_front_door();
        for protocol in [LoadProtocol::Binary, LoadProtocol::Line] {
            let config = LoadConfig {
                connections: 8,
                rate_per_sec: 2000.0,
                requests: 64,
                protocol,
                pool: vec![(0, 3, 3), (0, 3, 2)],
            };
            let report = run_open_loop(server.local_addr(), &config).expect("run");
            assert_eq!(report.offered, 64, "{protocol:?}");
            assert_eq!(report.completed_ok, 64, "{protocol:?}");
            assert_eq!(report.protocol_errors, 0, "{protocol:?}");
            assert!(report.p50_ns > 0 && report.p999_ns >= report.p50_ns, "{protocol:?}");
        }
        server.shutdown();
    }
}
