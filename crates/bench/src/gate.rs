//! Bench-regression gate: the workloads, measurements and comparison rules
//! behind `BENCH_04.json` and the `bench_gate` binary.
//!
//! CI cannot eyeball criterion output, so the gate reduces the performance
//! surface to a handful of **cases**, each carrying up to three kinds of
//! signal:
//!
//! * `median_ns` — median wall-clock of the case's routine. Wall time is
//!   machine-dependent, so the check scales the committed baseline by a
//!   **calibration ratio**: a fixed reference query is re-timed at check
//!   time, and `calibration_now / calibration_baseline` rescales every
//!   wall-clock threshold before the 25% regression rule is applied.
//! * `cycles` — simulated device cycles, which are *deterministic* (the cost
//!   model is exact), so a >25% increase is always a real cost-model or
//!   engine regression, never noise.
//! * `floor` — a hard lower bound on a measured figure of merit (e.g. the
//!   ≥1.5× dispatch speedup at 4 CUs), independent of the baseline.
//!
//! The same workload builders feed the `multi_cu` criterion bench target so
//! the humans and the gate look at identical work.

use crate::loadgen::{run_open_loop, LoadConfig, LoadProtocol};
use pefp_fpga::{FaultPlan, FaultRates, MultiCuConfig};
use pefp_graph::generators::chung_lu;
use pefp_graph::sink::CountingSink;
use pefp_graph::VertexId;
use pefp_host::{
    BatchScheduler, FaultToleranceConfig, GraphHandle, HostRuntime, NetConfig, NetServer,
    QueryRequest, RuntimeConfig, SchedulerConfig,
};
use pefp_workload::JsonValue;
use std::sync::Arc;
use std::time::Instant;

/// Number of timed samples per case (median over these).
pub const GATE_SAMPLES: usize = 5;

/// Allowed relative regression before the gate fails (25%).
pub const GATE_TOLERANCE: f64 = 0.25;

/// A hard lower bound attached to a case.
#[derive(Debug, Clone, PartialEq)]
pub struct GateFloor {
    /// What the figure of merit is (e.g. `measured_speedup`).
    pub label: String,
    /// The value this run produced.
    pub value: f64,
    /// The minimum acceptable value.
    pub min: f64,
}

/// One measured gate case.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCase {
    /// Case identifier, stable across runs (`multi_cu/dispatch_cus4`, …).
    pub name: String,
    /// Median wall-clock nanoseconds over [`GATE_SAMPLES`] runs.
    pub median_ns: f64,
    /// Deterministic simulated cycles of the case, when it has them.
    pub cycles: Option<u64>,
    /// Hard floor on a measured figure of merit, when the case has one.
    pub floor: Option<GateFloor>,
}

/// The graph every gate case queries: the 10k Chung-Lu profile used by the
/// `streaming_results` and `multi_cu` benches.
pub fn gate_graph() -> GraphHandle {
    GraphHandle::from_csr("chung_lu_10k", chung_lu(10_000, 8.0, 2.2, 3).to_csr())
}

/// The batch the dispatch cases run: every ordered pair of the 8 heaviest
/// hubs of [`gate_graph`] (the generator gives the lowest ids the highest
/// degrees) at k=6 — 56 queries totalling ~77k simulated
/// cycles, with the largest query only ~16% of the total, so an LPT schedule
/// on 4 CUs has real headroom (unlike uniformly sampled pairs, whose pruned
/// subgraphs are so small the batch finishes before the workers overlap).
pub fn gate_batch(_handle: &GraphHandle) -> Vec<QueryRequest> {
    let mut requests = Vec::new();
    for s in 0..8u32 {
        for t in 0..8u32 {
            if s != t {
                requests.push(QueryRequest::new(s, t, 6));
            }
        }
    }
    requests
}

/// A dispatch-mode scheduler for `cus` compute units at the default
/// bandwidth share.
pub fn dispatch_scheduler(cus: usize) -> BatchScheduler {
    BatchScheduler::new(SchedulerConfig {
        dispatch: true,
        multi_cu: MultiCuConfig { compute_units: cus, ..MultiCuConfig::default() },
        ..SchedulerConfig::default()
    })
}

fn median_ns<F: FnMut()>(mut routine: F) -> f64 {
    routine(); // warm-up
    let mut samples: Vec<f64> = (0..GATE_SAMPLES)
        .map(|_| {
            let started = Instant::now();
            routine();
            started.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Times the fixed calibration workload: one mid-size PEFP query, end to end.
/// The ratio of this number between two machines rescales their wall-clock
/// thresholds.
pub fn calibration_median_ns() -> f64 {
    let handle = gate_graph();
    let scheduler = BatchScheduler::new(SchedulerConfig::default());
    let requests = gate_batch(&handle);
    let probe = &requests[..4.min(requests.len())];
    median_ns(|| {
        let outcome = scheduler.run_batch(&handle, probe).expect("calibration batch");
        std::hint::black_box(outcome.total_paths());
    })
}

/// Runs every gate case and returns the measurements.
pub fn run_gate_cases() -> Vec<GateCase> {
    let handle = gate_graph();
    let requests = gate_batch(&handle);
    let mut cases = Vec::new();

    // Dispatch cases: measured multi-CU execution at 1/2/4 CUs. Wall clock
    // covers the whole batch (preprocess + dispatch); cycles pin the
    // deterministic uncontended serial total; the 4-CU case additionally
    // enforces the >= 1.5x measured-speedup acceptance floor.
    for cus in [1usize, 2, 4] {
        let scheduler = dispatch_scheduler(cus);
        let mut last = None;
        let median = median_ns(|| {
            last = Some(scheduler.run_batch(&handle, &requests).expect("dispatch batch"));
        });
        let outcome = last.expect("at least one sample ran");
        let measured = outcome.measured.as_ref().expect("dispatch is measured");
        cases.push(GateCase {
            name: format!("multi_cu/dispatch_cus{cus}"),
            median_ns: median,
            cycles: Some(measured.serial_cycles),
            floor: (cus == 4).then(|| GateFloor {
                label: "measured_speedup".to_string(),
                value: measured.speedup(),
                min: 1.5,
            }),
        });
    }

    // Streaming cases: the k=7 hub-to-hub query of the streaming_results
    // bench, in counting and collect-equivalent (streamed) form.
    {
        use pefp_core::{pre_bfs, run_prepared_with_sink, EngineOptions, PefpVariant};
        use pefp_fpga::DeviceConfig;
        use pefp_graph::VertexId;

        let cfg = DeviceConfig::alveo_u200();
        let prep = pre_bfs(&handle.csr, VertexId(0), VertexId(3), 7);
        let opts = EngineOptions { collect_paths: false, ..PefpVariant::Full.engine_options() };
        let mut cycles = 0u64;
        let median = median_ns(|| {
            let mut sink = CountingSink::new();
            let result = run_prepared_with_sink(&prep, opts.clone(), &cfg, &mut sink);
            cycles = result.device.cycles;
            std::hint::black_box(sink.count());
        });
        cases.push(GateCase {
            name: "streaming_results/counting_k7".to_string(),
            median_ns: median,
            cycles: Some(cycles),
            floor: None,
        });
    }

    cases
}

/// A 4-CU multi-tenant [`HostRuntime`] over `handle`, as the
/// `host_concurrency` bench and the `BENCH_05` gate cases use it.
/// `shared_cache` toggles the runtime-wide prepared-query LRU; with it off,
/// every session preprocesses its own queries — exactly what per-session
/// caches would do on the gate workload, whose sessions never repeat a query.
pub fn concurrency_runtime(handle: &GraphHandle, shared_cache: bool) -> Arc<HostRuntime> {
    HostRuntime::launch(
        handle.clone(),
        RuntimeConfig {
            compute_units: 4,
            queue_capacity: 4096,
            shared_cache_capacity: if shared_cache { 256 } else { 0 },
            ..RuntimeConfig::default()
        },
    )
}

/// Runs `sessions` closed-loop clients against `runtime`: each client thread
/// attaches its own session and runs the full `pool` (rotated by client
/// index, so the tenants interleave rather than march in lockstep), one
/// query at a time in counting mode. Returns the total result paths.
pub fn run_concurrency_clients(
    runtime: &Arc<HostRuntime>,
    sessions: usize,
    pool: &[QueryRequest],
) -> u64 {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|c| {
                let runtime = Arc::clone(runtime);
                scope.spawn(move || {
                    let session = runtime.register_session();
                    let mut total = 0u64;
                    for i in 0..pool.len() {
                        let q = pool[(i + c * 7) % pool.len()];
                        let ticket =
                            runtime.submit_query(session, q, false).expect("submit rejected");
                        total += ticket.wait().expect("concurrency query").num_paths;
                    }
                    total
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client panicked")).sum()
    })
}

/// Runs the `BENCH_05` host-concurrency cases: 1 vs 4 closed-loop sessions
/// sharing one 4-CU runtime on the [`gate_batch`] workload. Wall-clock medians
/// cover the whole round (runtime launch + clients); the 1-session case pins
/// the deterministic virtual makespan (serial, uncontended: one tenant keeps
/// one CU busy at a time); the 4-session case carries the acceptance floor —
/// aggregate throughput (queries per virtual-makespan cycle) must be at least
/// 2× the single-session figure.
pub fn run_host_concurrency_cases() -> Vec<GateCase> {
    let handle = gate_graph();
    let pool = gate_batch(&handle);
    let mut cases = Vec::new();
    let mut qps = Vec::new();

    for sessions in [1usize, 4] {
        let mut makespans: Vec<u64> = Vec::new();
        let median = median_ns(|| {
            let runtime = concurrency_runtime(&handle, true);
            let paths = run_concurrency_clients(&runtime, sessions, &pool);
            std::hint::black_box(paths);
            makespans.push(runtime.stats().virtual_makespan_cycles);
        });
        // `median_ns` runs a warm-up plus GATE_SAMPLES timed rounds; the
        // floor uses the median makespan over the timed rounds (the 4-session
        // makespan carries wall-overlap-dependent contention stalls, so a
        // single unlucky sample must not decide a hard CI gate).
        makespans.remove(0);
        makespans.sort_unstable();
        let makespan = makespans[makespans.len() / 2];
        let total_queries = (sessions * pool.len()) as f64;
        qps.push(total_queries / makespan.max(1) as f64);
        cases.push(GateCase {
            name: format!("host_concurrency/sessions{sessions}"),
            median_ns: median,
            // One closed-loop tenant never contends with itself: its virtual
            // makespan is the deterministic uncontended serial total. With 4
            // tenants the contention stalls depend on wall-time overlap, so
            // only the floor below (not an exact cycle count) is checked.
            cycles: (sessions == 1).then_some(makespan),
            floor: None,
        });
    }

    let speedup = if qps[0] > 0.0 { qps[1] / qps[0] } else { 0.0 };
    cases.last_mut().expect("two cases ran").floor = Some(GateFloor {
        label: "aggregate_qps_speedup_vs_1_session".to_string(),
        value: speedup,
        min: 2.0,
    });
    cases
}

/// Transactions per closed-loop `BENCH_06` round.
pub const FRAUD_STREAM_TXS: usize = 400;

/// The fixed p99 detection-latency budget (wall milliseconds per ingested
/// transaction, covering window expiry, the runtime cycle query and the
/// insert delta). Generous enough for any CI machine; the *throughput*
/// under this budget is what the floor gates.
pub const FRAUD_P99_BUDGET_MS: f64 = 50.0;

/// Minimum sustained transactions/second the fraud stream must keep while
/// meeting [`FRAUD_P99_BUDGET_MS`]. A round whose p99 violates the budget
/// reports zero sustained throughput and therefore fails this floor.
pub const FRAUD_SUSTAINED_TX_PER_SEC_FLOOR: f64 = 100.0;

/// The deterministic transaction stream every `BENCH_06` round ingests:
/// 256 accounts, 5% injected fraud rings of size 4, fixed seed.
pub fn fraud_stream_workload() -> Vec<pefp_streaming::Transaction> {
    use pefp_streaming::{TransactionGenerator, TransactionGeneratorConfig};
    TransactionGenerator::new(TransactionGeneratorConfig {
        num_accounts: 256,
        fraud_probability: 0.05,
        ring_size: 4,
        seed: 7,
    })
    .stream(FRAUD_STREAM_TXS)
}

/// Runs the `BENCH_06` fraud-stream case: a closed-loop
/// [`pefp_streaming::RuntimeCycleDetector`] ingesting the fixed
/// [`fraud_stream_workload`] through a shared `HostRuntime` — every
/// transaction becomes an incremental `GraphDelta` (window expiries + the
/// new edge) and a pre-insert cycle query against the current epoch.
///
/// Signals, per the gate's three-signal scheme:
/// * `median_ns` — wall clock of the whole round (calibrated 25% rule);
/// * `cycles` — total simulated device cycles of the round's queries, which
///   are deterministic because the stream, the window and therefore every
///   epoch's snapshot are fixed;
/// * `floor` — sustained tx/sec while p99 per-transaction detection latency
///   stays within [`FRAUD_P99_BUDGET_MS`]; a budget violation zeroes the
///   sustained figure, so the latency bound is part of the hard gate.
pub fn run_fraud_stream_cases() -> Vec<GateCase> {
    use pefp_streaming::{RuntimeCycleDetector, RuntimeDetectorConfig};

    let txs = fraud_stream_workload();
    let mut sustained = 0.0_f64;
    let mut cycles = 0u64;
    let median = median_ns(|| {
        let mut detector = RuntimeCycleDetector::new(RuntimeDetectorConfig {
            max_cycle_hops: 6,
            window_size: 10_000,
            runtime: RuntimeConfig { compute_units: 2, ..RuntimeConfig::default() },
        });
        let round = Instant::now();
        let mut latencies_ms: Vec<f64> = txs
            .iter()
            .map(|tx| {
                let started = Instant::now();
                std::hint::black_box(detector.ingest(tx).cycles.len());
                started.elapsed().as_secs_f64() * 1e3
            })
            .collect();
        let elapsed = round.elapsed().as_secs_f64();
        latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let p99 = latencies_ms[(latencies_ms.len() * 99).div_ceil(100) - 1];
        sustained =
            if p99 <= FRAUD_P99_BUDGET_MS { txs.len() as f64 / elapsed.max(1e-9) } else { 0.0 };
        cycles = detector.runtime().stats().total_device_cycles;
    });
    vec![GateCase {
        name: "fraud_stream/closed_loop".to_string(),
        median_ns: median,
        cycles: Some(cycles),
        floor: Some(GateFloor {
            label: format!("sustained_tx_per_sec_at_p99_{FRAUD_P99_BUDGET_MS}ms"),
            value: sustained,
            min: FRAUD_SUSTAINED_TX_PER_SEC_FLOOR,
        }),
    }]
}

/// Queries per `BENCH_07` fault-storm round.
pub const FAULT_STORM_QUERIES: usize = 12;

/// Seed of the storm's deterministic [`FaultPlan`].
pub const FAULT_STORM_SEED: u64 = 1701;

/// The fixed fault mix every `BENCH_07` round runs under: a noisy but
/// survivable fleet — transient DRAM corruption, flaky PCIe, occasional
/// hangs (stalls far beyond the engine watchdog budget) and rare hard
/// crashes.
pub const FAULT_STORM_RATES: FaultRates = FaultRates {
    dram_corruption: 0.01,
    pcie_error: 0.05,
    cu_stall: 0.002,
    stall_cycles: 100_000_000,
    cu_crash: 0.005,
};

/// Minimum goodput (correct queries per wall second) the storm round must
/// sustain while every answer stays byte-identical to the fault-free oracle.
/// The fault-free round runs thousands of queries per second on any CI
/// machine; this floor only guards against the fault path collapsing into
/// pathological retry loops, so it is set far below healthy throughput.
pub const FAULT_STORM_GOODPUT_FLOOR: f64 = 25.0;

/// The graph and query pool of the `BENCH_07` fault storm: a 1k Chung-Lu
/// graph with [`FAULT_STORM_QUERIES`] mixed hub/non-hub queries at k=4..6.
pub fn fault_storm_workload() -> (GraphHandle, Vec<QueryRequest>) {
    let handle = GraphHandle::from_csr("chung_lu_1k", chung_lu(1_000, 6.0, 2.2, 5).to_csr());
    let mut requests = Vec::new();
    for i in 0..FAULT_STORM_QUERIES as u32 {
        let s = (i * 13) % 1_000;
        let t = (i * 89 + 7) % 1_000;
        let k = 4 + (i % 3);
        requests.push(QueryRequest::new(s, t, k));
    }
    (handle, requests)
}

/// The fault-tolerant 2-CU runtime a storm round executes on.
fn fault_storm_runtime(handle: &GraphHandle, faulty: bool) -> Arc<HostRuntime> {
    HostRuntime::launch(
        handle.clone(),
        RuntimeConfig {
            compute_units: 2,
            fault_plan: faulty.then(|| FaultPlan::seeded(FAULT_STORM_SEED, FAULT_STORM_RATES, 2)),
            fault_tolerance: FaultToleranceConfig {
                retry_backoff: std::time::Duration::ZERO,
                watchdog_cycle_budget: Some(50_000_000),
                ..FaultToleranceConfig::default()
            },
            ..RuntimeConfig::default()
        },
    )
}

/// Runs the query pool once, returning each query's sorted path set.
fn fault_storm_round(runtime: &HostRuntime, requests: &[QueryRequest]) -> Vec<Vec<Vec<VertexId>>> {
    let session = runtime.register_session();
    requests
        .iter()
        .map(|&req| {
            let outcome = runtime
                .submit_query(session, req, true)
                .expect("storm query admitted")
                .wait()
                .expect("storm query completes despite faults");
            let mut paths = outcome.paths;
            paths.sort();
            paths
        })
        .collect()
}

/// Runs the `BENCH_07` fault-storm cases: the fixed query pool on a 2-CU
/// runtime under [`FAULT_STORM_RATES`], answers compared per query against a
/// fault-free oracle round.
///
/// Signals:
/// * `median_ns` — wall clock of a full storm round (calibrated 25% rule);
/// * `floor` on `fault_storm/goodput` — correct queries per wall second
///   (≥ [`FAULT_STORM_GOODPUT_FLOOR`]): a fault path degenerating into
///   unbounded retry/backoff loops fails here;
/// * `floor` on `fault_storm/correctness` — fraction of queries whose sorted
///   path set is byte-identical to the oracle, with a hard floor of 1.0:
///   *any* wrong, dropped or duplicated answer under fault injection fails
///   the gate.
///
/// No `cycles` signal: retry placement depends on wall-clock scheduling
/// noise (which CU takes which attempt), so the simulated cycle total is not
/// deterministic across rounds.
pub fn run_fault_storm_cases() -> Vec<GateCase> {
    let (handle, requests) = fault_storm_workload();
    let oracle = fault_storm_round(&fault_storm_runtime(&handle, false), &requests);
    let mut correct_fraction = 1.0_f64;
    let mut goodput = 0.0_f64;
    let median = median_ns(|| {
        let runtime = fault_storm_runtime(&handle, true);
        let round = Instant::now();
        let answers = fault_storm_round(&runtime, &requests);
        let elapsed = round.elapsed().as_secs_f64();
        let correct = answers.iter().zip(&oracle).filter(|(got, want)| got == want).count();
        correct_fraction = correct_fraction.min(correct as f64 / requests.len() as f64);
        goodput = correct as f64 / elapsed.max(1e-9);
    });
    vec![
        GateCase {
            name: "fault_storm/goodput".to_string(),
            median_ns: median,
            cycles: None,
            floor: Some(GateFloor {
                label: "correct_queries_per_sec_under_faults".to_string(),
                value: goodput,
                min: FAULT_STORM_GOODPUT_FLOOR,
            }),
        },
        GateCase {
            name: "fault_storm/correctness".to_string(),
            median_ns: median,
            cycles: None,
            floor: Some(GateFloor {
                label: "worst_round_correct_fraction".to_string(),
                value: correct_fraction,
                min: 1.0,
            }),
        },
    ]
}

/// Queries in the `BENCH_08` tiny pool: feasible queries whose pruned
/// subgraph stays below [`MIXED_TINY_WORK_CAP`] dfs-work units — the regime
/// where PCIe transfer and device fixed costs dominate and the router should
/// place the query CPU-direct.
pub const MIXED_TINY_QUERIES: usize = 24;

/// dfs-work ceiling defining the tiny pool.
pub const MIXED_TINY_WORK_CAP: f64 = 5_000.0;

/// Minimum modelled-latency speedup of the adaptive router over the **best**
/// fixed engine (device-always or CPU-always) on the mixed pool.
pub const MIXED_ROUTER_SPEEDUP_FLOOR: f64 = 1.2;

/// Minimum modelled-latency speedup of routed-CPU placement over forced
/// device placement on the tiny pool.
pub const MIXED_TINY_SPEEDUP_FLOOR: f64 = 5.0;

/// The `BENCH_08` workload: the [`gate_graph`] plus a tiny pool (scanned
/// deterministically from mid-id pairs — low ids are the hubs in this
/// generator — keeping feasible queries under [`MIXED_TINY_WORK_CAP`]) and a
/// heavy pool of hub-to-hub queries at k = 6..7.
pub fn mixed_workload_pools() -> (GraphHandle, Vec<QueryRequest>, Vec<QueryRequest>) {
    use pefp_core::{pre_bfs, RouteFeatures};

    let handle = gate_graph();
    let mut tiny = Vec::new();
    let mut i = 0u32;
    while tiny.len() < MIXED_TINY_QUERIES && i < 2_000 {
        let s = 2_000 + (i * 97) % 7_000;
        let t = 1_500 + (i * 131 + 17) % 8_000;
        let k = 3 + i % 2;
        i += 1;
        if s == t {
            continue;
        }
        let prep = pre_bfs(&handle.csr, VertexId(s), VertexId(t), k);
        if !prep.feasible {
            continue;
        }
        let features = RouteFeatures::compute(&prep);
        if features.dfs_work <= MIXED_TINY_WORK_CAP && !features.estimate.saturated {
            tiny.push(QueryRequest::new(s, t, k));
        }
    }
    assert_eq!(tiny.len(), MIXED_TINY_QUERIES, "the tiny-pool scan must fill the pool");
    let heavy = [(0u32, 3u32, 6u32), (1, 2, 6), (2, 5, 6), (1, 4, 6), (0, 3, 7)]
        .into_iter()
        .map(|(s, t, k)| QueryRequest::new(s, t, k))
        .collect();
    (handle, tiny, heavy)
}

/// A 2-CU runtime with the given routing policy (`None` = the pre-router
/// device-always behaviour) and two CPU workers.
pub fn mixed_runtime(
    handle: &GraphHandle,
    routing: Option<pefp_core::RoutingTable>,
) -> Arc<HostRuntime> {
    HostRuntime::launch(
        handle.clone(),
        RuntimeConfig { compute_units: 2, routing, cpu_workers: 2, ..RuntimeConfig::default() },
    )
}

/// A table that forces every non-saturated query onto the CPU engines (the
/// router still picks the cheaper of BC-DFS and join per query): the
/// strongest CPU-only policy of the `BENCH_08` comparison.
pub fn cpu_forcing_table() -> pefp_core::RoutingTable {
    pefp_core::RoutingTable {
        device_fixed_us: 1e9,
        cpu_work_ceiling: 1e18,
        ..pefp_core::RoutingTable::builtin()
    }
}

/// A table that forces every non-saturated query onto the CPU BC-DFS engine:
/// the "bc-dfs-always" fixed-engine policy of the `BENCH_08` comparison.
pub fn bcdfs_forcing_table() -> pefp_core::RoutingTable {
    pefp_core::RoutingTable { join_fixed_us: 1e12, ..cpu_forcing_table() }
}

/// A table that forces every non-saturated query onto the CPU join engine:
/// the "join-always" fixed-engine policy of the `BENCH_08` comparison.
pub fn join_forcing_table() -> pefp_core::RoutingTable {
    pefp_core::RoutingTable { bcdfs_fixed_us: 1e12, ..cpu_forcing_table() }
}

/// One closed-loop round of `pool` on `runtime`, returning the summed
/// **serve latency** in milliseconds: PCIe transfer + engine time (modelled
/// device time for device placements, wall time for CPU placements — the
/// quantity the router's cost model predicts). Preprocessing is excluded:
/// it is identical host work under every policy.
pub fn mixed_round_millis(runtime: &Arc<HostRuntime>, pool: &[QueryRequest]) -> f64 {
    let session = runtime.register_session();
    pool.iter()
        .map(|&req| {
            let outcome = runtime
                .submit_query(session, req, false)
                .expect("mixed query admitted")
                .wait()
                .expect("mixed query completes");
            outcome.transfer.total_millis + outcome.device_millis
        })
        .sum()
}

/// Median summed serve latency over three fresh-runtime rounds of `pool`
/// under `routing`.
fn mixed_policy_millis(
    handle: &GraphHandle,
    routing: Option<pefp_core::RoutingTable>,
    pool: &[QueryRequest],
) -> f64 {
    let mut rounds: Vec<f64> =
        (0..3).map(|_| mixed_round_millis(&mixed_runtime(handle, routing.clone()), pool)).collect();
    rounds.sort_by(|a, b| a.partial_cmp(b).expect("finite rounds"));
    rounds[1]
}

/// Runs the `BENCH_08` mixed-workload cases: the tiny + heavy pool on one
/// 2-CU runtime under the adaptive router (builtin table) and every fixed
/// engine policy — device-always (`routing: None`, the pre-router
/// behaviour), bc-dfs-always, join-always, and the stronger best-CPU oracle
/// (device-excluding table, cheapest CPU engine per query).
///
/// Signals:
/// * `median_ns` — wall clock of a full mixed round on the router runtime
///   (calibrated 25% rule), and of the tiny pool for the second case;
/// * `cycles` — total simulated device cycles of the router round, which are
///   deterministic *and placement-sensitive*: a routing change that moves a
///   query between CPU and device shifts this total, so table drift is
///   caught even when it stays inside the latency floors;
/// * `floor` on `mixed_workload/router` — summed serve latency of the best
///   fixed policy over the router's, ≥ [`MIXED_ROUTER_SPEEDUP_FLOOR`]: the
///   router must beat *every* fixed policy (device-always, bc-dfs-always,
///   join-always, and even the best-CPU oracle), not just the worst one;
/// * `floor` on `mixed_workload/tiny_cpu` — forced-device over routed serve
///   latency on the tiny pool, ≥ [`MIXED_TINY_SPEEDUP_FLOOR`]: CPU-routed
///   tiny queries must skip enough transfer + fixed device cost to win big.
pub fn run_mixed_workload_cases() -> Vec<GateCase> {
    let (handle, tiny, heavy) = mixed_workload_pools();
    let mixed: Vec<QueryRequest> = tiny.iter().chain(heavy.iter()).copied().collect();
    let router = Some(pefp_core::RoutingTable::builtin());

    let mut cycles = 0u64;
    let mixed_median = median_ns(|| {
        let runtime = mixed_runtime(&handle, router.clone());
        std::hint::black_box(mixed_round_millis(&runtime, &mixed));
        cycles = runtime.stats().total_device_cycles;
    });
    let tiny_median = median_ns(|| {
        let runtime = mixed_runtime(&handle, router.clone());
        std::hint::black_box(mixed_round_millis(&runtime, &tiny));
    });

    let router_total = mixed_policy_millis(&handle, router.clone(), &mixed);
    let device_total = mixed_policy_millis(&handle, None, &mixed);
    let bcdfs_total = mixed_policy_millis(&handle, Some(bcdfs_forcing_table()), &mixed);
    let join_total = mixed_policy_millis(&handle, Some(join_forcing_table()), &mixed);
    let cpu_total = mixed_policy_millis(&handle, Some(cpu_forcing_table()), &mixed);
    let best_fixed = device_total.min(bcdfs_total).min(join_total).min(cpu_total);
    let router_speedup = best_fixed / router_total.max(1e-12);

    let tiny_router = mixed_policy_millis(&handle, router, &tiny);
    let tiny_device = mixed_policy_millis(&handle, None, &tiny);
    let tiny_speedup = tiny_device / tiny_router.max(1e-12);

    vec![
        GateCase {
            name: "mixed_workload/router".to_string(),
            median_ns: mixed_median,
            cycles: Some(cycles),
            floor: Some(GateFloor {
                label: "serve_latency_speedup_vs_best_fixed_engine".to_string(),
                value: router_speedup,
                min: MIXED_ROUTER_SPEEDUP_FLOOR,
            }),
        },
        GateCase {
            name: "mixed_workload/tiny_cpu".to_string(),
            median_ns: tiny_median,
            cycles: None,
            floor: Some(GateFloor {
                label: "tiny_pool_routed_speedup_vs_forced_device".to_string(),
                value: tiny_speedup,
                min: MIXED_TINY_SPEEDUP_FLOOR,
            }),
        },
    ]
}

/// Concurrent loopback connections the `BENCH_09` load round drives — the
/// issue's "≥256 concurrent connections" acceptance bar, exactly.
pub const TCP_LOAD_CONNECTIONS: usize = 256;

/// Offered open-loop arrival rate (requests per second) of a load round.
pub const TCP_LOAD_RATE_PER_SEC: f64 = 1_000.0;

/// Requests offered per load round (3 seconds of schedule at the fixed
/// rate).
pub const TCP_LOAD_REQUESTS: usize = 3_000;

/// Measured load rounds (after one warm-up round); medians are taken across
/// these.
pub const TCP_LOAD_ROUNDS: usize = 5;

/// Minimum goodput (well-formed answers per wall second) a round must
/// sustain. The offered rate is [`TCP_LOAD_RATE_PER_SEC`]; this floor only
/// guards against the serving path collapsing (lock convoys, thread leaks,
/// accidental serialisation), so it sits far below the healthy rate.
pub const TCP_LOAD_GOODPUT_FLOOR: f64 = 300.0;

/// The p999 scheduled-to-completion latency budget, in milliseconds, on the
/// machine whose calibration probe measures
/// [`TCP_LOAD_CALIBRATION_ANCHOR_NS`]; the applied budget scales linearly
/// with the check machine's own calibration. The healthy tail on the anchor
/// machine is 5–20 ms (it is the 3rd-worst of 3000 samples, so scheduler
/// noise moves it by several ms run to run — too volatile for the 25%
/// median rule, hence this generous fraud-stream-style budget); a serving
/// path that backlogs or loses wakeups pushes p999 into the
/// hundreds-of-milliseconds range and fails it on any runner.
pub const TCP_LOAD_P999_BUDGET_MS: f64 = 75.0;

/// Calibration median ([`calibration_median_ns`]) of the machine that set
/// [`TCP_LOAD_P999_BUDGET_MS`], anchoring the budget's runner-speed scaling.
pub const TCP_LOAD_CALIBRATION_ANCHOR_NS: f64 = 3.6e6;

/// The fixed query pool a load round cycles through: the first 16 ordered
/// pairs of [`gate_graph`]'s heaviest hubs at k=3 (the generator gives the
/// lowest ids the highest degrees) — quick to answer individually, so the
/// measured tail is queueing and transport, not one giant enumeration.
pub fn tcp_load_pool() -> Vec<(u32, u32, u32)> {
    let mut pool = Vec::new();
    for s in 0..5u32 {
        for t in 0..5u32 {
            if s != t && pool.len() < 16 {
                pool.push((s, t, 3));
            }
        }
    }
    pool
}

/// The 4-CU runtime one load round serves from, with an admission queue deep
/// enough that the [`TCP_LOAD_CONNECTIONS`] synchronous connections (at most
/// one in-flight request each) never fill it: BUSY replies are a fault under
/// this profile, not an expected outcome.
fn tcp_load_runtime() -> Arc<HostRuntime> {
    HostRuntime::launch(
        gate_graph(),
        RuntimeConfig { compute_units: 4, queue_capacity: 4096, ..RuntimeConfig::default() },
    )
}

fn median_of(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = samples.len();
    if n == 0 {
        0.0
    } else if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

/// Runs the `BENCH_09` open-loop TCP load cases: [`TCP_LOAD_ROUNDS`] rounds
/// (after one warm-up round) of [`TCP_LOAD_REQUESTS`] binary-protocol COUNT
/// requests at [`TCP_LOAD_RATE_PER_SEC`] offered over
/// [`TCP_LOAD_CONNECTIONS`] loopback connections, each round against a fresh
/// front door with a pre-warmed prepared-query cache.
///
/// Signals:
/// * `tcp_load/p999` — the median round p999 scheduled-to-completion
///   latency must stay under the runner-speed-calibrated budget
///   ([`TCP_LOAD_P999_BUDGET_MS`] scaled by this machine's calibration over
///   [`TCP_LOAD_CALIBRATION_ANCHOR_NS`]); a violation zeroes the case's
///   goodput floor value (≥ [`TCP_LOAD_GOODPUT_FLOOR`] answers/s), the same
///   budget-enforcement shape as the fraud-stream p99 gate. `median_ns`
///   records the budget the machine applied (the enforcement lives in the
///   floor: the raw tail is the 3rd-worst of 3000 samples and too volatile
///   for the 25% median rule);
/// * `tcp_load/protocol` — `median_ns` is the median round p50 latency
///   (service-dominated, so it also scales with runner speed — the round's
///   *wall clock* would not: an open-loop schedule pins it at
///   `requests / rate` regardless of machine), with an exact `floor` of 1.0
///   on the worst round's fraction of offered requests answered well-formed
///   (OK or typed BUSY): a single dropped connection, corrupt frame or
///   unexpected `ERR` fails the gate.
///
/// No `cycles` signal: whether an admission race yields a BUSY (not
/// executed) depends on wall-clock interleaving, so the simulated device
/// cycle total is not deterministic across rounds.
pub fn run_tcp_load_cases() -> Vec<GateCase> {
    let pool = tcp_load_pool();
    let mut p999s = Vec::with_capacity(TCP_LOAD_ROUNDS);
    let mut p50s = Vec::with_capacity(TCP_LOAD_ROUNDS);
    let mut worst_goodput = f64::INFINITY;
    let mut worst_answered = 1.0_f64;
    for round in 0..=TCP_LOAD_ROUNDS {
        let runtime = tcp_load_runtime();
        let session = runtime.register_session();
        for &(s, t, k) in &pool {
            runtime
                .submit_query(session, QueryRequest::new(s, t, k), false)
                .expect("warm query admitted")
                .wait()
                .expect("warm query completes");
        }
        let server = NetServer::bind(Arc::clone(&runtime), "127.0.0.1:0", NetConfig::default())
            .expect("bind loopback front door");
        let config = LoadConfig {
            connections: TCP_LOAD_CONNECTIONS,
            rate_per_sec: TCP_LOAD_RATE_PER_SEC,
            requests: TCP_LOAD_REQUESTS,
            protocol: LoadProtocol::Binary,
            pool: pool.clone(),
        };
        let report = run_open_loop(server.local_addr(), &config).expect("load round");
        server.shutdown();
        if round == 0 {
            continue; // warm-up round: page in threads, sockets, caches
        }
        p999s.push(report.p999_ns as f64);
        p50s.push(report.p50_ns as f64);
        worst_goodput = worst_goodput.min(report.goodput_per_sec);
        let answered = (report.completed_ok + report.busy) as f64 / report.offered.max(1) as f64;
        worst_answered = worst_answered.min(answered);
    }
    let budget_ns =
        TCP_LOAD_P999_BUDGET_MS * 1e6 * (calibration_median_ns() / TCP_LOAD_CALIBRATION_ANCHOR_NS);
    let median_p999 = median_of(p999s);
    vec![
        GateCase {
            name: "tcp_load/p999".to_string(),
            median_ns: budget_ns,
            cycles: None,
            floor: Some(GateFloor {
                label: "goodput_answers_per_sec_under_p999_budget".to_string(),
                value: if median_p999 <= budget_ns { worst_goodput } else { 0.0 },
                min: TCP_LOAD_GOODPUT_FLOOR,
            }),
        },
        GateCase {
            name: "tcp_load/protocol".to_string(),
            median_ns: median_of(p50s),
            cycles: None,
            floor: Some(GateFloor {
                label: "answered_fraction".to_string(),
                value: worst_answered,
                min: 1.0,
            }),
        },
    ]
}

/// Compute-unit counts the charged `BENCH_10` comparison runs at.
pub const BANK_LAYOUT_CUS: [usize; 2] = [2, 4];

/// Minimum relative reduction in charged bank-conflict cycles the bank-aware
/// CSR placement must deliver over the natural layout on the hub-pair batch.
pub const BANK_CONFLICT_REDUCTION_FLOOR: f64 = 0.20;

/// Maximum LPT model error ([`MeasuredMultiCu::model_error`]) allowed while
/// bank-conflict charging is on — the same ≤30% bound the uncharged
/// dispatch model is held to.
pub const BANK_CHARGED_MODEL_ERROR_CAP: f64 = 0.30;

/// A dispatch scheduler for the charged `BENCH_10` rounds: `cus` compute
/// units at the default bandwidth share, BRAM graph caching disabled (the
/// adjacency rows stream from DRAM, so the CSR bank layout is what the banks
/// actually see) and bank-conflict/turnaround charging on.
pub fn charged_nocache_scheduler(cus: usize) -> BatchScheduler {
    BatchScheduler::new(SchedulerConfig {
        dispatch: true,
        variant: pefp_core::PefpVariant::NoCache,
        multi_cu: MultiCuConfig {
            compute_units: cus,
            charge_banked: true,
            ..MultiCuConfig::default()
        },
        ..SchedulerConfig::default()
    })
}

/// One charged dispatch round; returns (summed charged bank-conflict cycles,
/// charged LPT-model makespan cycles, LPT model error). The makespan figure
/// is the *predicted* schedule over the measured per-query workloads, not
/// the measured greedy makespan: the greedy queue's assignment depends on
/// wall-clock worker timing, and its run-to-run spread (±5% at 4 CUs)
/// drowns the per-CU share of the conflict cycles. The LPT figure is
/// deterministic in the workloads and moves exactly with the charged stall
/// the placement controls — and `model_error` keeps it honest against the
/// measured makespan.
fn charged_round(
    scheduler: &BatchScheduler,
    handle: &GraphHandle,
    requests: &[QueryRequest],
) -> (u64, u64, f64) {
    let outcome = scheduler.run_batch(handle, requests).expect("bank-layout batch");
    let measured = outcome.measured.as_ref().expect("dispatch is measured");
    let conflicts: u64 = measured.per_cu_bank_conflict_cycles.iter().sum();
    (conflicts, measured.predicted.makespan_cycles, measured.model_error())
}

fn median_u64(mut samples: Vec<u64>) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs the `BENCH_10` bank-layout cases: the [`gate_batch`] hub-pair batch
/// under bank-conflict charging, natural vs bank-aware CSR placement.
///
/// `bench04_dispatch_cus1_cycles` is the committed `BENCH_04`
/// `multi_cu/dispatch_cus1` cycle count (the `bench_gate` binary reads it
/// from the sibling `BENCH_04.json`): with banking disabled the dispatch
/// path must reproduce it **bit-identically** — the memory-model extension
/// is opt-in and must not perturb a single uncharged cycle.
///
/// Signals:
/// * `bank_layout/banking_off_determinism` — the 1-CU uncharged dispatch
///   serial cycles, as `cycles` (25% rule) *and* as an exact-equality floor
///   against the `BENCH_04` anchor (1.0 = bit-identical, 0.0 = drifted);
/// * `bank_layout/conflict_reduction_cusN` — charged conflict cycles of the
///   bank-aware layout vs the natural layout, as a relative-reduction floor
///   (≥ [`BANK_CONFLICT_REDUCTION_FLOOR`]). Medians over the timed rounds:
///   with ≥2 CUs racing on one arbiter the interleaving (and therefore the
///   exact conflict total) is scheduling-dependent;
/// * `bank_layout/makespan_win_cusN` — natural-over-aware charged LPT
///   makespan ratio (the model schedule over the measured workloads; see
///   [`charged_round`] for why not the noisy greedy figure), floored at
///   1.0: the placement must win (or at worst tie) the schedule-level
///   figure, not just the conflict counter;
/// * `bank_layout/model_error` — worst observed LPT model accuracy under
///   charging across both CU counts and both layouts, `1 - model_error`,
///   floored at
///   `1 -` [`BANK_CHARGED_MODEL_ERROR_CAP`].
pub fn run_bank_layout_cases(bench04_dispatch_cus1_cycles: Option<u64>) -> Vec<GateCase> {
    let natural = gate_graph();
    let aware = gate_graph().with_placement(pefp_graph::PlacementPolicy::BankAware);
    let requests = gate_batch(&natural);
    let mut cases = Vec::new();

    // Uncharged single-CU dispatch: deterministic, and pinned to BENCH_04.
    {
        let scheduler = dispatch_scheduler(1);
        let mut serial = 0u64;
        let median = median_ns(|| {
            let outcome = scheduler.run_batch(&natural, &requests).expect("uncharged batch");
            serial = outcome.measured.as_ref().expect("dispatch is measured").serial_cycles;
        });
        cases.push(GateCase {
            name: "bank_layout/banking_off_determinism".to_string(),
            median_ns: median,
            cycles: Some(serial),
            floor: bench04_dispatch_cus1_cycles.map(|anchor| GateFloor {
                label: format!("cycles_bit_identical_to_bench04_anchor_{anchor}"),
                value: if serial == anchor { 1.0 } else { 0.0 },
                min: 1.0,
            }),
        });
    }

    let mut worst_model_accuracy = f64::INFINITY;
    for cus in BANK_LAYOUT_CUS {
        let scheduler = charged_nocache_scheduler(cus);
        let mut nat_rounds = Vec::new();
        let nat_median = median_ns(|| {
            nat_rounds.push(charged_round(&scheduler, &natural, &requests));
        });
        let mut aware_rounds = Vec::new();
        let aware_median = median_ns(|| {
            aware_rounds.push(charged_round(&scheduler, &aware, &requests));
        });
        // Drop the warm-up round each: the floors use medians over the timed
        // rounds only, like the host-concurrency makespan floor.
        nat_rounds.remove(0);
        aware_rounds.remove(0);

        let nat_conflicts = median_u64(nat_rounds.iter().map(|r| r.0).collect());
        let aware_conflicts = median_u64(aware_rounds.iter().map(|r| r.0).collect());
        let reduction = if nat_conflicts == 0 {
            0.0
        } else {
            1.0 - aware_conflicts as f64 / nat_conflicts as f64
        };
        cases.push(GateCase {
            name: format!("bank_layout/conflict_reduction_cus{cus}"),
            median_ns: nat_median,
            cycles: None,
            floor: Some(GateFloor {
                label: "charged_conflict_cycle_reduction".to_string(),
                value: reduction,
                min: BANK_CONFLICT_REDUCTION_FLOOR,
            }),
        });

        let nat_makespan = median_u64(nat_rounds.iter().map(|r| r.1).collect());
        let aware_makespan = median_u64(aware_rounds.iter().map(|r| r.1).collect());
        cases.push(GateCase {
            name: format!("bank_layout/makespan_win_cus{cus}"),
            median_ns: aware_median,
            cycles: None,
            floor: Some(GateFloor {
                label: "charged_makespan_ratio_natural_over_aware".to_string(),
                value: nat_makespan as f64 / aware_makespan.max(1) as f64,
                min: 1.0,
            }),
        });

        for (_, _, error) in nat_rounds.iter().chain(aware_rounds.iter()) {
            worst_model_accuracy = worst_model_accuracy.min(1.0 - error);
        }
    }

    cases.push(GateCase {
        name: "bank_layout/model_error".to_string(),
        median_ns: cases[0].median_ns,
        cycles: None,
        floor: Some(GateFloor {
            label: "lpt_model_accuracy_under_charging".to_string(),
            value: worst_model_accuracy,
            min: 1.0 - BANK_CHARGED_MODEL_ERROR_CAP,
        }),
    });
    cases
}

/// Serialises a gate run (calibration + cases) as the `BENCH_04.json`
/// document ([`to_json_named`] with the historical artefact name).
pub fn to_json(calibration_ns: f64, cases: &[GateCase], meta_note: &str) -> JsonValue {
    to_json_named("BENCH_04", calibration_ns, cases, meta_note)
}

/// Serialises a gate run (calibration + cases) as a `BENCH_0x.json` document
/// with an explicit artefact name (`BENCH_04`, `BENCH_05`, …).
pub fn to_json_named(
    artefact: &str,
    calibration_ns: f64,
    cases: &[GateCase],
    meta_note: &str,
) -> JsonValue {
    let case_values: Vec<JsonValue> = cases
        .iter()
        .map(|case| {
            let mut pairs = vec![
                ("name", JsonValue::String(case.name.clone())),
                ("median_ns", JsonValue::Number(case.median_ns)),
            ];
            if let Some(cycles) = case.cycles {
                pairs.push(("cycles", JsonValue::Number(cycles as f64)));
            }
            if let Some(floor) = &case.floor {
                pairs.push((
                    "floor",
                    JsonValue::object(vec![
                        ("label", JsonValue::String(floor.label.clone())),
                        ("value", JsonValue::Number(floor.value)),
                        ("min", JsonValue::Number(floor.min)),
                    ]),
                ));
            }
            JsonValue::object(pairs)
        })
        .collect();
    JsonValue::object(vec![
        (
            "_meta",
            JsonValue::object(vec![
                ("artefact", JsonValue::String(artefact.to_string())),
                ("note", JsonValue::String(meta_note.to_string())),
                ("tolerance", JsonValue::Number(GATE_TOLERANCE)),
            ]),
        ),
        ("calibration_ns", JsonValue::Number(calibration_ns)),
        ("cases", JsonValue::Array(case_values)),
    ])
}

/// One baseline case parsed back from `BENCH_04.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineCase {
    /// Case identifier.
    pub name: String,
    /// Wall-clock median recorded by the baseline machine.
    pub median_ns: f64,
    /// Deterministic cycles recorded by the baseline.
    pub cycles: Option<u64>,
}

/// A parsed `BENCH_04.json` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Calibration wall-clock of the baseline machine.
    pub calibration_ns: f64,
    /// The recorded cases.
    pub cases: Vec<BaselineCase>,
}

/// Parses a `BENCH_04.json` document.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    let calibration_ns =
        doc.get("calibration_ns").and_then(JsonValue::as_number).ok_or("missing calibration_ns")?;
    let cases = doc
        .get("cases")
        .and_then(JsonValue::as_array)
        .ok_or("missing cases")?
        .iter()
        .map(|case| {
            Ok(BaselineCase {
                name: case
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .ok_or("case without name")?
                    .to_string(),
                median_ns: case
                    .get("median_ns")
                    .and_then(JsonValue::as_number)
                    .ok_or("case without median_ns")?,
                cycles: case.get("cycles").and_then(JsonValue::as_number).map(|c| c as u64),
            })
        })
        .collect::<Result<Vec<_>, &str>>()?;
    Ok(Baseline { calibration_ns, cases })
}

/// Compares a fresh gate run against the committed baseline. Returns the
/// human-readable failure list (empty = gate passes).
///
/// Rules, per case:
/// * hard floors must hold (`floor.value >= floor.min`);
/// * deterministic cycles may not exceed the baseline by more than
///   [`GATE_TOLERANCE`];
/// * the wall-clock median may not exceed the *calibrated* baseline
///   (baseline median x `calibration_now / calibration_baseline`) by more
///   than [`GATE_TOLERANCE`].
///
/// A case missing from the baseline is reported, so the baseline is
/// regenerated whenever the case set grows.
pub fn compare(baseline: &Baseline, calibration_now: f64, cases: &[GateCase]) -> Vec<String> {
    let mut failures = Vec::new();
    let scale =
        if baseline.calibration_ns > 0.0 { calibration_now / baseline.calibration_ns } else { 1.0 };
    for case in cases {
        if let Some(floor) = &case.floor {
            if floor.value < floor.min {
                failures.push(format!(
                    "{}: {} {:.3} below the hard floor {:.3}",
                    case.name, floor.label, floor.value, floor.min
                ));
            }
        }
        let Some(base) = baseline.cases.iter().find(|b| b.name == case.name) else {
            failures.push(format!(
                "{}: not in the committed baseline (regenerate BENCH_04.json with --write)",
                case.name
            ));
            continue;
        };
        if let (Some(now), Some(before)) = (case.cycles, base.cycles) {
            if now as f64 > before as f64 * (1.0 + GATE_TOLERANCE) {
                failures.push(format!(
                    "{}: simulated cycles regressed {} -> {} (> {:.0}%)",
                    case.name,
                    before,
                    now,
                    GATE_TOLERANCE * 100.0
                ));
            }
        }
        let allowed = base.median_ns * scale * (1.0 + GATE_TOLERANCE);
        if case.median_ns > allowed {
            failures.push(format!(
                "{}: median {:.0} ns exceeds calibrated budget {:.0} ns \
                 (baseline {:.0} ns x machine scale {:.2} x {:.0}% tolerance)",
                case.name,
                case.median_ns,
                allowed,
                base.median_ns,
                scale,
                (1.0 + GATE_TOLERANCE) * 100.0
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case(name: &str, median_ns: f64, cycles: Option<u64>) -> GateCase {
        GateCase { name: name.to_string(), median_ns, cycles, floor: None }
    }

    fn baseline() -> Baseline {
        Baseline {
            calibration_ns: 1_000.0,
            cases: vec![
                BaselineCase { name: "a".to_string(), median_ns: 10_000.0, cycles: Some(500) },
                BaselineCase { name: "b".to_string(), median_ns: 20_000.0, cycles: None },
            ],
        }
    }

    #[test]
    fn identical_run_passes() {
        let cases = vec![case("a", 10_000.0, Some(500)), case("b", 20_000.0, None)];
        assert!(compare(&baseline(), 1_000.0, &cases).is_empty());
    }

    #[test]
    fn wall_clock_regression_beyond_tolerance_fails() {
        let cases = vec![case("a", 12_600.0, Some(500))];
        let failures = compare(&baseline(), 1_000.0, &cases);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("calibrated budget"));
        // 24% over passes.
        assert!(compare(&baseline(), 1_000.0, &[case("a", 12_400.0, Some(500))]).is_empty());
    }

    #[test]
    fn calibration_rescales_the_wall_clock_budget() {
        // A machine twice as slow may take twice as long without failing.
        let cases = vec![case("a", 24_000.0, Some(500))];
        assert!(compare(&baseline(), 2_000.0, &cases).is_empty());
        // ... but a fast machine gets a tighter budget.
        let failures = compare(&baseline(), 500.0, &cases);
        assert_eq!(failures.len(), 1);
    }

    #[test]
    fn deterministic_cycle_regressions_ignore_calibration() {
        let cases = vec![case("a", 10_000.0, Some(700))];
        let failures = compare(&baseline(), 1_000.0, &cases);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("cycles regressed"));
    }

    #[test]
    fn floors_and_missing_cases_are_reported() {
        let mut with_floor = case("a", 10_000.0, Some(500));
        with_floor.floor =
            Some(GateFloor { label: "measured_speedup".to_string(), value: 1.2, min: 1.5 });
        let failures = compare(&baseline(), 1_000.0, &[with_floor, case("new", 1.0, None)]);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("hard floor"));
        assert!(failures[1].contains("not in the committed baseline"));
    }

    #[test]
    fn baseline_round_trips_through_json() {
        let cases = vec![
            GateCase {
                name: "multi_cu/dispatch_cus4".to_string(),
                median_ns: 123_456.0,
                cycles: Some(42),
                floor: Some(GateFloor {
                    label: "measured_speedup".to_string(),
                    value: 2.5,
                    min: 1.5,
                }),
            },
            case("streaming_results/counting_k7", 9_999.5, None),
        ];
        let text = to_json(777.0, &cases, "test").render_pretty();
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.calibration_ns, 777.0);
        assert_eq!(parsed.cases.len(), 2);
        assert_eq!(parsed.cases[0].cycles, Some(42));
        assert_eq!(parsed.cases[1].median_ns, 9_999.5);
        // The fresh run compares clean against its own baseline.
        assert!(compare(&parsed, 777.0, &cases).is_empty());
    }

    #[test]
    fn forcing_tables_validate_and_force_their_engine() {
        use pefp_core::{pre_bfs, route_query, EngineChoice, RouteContext};
        use pefp_graph::CsrGraph;

        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let prepared = pre_bfs(&g, VertexId(0), VertexId(3), 3);
        let ctx = RouteContext { compute_units: 2, charge_banked: false };
        for (table, want) in [
            (bcdfs_forcing_table(), EngineChoice::CpuBcDfs),
            (join_forcing_table(), EngineChoice::CpuJoin),
        ] {
            assert!(table.validate().is_empty(), "forcing table must stay valid");
            let decision = route_query(&prepared, &table, &ctx);
            assert_eq!(decision.choice, want, "{decision:?}");
        }
        assert!(route_query(&prepared, &cpu_forcing_table(), &ctx).choice.is_cpu());
    }
}
